//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, `any::<T>()`, range and
//! string-pattern strategies, tuple composition, `Just`, `prop_oneof!`,
//! `collection::vec`, and the `proptest!`/`prop_assert!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (override count with `PROPTEST_CASES`), and failing
//! inputs are *not* shrunk — the failure message reports the case number
//! and seed so a run can be reproduced exactly.

/// Deterministic case generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let rem = (u64::MAX % span).wrapping_add(1) % span;
        loop {
            let v = self.next_u64();
            if rem == 0 || v <= u64::MAX - rem {
                return v % span;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one case");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// any::<T>() — full-range values
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw a full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: the full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite full-range floats (magnitudes up to ~1e18), not raw bit
        // patterns, so tests get usable numbers rather than NaN soup.
        let mag = rng.unit() * 1e18;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! range_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.unit() * (self.end() - self.start())
    }
}

macro_rules! range_inclusive_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    rng.next_u64() as $t
                } else {
                    self.start().wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}
range_inclusive_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit() as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

// ---------------------------------------------------------------------
// String pattern strategies ("[a-z]{1,12}" style)
// ---------------------------------------------------------------------

enum PatternElem {
    /// A set of candidate chars with a repetition count range.
    Class { chars: Vec<char>, lo: usize, hi: usize },
}

fn parse_pattern(pat: &str) -> Vec<PatternElem> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut elems = Vec::new();
    while i < chars.len() {
        let set = if chars[i] == '[' {
            // Character class: literals and `a-z` ranges; no negation.
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad class range in pattern `{pat}`");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    i += 3;
                } else {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    set.push(c);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern `{pat}`");
            i += 1; // closing ']'
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition"),
                    b.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else if i < chars.len() && matches!(chars[i], '*' | '+' | '?') {
            let (lo, hi) = match chars[i] {
                '*' => (0, 16),
                '+' => (1, 16),
                _ => (0, 1),
            };
            i += 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "bad repetition in pattern `{pat}`");
        elems.push(PatternElem::Class { chars: set, lo, hi });
    }
    elems
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for elem in parse_pattern(self) {
            let PatternElem::Class { chars, lo, hi } = elem;
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let idx = rng.below(chars.len() as u64) as usize;
                out.push(chars[idx]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Tuple composition
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` of `elem` values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------

/// Default cases per property (`PROPTEST_CASES` overrides).
pub const DEFAULT_CASES: u64 = 64;

/// Why a case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition; the
    /// case is skipped, not failed.
    Reject(String),
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: u64::from(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Drive one property across its cases; called by `proptest!`.
pub fn run_cases(name: &str, f: &mut dyn FnMut(&mut TestRng) -> Result<(), CaseError>) {
    run_cases_config(name, ProptestConfig::default(), f)
}

/// [`run_cases`] with an explicit config.
pub fn run_cases_config(
    name: &str,
    config: ProptestConfig,
    f: &mut dyn FnMut(&mut TestRng) -> Result<(), CaseError>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases);
    // Per-test base seed from the test name (FNV-1a) keeps properties
    // independent yet reproducible run-to-run.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        match f(&mut rng) {
            Ok(()) | Err(CaseError::Reject(_)) => {}
            Err(CaseError::Fail(msg)) => {
                panic!("property `{name}` failed on case {case} (seed {seed:#018x}): {msg}");
            }
        }
    }
}

/// Define property tests. Each function body runs once per generated
/// case; use `prop_assert!`/`prop_assert_eq!` inside.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases_config(
                    stringify!($name),
                    $config,
                    &mut |__proptest_rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), &mut |__proptest_rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Assert inside a property; failure reports the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::CaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Skip cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::CaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{
        Any, Arbitrary, BoxedStrategy, CaseError, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_patterns() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "[ -~]{0,10}".generate(&mut rng);
            assert!(t.len() <= 10);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_cases() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = collection::vec(any::<u8>(), 1..5);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let y = if flip { x } else { x };
            prop_assert_eq!(x, y);
        }
    }
}
