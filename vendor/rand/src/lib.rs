//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `RngCore`, `SeedableRng` (with the upstream `seed_from_u64`
//! SplitMix64 expansion so seeds mean the same thing), and the `Rng`
//! extension trait with `gen::<f64>()` and integer/float `gen_range`.
//! Sampling algorithms are simple and unbiased but not bit-compatible
//! with upstream; determinism within this workspace is what matters.

use std::ops::Range;

/// Error type for fallible RNG operations (never produced here).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// The core generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the stand-in never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step, used to expand `u64` seeds into full seed arrays —
/// the same expansion upstream `seed_from_u64` uses.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding via SplitMix64 (little-endian),
    /// matching upstream rand's default.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bits = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as upstream's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable with `Rng::gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Unbiased draw in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: accept v < 2^64 - (2^64 mod span).
    let rem = (u64::MAX % span).wrapping_add(1) % span;
    loop {
        let v = rng.next_u64();
        if rem == 0 || v <= u64::MAX - rem {
            return v % span;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = lo + unit * (hi - lo);
                if v < hi { v } else { lo }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw in a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 = self.0.wrapping_add(1);
            splitmix64(&mut s)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bits = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bits[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(0usize..5);
            assert!(i < 5);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }
}
