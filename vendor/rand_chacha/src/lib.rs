//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`], a genuine ChaCha
//! keystream generator with 8 rounds. The keystream follows RFC 8439's
//! state layout (with a 64-bit block counter), so output is fixed for a
//! given seed — stable across platforms and toolchains, which is the
//! property `phi-workload`'s deterministic experiment seeding relies on.
//! Word-consumption order differs from the upstream crate, so streams
//! are deterministic but not bit-compatible with it.

use rand::{RngCore, SeedableRng};

const WORDS: usize = 16;

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; WORDS],
    /// Current keystream block.
    buf: [u32; WORDS],
    /// Next unconsumed word in `buf`.
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, inp) in w.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = w;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            let mut raw = [0u8; 4];
            raw.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(raw);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; WORDS],
            idx: WORDS, // force refill on first draw
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let raw = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }

    #[test]
    fn keystream_distribution_sanity() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let n = 10_000;
        let ones: u32 = (0..n).map(|_| r.next_u32().count_ones()).sum();
        let frac = f64::from(ones) / (f64::from(n) * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
