//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface the benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `black_box`) but measures
//! with a simple auto-calibrating loop: iteration count grows until a
//! batch takes long enough to time reliably, then mean ns/iter is
//! printed. No statistics, plots, or result persistence.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How inputs are batched in `iter_batched` (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 0,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, None, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.throughput, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let mut line = format!("{label:<40} time: {}", format_ns(b.ns_per_iter));
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => {
                n as f64 * 1e9 / b.ns_per_iter.max(f64::MIN_POSITIVE)
            }
        };
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        line.push_str(&format!("  thrpt: {per_sec:.3e} {unit}"));
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Target wall-clock per measured batch.
const TARGET: Duration = Duration::from_millis(30);
/// Hard ceiling on iterations per batch.
const MAX_ITERS: u64 = 1 << 22;

/// Timing loop driver passed to `bench_function` closures.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, auto-scaling the iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= TARGET || n >= MAX_ITERS {
                self.ns_per_iter = dt.as_nanos() as f64 / n as f64;
                return;
            }
            n = (n * 8).min(MAX_ITERS);
        }
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed();
            if dt >= TARGET || n >= MAX_ITERS {
                self.ns_per_iter = dt.as_nanos() as f64 / n as f64;
                return;
            }
            n = (n * 8).min(MAX_ITERS);
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.throughput(Throughput::Elements(1));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }
}
