//! Derive macros for the vendored serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small
//! token-walker extracts the item's shape (named struct, tuple struct,
//! unit struct, or enum with unit/tuple/struct variants) and the impls
//! are emitted as source text. Generic type parameters are not supported
//! — nothing in this workspace derives serde on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under the derive.
enum Shape {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// One named field and whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derive `serde::Serialize` (vendored value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let src = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let names: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let binds = names.join(", ");
                            let entries: Vec<String> = names
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    src.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (vendored value-tree flavor).
///
/// `#[serde(default)]` on a named field makes a missing key fall back to
/// `Default::default()` instead of erroring — the forward-compatibility
/// escape hatch for fields added after payloads were written.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let src = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let (f, default) = (&f.name, f.default);
                    if default {
                        format!(
                            "{f}: match ::serde::get_field(map, \"{f}\") {{\n\
                                 ::std::result::Result::Ok(v) => ::serde::Deserialize::from_value(v)?,\n\
                                 ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
                             }}"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::get_field(map, \"{f}\")?)?"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let map = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let seq = v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!(
                                    "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"variant tuple too short\"))?)?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let seq = payload.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence variant\"))?;\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(inner, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let inner = payload.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map variant\"))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{ {unit}\n _ => {{}} }}\n\
                         }}\n\
                         if let Some(map) = v.as_map() {{\n\
                             if let Some((tag, payload)) = map.first() {{\n\
                                 match tag.as_str() {{ {data}\n _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(\"unknown variant for {name}\"))\n\
                     }}\n\
                 }}",
                unit = if unit_arms.is_empty() { String::new() } else { unit_arms.join(",\n") + "," },
                data = if data_arms.is_empty() { String::new() } else { data_arms.join(",\n") + "," },
            )
        }
    };
    src.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = ident_at(&tokens, &mut i).expect("serde_derive: expected struct/enum keyword");
    let name = ident_at(&tokens, &mut i).expect("serde_derive: expected type name");
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported ({name})");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_top_level_commas(g.stream()),
                }
            }
            _ => Shape::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde_derive: malformed enum {name}"),
        },
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and visibility.
/// Returns whether a `#[serde(default)]` was among the skipped attributes.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut serde_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    serde_default |= attr_is_serde_default(g);
                }
                *i += 2; // '#' then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return serde_default,
        }
    }
}

/// Does this `[...]` attribute group spell `serde(default)`?
fn attr_is_serde_default(g: &proc_macro::Group) -> bool {
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(
                (inner.first(), inner.len()),
                (Some(TokenTree::Ident(arg)), 1) if arg.to_string() == "default"
            )
        }
        _ => false,
    }
}

fn ident_at(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Some(id.to_string())
        }
        _ => None,
    }
}

/// Count comma-separated items at angle-bracket depth zero (groups are
/// atomic tokens, so parens/brackets/braces never confuse the count).
fn count_top_level_commas(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut items = 0usize;
    let mut saw_token = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    saw_token = true;
                }
                '>' => {
                    depth -= 1;
                    saw_token = true;
                }
                ',' if depth == 0 => {
                    items += 1;
                    saw_token = false;
                }
                _ => saw_token = true,
            },
            _ => saw_token = true,
        }
    }
    if saw_token {
        items += 1; // no trailing comma after the last item
    }
    items
}

/// Fields (name + `#[serde(default)]` flag) of a `{ ... }` struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut i);
        let Some(name) = ident_at(&tokens, &mut i) else { break };
        fields.push(Field { name, default });
        // Skip ':' and the type, up to the comma at angle depth zero.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Variants of an `enum { ... }` body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(name) = ident_at(&tokens, &mut i) else { break };
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_commas(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to past the next top-level comma (covers discriminants).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}
