//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] tree to JSON text and parses JSON text back into it.
//! Covers `to_string`, `to_string_pretty`, and `from_str` — the surface
//! this workspace uses.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// JSON encoding/decoding failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_composite(out, indent, depth, items.is_empty(), '[', ']', |out, depth| {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    push_sep(out, indent, depth);
                }
                write_value(out, item, indent, depth);
            }
        }),
        Value::Map(entries) => write_composite(out, indent, depth, entries.is_empty(), '{', '}', |out, depth| {
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    push_sep(out, indent, depth);
                }
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth);
            }
        }),
    }
}

fn write_composite(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String, usize),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    if let Some(w) = indent {
        out.push('\n');
        push_indent(out, w * (depth + 1));
    }
    body(out, depth + 1);
    if let Some(w) = indent {
        out.push('\n');
        push_indent(out, w * depth);
    }
    out.push(close);
}

fn push_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    out.push(',');
    if let Some(w) = indent {
        out.push('\n');
        push_indent(out, w * depth);
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fraction so the value reads back as a float ("7.0"),
        // matching serde_json's formatting of whole floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run up to the next escape or quote.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Handle UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let raw = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(raw, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&7.0f64).unwrap(), "7.0");
        assert_eq!(to_string(&163.5f64).unwrap(), "163.5");
        assert_eq!(from_str::<u64>("7").unwrap(), 7);
        assert_eq!(from_str::<f64>("7.0").unwrap(), 7.0);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(from_str::<bool>("false").unwrap(), false);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);

        let m: std::collections::HashMap<String, f64> =
            [("a".to_string(), 1.5), ("b".to_string(), -0.25)].into();
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<std::collections::HashMap<String, f64>>(&s).unwrap(), m);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let enc = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&enc).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn pretty_uses_colon_space() {
        let m: std::collections::BTreeMap<String, u64> = [("x".to_string(), 7)].into();
        let s = to_string_pretty(&m).unwrap();
        assert!(s.contains("\"x\": 7"), "got {s}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("7 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
