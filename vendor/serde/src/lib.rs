//! Offline stand-in for `serde`, used because this build environment has
//! no crates.io access. It keeps the subset of the API this workspace
//! uses — `Serialize` / `Deserialize` traits, the `derive` feature, and
//! `serde::de::DeserializeOwned` — over a simple self-describing value
//! tree instead of serde's visitor machinery. `serde_json` (also
//! vendored) converts that tree to and from JSON text.
//!
//! Representation choices mirror upstream serde's defaults so existing
//! round-trip tests keep their meaning: named structs become maps,
//! newtype structs are transparent, tuple structs become sequences, unit
//! enum variants become strings, and data-carrying variants become
//! single-entry maps.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;

/// The self-describing tree every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also non-finite floats, mirroring serde_json).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    pub use super::{Deserialize, Error};

    /// Owned deserialization — every [`Deserialize`] type qualifies here
    /// because the stand-in has no borrowed deserialization at all.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use super::{Error, Serialize};
}

/// Fetch a required struct field out of a serialized map (derive helper).
pub fn get_field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Render a map key: strings pass through, integers print in decimal —
/// the same keys serde_json accepts.
pub fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!("map key must be scalar, got {other:?}"))),
    }
}

/// Recover a map key (derive/container helper): the key text is re-read
/// through the key type's own `Deserialize` via a string value.
pub fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    K::from_value(&Value::Str(s.to_string()))
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::custom(format!("bad integer key `{s}`")))?,
                    other => return Err(Error::custom(format!("expected unsigned int, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| Error::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::custom(format!("bad integer key `{s}`")))?,
                    other => return Err(Error::custom(format!("expected signed int, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::F64(*self as f64)
                } else {
                    Value::Null // serde_json writes non-finite floats as null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::from_value(v).map(VecDeque::from)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value()).expect("unsupported map key");
                (key, v.to_value())
            })
            .collect();
        // Deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value()).expect("unsupported map key");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}
impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

macro_rules! ser_de_display_fromstr {
    ($($t:ty => $what:literal),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Str(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::custom(format!("invalid {}: `{s}`", $what))),
                    other => Err(Error::custom(format!(
                        "expected {} string, got {other:?}",
                        $what
                    ))),
                }
            }
        }
    )*};
}
// Network address types serialize as their display strings, matching
// serde's human-readable representation.
ser_de_display_fromstr! {
    std::net::Ipv4Addr => "IPv4 address",
    std::net::Ipv6Addr => "IPv6 address",
    std::net::IpAddr => "IP address",
    std::net::SocketAddr => "socket address",
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
