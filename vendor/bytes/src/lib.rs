//! Offline stand-in for the `bytes` crate.
//!
//! Keeps the subset this workspace uses: big-endian `get_*`/`put_*`
//! cursors (`Buf`/`BufMut`), a growable [`BytesMut`], and an immutable
//! [`Bytes`]. Storage is a plain `Vec<u8>` with a read offset — no
//! refcounted slabs, which is fine at the frame sizes the wire protocol
//! and telemetry codec deal in.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte container. All multi-byte reads are
/// big-endian, matching the upstream crate's `get_u16`/.../`get_f64`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
    /// Read a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor. All multi-byte writes are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }
    /// Copy from a slice.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

/// A growable byte buffer with a read offset at the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }
    /// True if nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        // Reclaim consumed front space before growing, bounding memory on
        // long-lived streaming decoders.
        if self.start > 0 && self.start >= self.data.len() / 2 {
            self.data.drain(..self.start);
            self.start = 0;
        }
        self.data.extend_from_slice(src);
    }
    /// Split off and return the first `n` unread bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = BytesMut {
            data: self.data[self.start..self.start + n].to_vec(),
            start: 0,
        };
        self.start += n;
        out
    }
    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data[self.start..].to_vec(),
        }
    }
    /// Drop all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            start: 0,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_f64(163.5);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0xBEEF);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_f64(), 163.5);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let raw = [0u8, 1, 0, 2, 3];
        let mut s = &raw[..];
        assert_eq!(s.get_u16(), 1);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.get_u16(), 2);
        assert_eq!(s.get_u8(), 3);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        assert_eq!(&b.freeze()[..], b" world");
    }

    #[test]
    fn index_through_deref() {
        let mut b = BytesMut::from(&[1u8, 2, 3][..]);
        b[1] = 9;
        assert_eq!(&b[..], &[1, 9, 3]);
    }
}
