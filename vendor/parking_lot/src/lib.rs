//! Offline stand-in for `parking_lot`: the same `lock()`/`read()`/
//! `write()` API (no poisoning in the signatures) implemented over
//! `std::sync`. A poisoned std lock is recovered rather than propagated,
//! matching parking_lot's poison-free semantics.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }
    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}
impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclude() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
