//! Figure 5, end to end: detect and localize an unreachability event.
//!
//! Generates four days of diurnal request telemetry sliced by
//! service × client-AS × metro, injects a two-hour outage confined to one
//! ISP in one metro on the last day, then runs the provider-side
//! pipeline: seasonal baseline → sustained-departure detection →
//! dimensional localization.
//!
//! Run with: `cargo run --release --example outage_diagnosis`

use phi::diagnosis::{
    detect, generate, localize, DetectorConfig, LocalizerConfig, Outage, SeasonalModel,
    TelemetryConfig,
};
use phi::workload::SeedRng;

fn main() {
    let cfg = TelemetryConfig::default(); // 2 services x 6 ASes x 4 metros, 5-min bins, 4 days
    let period = cfg.bins_per_day;
    let train_bins = (cfg.days - 1) * period; // train on the first 3 days

    // Ground truth: AS 3 in metro 1 loses 85% of traffic for 2 hours
    // starting 10:00 on day 4.
    let day4 = 3 * period;
    let outage = Outage {
        asn: 3,
        metro: 1,
        start_bin: day4 + 120, // 10:00 (bin 120 of 288)
        end_bin: day4 + 144,   // 12:00 — 24 five-minute bins = 2 h
        severity: 0.85,
    };
    println!(
        "injected ground truth: AS{} x metro{} down {:.0}% for {} bins (2 h)\n",
        outage.asn,
        outage.metro,
        outage.severity * 100.0,
        outage.duration_bins()
    );

    let telemetry = generate(&cfg, Some(&outage), &mut SeedRng::new(2024));
    println!(
        "telemetry: {} slices x {} bins of {} s",
        telemetry.slice_count(),
        telemetry.n_bins(),
        telemetry.bin_secs()
    );

    // 1. Detect on the aggregate.
    let total = telemetry.total();
    let model = SeasonalModel::fit(&total, period, train_bins);
    let events = detect(&total, &model, &DetectorConfig::default());
    println!(
        "\ndetected {} event(s) on the aggregate series:",
        events.len()
    );
    for e in &events {
        let start_h = (e.start_bin % period) as f64 * telemetry.bin_secs() as f64 / 3600.0;
        println!(
            "  bins {}..{} (day {}, starting {:02.0}:{:02.0}), {:.1} h long, mean z {:.1}, {:.0}% of expected volume missing",
            e.start_bin,
            e.end_bin,
            e.start_bin / period + 1,
            start_h.floor(),
            (start_h.fract() * 60.0).round(),
            e.duration_secs(telemetry.bin_secs()) as f64 / 3600.0,
            e.mean_z,
            e.deficit_fraction * 100.0
        );
    }

    // 2. Localize the first event.
    let Some(event) = events.first() else {
        println!("nothing to localize");
        return;
    };
    match localize(
        &telemetry,
        event,
        period,
        train_bins,
        &LocalizerConfig::default(),
    ) {
        Some(loc) => {
            println!("\nlocalization:");
            for (dim, v) in &loc.constraints {
                println!("  {dim:?} = {v}");
            }
            println!(
                "  captures {:.0}% of the deficit; the described population dropped {:.0}%",
                loc.deficit_share * 100.0,
                loc.drop_fraction * 100.0
            );
            let correct = loc.constraints.len() == 2
                && loc
                    .constraints
                    .iter()
                    .any(|&(d, v)| matches!(d, phi::diagnosis::Dimension::Asn) && v == outage.asn)
                && loc.constraints.iter().any(|&(d, v)| {
                    matches!(d, phi::diagnosis::Dimension::Metro) && v == outage.metro
                });
            println!(
                "\nverdict: localization {} the injected ground truth",
                if correct { "MATCHES" } else { "does not match" }
            );
        }
        None => println!("\nno qualifying localization found"),
    }
}
