//! Supervised sweep smoke: panic isolation, budgets, and resume in one
//! run. Doubles as the CI supervision smoke step.
//!
//! The script a robustness layer has to survive, compressed:
//!
//! 1. an 8-cell sweep where one cell's agent hook panics mid-simulation
//!    (inside the 2-domain parallel engine) and another runs under a
//!    tiny event budget — the sweep must finish with 6 clean cells, one
//!    quarantined, one terminated, and sane aggregate metrics;
//! 2. the journal is then torn mid-frame, as a `kill -9` during an
//!    append would leave it, and the sweep re-runs without the injected
//!    failures — it must resume (not recompute) the surviving cells and
//!    converge to a clean 8/8 report.
//!
//! Exits non-zero on any violated expectation, so CI fails loudly.
//!
//! Run with: `cargo run --release --example supervised_sweep`

use phi::core::harness::{provision_cubic, ExperimentSpec, Provisioned};
use phi::core::supervise::{run_supervised_with, SupervisorConfig};
use phi::core::{run_experiment, RunPool};
use phi::sim::engine::{Ctx, RunBudget};
use phi::sim::time::{Dur, Time};
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::{ContextSnapshot, NoHook, SessionHook};
use phi::workload::OnOffConfig;

const CELLS: usize = 8;
const PANIC_CELL: usize = 3;
const STARVED_CELL: usize = 5;

struct ExplodingHook;

impl SessionHook for ExplodingHook {
    fn lookup(&mut self, _now: Time, _ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        panic!("injected panic (supervised_sweep smoke)");
    }
}

fn spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        2,
        OnOffConfig {
            mean_on_bytes: 150_000.0,
            mean_off_secs: 0.6,
            deterministic: false,
        },
        Dur::from_secs(3),
        31415,
    );
    spec.dumbbell.bottleneck_bps = 6_000_000;
    spec.dumbbell.rtt = Dur::from_millis(50);
    spec.domains = Some(2); // panics must cross the PDES barrier protocol
    spec
}

fn check(ok: bool, what: &str, failures: &mut u32) {
    if ok {
        println!("  ok: {what}");
    } else {
        println!("  FAIL: {what}");
        *failures += 1;
    }
}

fn main() {
    let mut failures = 0u32;
    let spec = spec();
    let pool = RunPool::from_env();
    let journal = std::env::temp_dir().join(format!(
        "phi-supervised-sweep-smoke-{}.jnl",
        std::process::id()
    ));
    std::fs::remove_file(&journal).ok();
    let cfg = SupervisorConfig::new()
        .with_retries(1)
        .with_journal(&journal);

    println!(
        "Pass 1: {CELLS} cells, cell {PANIC_CELL} panics in-sim, cell {STARVED_CELL} budget-capped"
    );
    let report = run_supervised_with(&pool, &spec, CELLS, &cfg, |i, s| {
        let mut s = s.clone();
        if i == STARVED_CELL {
            s.budget = Some(RunBudget::events(200));
        }
        run_experiment(&s, |ctx| {
            let hook: Box<dyn SessionHook> = if i == PANIC_CELL && ctx.index == 0 {
                Box::new(ExplodingHook)
            } else {
                Box::new(NoHook)
            };
            Provisioned {
                factory: Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                hook,
            }
        })
    })
    .expect("journal must open");

    check(
        report.completed.len() == CELLS - 2,
        "healthy cells all completed",
        &mut failures,
    );
    check(
        report.quarantined.len() == 1 && report.quarantined[0].index == PANIC_CELL,
        "panicking cell quarantined (siblings unharmed)",
        &mut failures,
    );
    check(
        report
            .quarantined
            .first()
            .is_some_and(|q| q.last_panic().contains("injected panic") && !q.diverged),
        "panic payload preserved, same-seed retry failed identically",
        &mut failures,
    );
    check(
        report.terminated.len() == 1 && report.terminated[0].index == STARVED_CELL,
        "budget-capped cell terminated gracefully",
        &mut failures,
    );
    let mean = report.mean_metrics();
    check(
        mean.as_ref()
            .is_some_and(|m| m.throughput_mbps.is_finite() && m.throughput_mbps > 0.0),
        "aggregation over completed cells only yields finite means",
        &mut failures,
    );
    if let Some(m) = &mean {
        println!(
            "  mean over {} completed cells: {:.2} Mbit/s, {:.2} ms queue, util {:.2}",
            report.completed.len(),
            m.throughput_mbps,
            m.queueing_delay_ms,
            m.utilization
        );
    }

    println!("Pass 2: tear the journal mid-frame, then resume without the injected failures");
    let bytes = std::fs::read(&journal).expect("journal bytes");
    let keep = bytes.len() - 20; // rip through the final frame's CRC
    std::fs::write(&journal, &bytes[..keep]).expect("tear journal");

    let resumed = run_supervised_with(&pool, &spec, CELLS, &cfg, |_, s| {
        run_experiment(s, provision_cubic(CubicParams::default()))
    })
    .expect("journal must reopen");

    check(resumed.is_clean(), "resumed sweep is clean", &mut failures);
    check(
        resumed.completed.len() == CELLS,
        "all cells present after resume",
        &mut failures,
    );
    let replayed = resumed.completed.iter().filter(|c| c.resumed).count();
    check(
        replayed == CELLS - 3,
        "exactly the journaled cells replayed (torn, panicked, starved re-ran)",
        &mut failures,
    );
    println!(
        "  {replayed}/{CELLS} cells replayed from the journal, fingerprint {:#018x}",
        resumed.fingerprint()
    );

    std::fs::remove_file(&journal).ok();
    if failures > 0 {
        println!("\n{failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nAll supervision checks passed.");
}
