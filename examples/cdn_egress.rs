//! §2.1, end to end: how much path sharing does sampled telemetry reveal?
//!
//! Generates heavy-tailed CDN-style egress (Zipf destination popularity,
//! Pareto flow sizes), runs every packet through a 1-in-4096 IPFIX
//! sampler, ships the sampled records through the binary codec to the
//! collector, and computes the sharing-opportunity CDF over
//! (destination /24, minute) buckets.
//!
//! Run with: `cargo run --release --example cdn_egress`

use phi::telemetry::{
    generate_flows, shared_collector, Collector, CollectorServer, EgressConfig, ExporterClient,
    Sampler, SharingCdf,
};
use phi::workload::SeedRng;

fn main() {
    let cfg = EgressConfig::default();
    let mut rng = SeedRng::new(7);
    let flows = generate_flows(&cfg, &mut rng);
    println!(
        "synthetic egress: {} flows to {} /24s over {} minutes",
        flows.len(),
        cfg.subnets,
        cfg.minutes
    );

    // A real collector service on loopback; the "router" samples
    // 1-in-4096 packets and ships batches over TCP like an IPFIX exporter.
    let collector = shared_collector(Collector::new());
    let server = CollectorServer::start("127.0.0.1:0", collector.clone()).expect("bind collector");
    let mut exporter = ExporterClient::connect(server.addr(), 1000).expect("connect exporter");

    let mut sampler = Sampler::paper(rng.fork("sampler"));
    for flow in &flows {
        for ts in flow.packet_times() {
            if let Some(rec) = sampler.observe(flow.key, ts, 1500) {
                exporter.submit(rec).expect("export");
            }
        }
    }
    exporter.flush().expect("flush");

    let (observed, sampled) = sampler.counters();
    println!(
        "sampler: {observed} packets observed, {sampled} exported (1 in {})",
        observed / sampled.max(1)
    );
    // Wait for the service to drain the stream, then read the collector.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server
        .stats()
        .records
        .load(std::sync::atomic::Ordering::Relaxed)
        < exporter.shipped()
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let collector_guard = collector.lock().expect("collector");
    println!(
        "collector service: {} records into {} (/24, minute) buckets over TCP",
        collector_guard.record_count(),
        collector_guard.bucket_count(),
    );

    let cdf = SharingCdf::from_collector(&collector_guard);
    let (p5, p100) = cdf.paper_rows();
    println!("\nsharing-opportunity CDF over sampled flows:");
    for (k, frac) in cdf.ccdf_series(&[1, 2, 5, 10, 20, 50, 100, 200]) {
        let bar = "#".repeat((frac * 40.0).round() as usize);
        println!("  >= {k:>3} co-flows: {:>5.1}%  {bar}", frac * 100.0);
    }
    println!("\npaper's headline (their production trace): 50% share with >= 5, 12% with >= 100");
    println!(
        "this synthetic trace:                      {:.0}% share with >= 5, {:.0}% with >= 100",
        p5 * 100.0,
        p100 * 100.0
    );
    println!(
        "median sampled flow shares its path-minute with {} other flows",
        cdf.quantile(0.5).unwrap_or(0)
    );
    drop(collector_guard);
    server.shutdown();
}
