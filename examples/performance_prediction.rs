//! §3.5: performance prediction from provider-side aggregates.
//!
//! Two destination paths with very different network conditions are
//! simulated; every finished connection's experience feeds the
//! [`phi::predict::PerfDb`]. An application then asks, *before* acting:
//! "how long will this 25 MB download take?" and "is a VoIP call to this
//! place going to be any good?" — the paper's imagined API.
//!
//! Run with: `cargo run --release --example performance_prediction`

use phi::core::harness::{run_experiment, ExperimentSpec, Provisioned};
use phi::predict::{predict_download, predict_voip, PathId, PerfDb, PerfObservation};
use phi::sim::time::Dur;
use phi::tcp::hook::NoHook;
use phi::tcp::{Cubic, CubicParams};
use phi::workload::OnOffConfig;

fn simulate_path(
    name: &str,
    bottleneck_bps: u64,
    rtt_ms: u64,
    pairs: usize,
    seed: u64,
) -> Vec<PerfObservation> {
    let mut spec = ExperimentSpec::new(
        pairs,
        OnOffConfig {
            mean_on_bytes: 1_000_000.0,
            mean_off_secs: 0.5,
            deterministic: false,
        },
        Dur::from_secs(40),
        seed,
    );
    spec.dumbbell.bottleneck_bps = bottleneck_bps;
    spec.dumbbell.rtt = Dur::from_millis(rtt_ms);
    let result = run_experiment(&spec, |_| Provisioned {
        factory: Box::new(|_| Box::new(Cubic::new(CubicParams::tuned(8.0, 64.0, 0.2)))),
        hook: Box::new(NoHook),
    });
    let loss = result.metrics.loss_rate;
    let obs: Vec<PerfObservation> = result
        .per_sender
        .iter()
        .flatten()
        .filter(|r| r.rtt_samples > 0)
        .map(|r| PerfObservation {
            throughput_mbps: r.throughput_bps() / 1e6,
            rtt_ms: r.mean_rtt_ms,
            loss,
            jitter_ms: r.rtt_inflation_ms(spec.dumbbell.rtt),
        })
        .collect();
    println!(
        "{name}: simulated {} connections (util {:.0}%, loss {:.2}%)",
        obs.len(),
        result.metrics.utilization * 100.0,
        loss * 100.0
    );
    obs
}

fn main() {
    println!("building the provider-side performance database from live traffic...\n");
    // Path A: a well-provisioned nearby metro.
    let near = simulate_path("path A (near, fat)", 100_000_000, 30, 4, 1);
    // Path B: a congested, distant, lossy path.
    let far = simulate_path("path B (far, congested)", 8_000_000, 250, 10, 2);

    let mut db = PerfDb::new(3_600_000_000_000); // 1-hour epochs
    for (path, obs) in [(PathId(1), &near), (PathId(2), &far)] {
        for o in obs {
            db.record(path, 0, o);
        }
    }

    println!("\napplication queries, before acting (the §3.5 API):");
    let download_bytes = 25_000_000u64;
    for (path, label) in [(PathId(1), "path A"), (PathId(2), "path B")] {
        let view = db.view(path, 1).expect("view");
        let d = predict_download(&view, download_bytes).expect("download prediction");
        let v = predict_voip(&view).expect("voip prediction");
        println!("\n  {label} ({} observations):", view.count);
        println!(
            "    25 MB download: median {:.1} s (p95 {:.1} s) at {:.1} Mbit/s median throughput",
            d.p50_secs, d.p95_secs, d.p50_throughput_mbps
        );
        println!(
            "    VoIP call: MOS {:.2} (R = {:.0}, effective one-way delay {:.0} ms) -> {}",
            v.mos,
            v.r_factor,
            v.effective_delay_ms,
            if v.acceptable {
                "go ahead"
            } else {
                "expect poor quality — maybe hold off on that important call"
            }
        );
    }

    println!(
        "\nThe same aggregate that powers Phi's congestion context answers\n\
         what no autonomous host could: expected performance, before the\n\
         first packet is sent."
    );
}
