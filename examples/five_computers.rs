//! §3.1 across the "five computers": a common network-weather barometer
//! between *competing* providers, without revealing anyone's numbers.
//!
//! Five providers (think Netflix, YouTube, a CDN, a cloud, a conferencing
//! service) each privately measure the congestion level on a shared
//! transit path — here, by each running their own simulation of their own
//! traffic and reading their own context store. They then contribute
//! secret shares to three independent aggregators; only the *mean*
//! congestion level emerges. No aggregator subset short of all of them
//! learns anything about an individual provider's measurement.
//!
//! Run with: `cargo run --release --example five_computers`

use phi::core::privacy::{combine, decode_fixed, encode_fixed, share, Aggregator};
use phi::core::{provision_cubic, run_experiment, ExperimentSpec, DUMBBELL_PATH};
use phi::core::{provision_cubic_phi, PolicyTable};
use phi::sim::time::Dur;
use phi::tcp::CubicParams;
use phi::workload::{OnOffConfig, SeedRng};

fn main() {
    let providers = [
        ("video-streamer", 10usize, 2_000_000.0),
        ("tube-site", 8, 1_000_000.0),
        ("cdn", 6, 400_000.0),
        ("cloud", 4, 800_000.0),
        ("conferencing", 4, 120_000.0),
    ];

    // 1. Each provider privately measures its own corner of the network.
    println!("each provider measures its own path utilization (private):\n");
    let mut private_levels = Vec::new();
    for (i, (name, senders, mean_bytes)) in providers.iter().enumerate() {
        let spec = ExperimentSpec::new(
            *senders,
            OnOffConfig {
                mean_on_bytes: *mean_bytes,
                mean_off_secs: 1.0,
                deterministic: false,
            },
            Dur::from_secs(20),
            7_000 + i as u64,
        );
        // Phi senders so the provider's own context store is populated.
        let result = if i % 2 == 0 {
            run_experiment(&spec, provision_cubic_phi(PolicyTable::reference()))
        } else {
            run_experiment(&spec, provision_cubic(CubicParams::default()))
        };
        // The provider's private measurement: its store's view when
        // possible, else the link-level truth it alone can see.
        let u = {
            let from_store = result
                .store
                .peek(DUMBBELL_PATH, spec.duration.as_nanos())
                .utilization;
            if from_store > 0.0 {
                from_store
            } else {
                result.metrics.utilization
            }
        };
        println!("  {name:<16} u = {u:.3}   (stays private)");
        private_levels.push(u);
    }

    // 2. Secret-share to three independent aggregators.
    let n_aggs = 3;
    let mut aggs = vec![Aggregator::new(); n_aggs];
    let mut rng = SeedRng::new(5);
    for &u in &private_levels {
        let shares = share(encode_fixed(u), n_aggs, &mut rng);
        for (agg, &s) in aggs.iter_mut().zip(&shares.0) {
            agg.absorb(s);
        }
    }
    println!("\naggregators see only blinded partial sums:");
    for (i, a) in aggs.iter().enumerate() {
        println!(
            "  aggregator {i}: partial {:>20} ({} contributions)",
            a.partial(),
            a.contributions()
        );
    }

    // 3. Combining all partials reveals the barometer — and only that.
    let sum = decode_fixed(combine(
        &aggs.iter().map(Aggregator::partial).collect::<Vec<_>>(),
    ));
    let mean = sum / private_levels.len() as f64;
    let true_mean = private_levels.iter().sum::<f64>() / private_levels.len() as f64;
    println!("\ncommon barometer: mean congestion {mean:.3} (ground truth {true_mean:.3})");
    println!(
        "\nEach of the \"five computers\" now knows the network weather without\n\
         any of them disclosing its own traffic — the §3.1 sharing-across-\n\
         competitors story, executable."
    );
    assert!((mean - true_mean).abs() < 1e-4);
}
