//! ns-2-style packet tracing: watch the dumbbell breathe.
//!
//! Installs a [`phi::sim::trace::TraceWriter`] on a tiny two-sender
//! dumbbell and prints the head of the trace — every `+` enqueue, `d`
//! drop, `-` transmission, and `r` delivery, exactly the format
//! generations of networking students squinted at.
//!
//! Run with: `cargo run --release --example packet_trace`

use phi::core::{provision_cubic, run_experiment, ExperimentSpec};
use phi::sim::engine::Simulator;
use phi::sim::time::{Dur, Time};
use phi::sim::topology::{dumbbell, DumbbellSpec};
use phi::sim::trace::{SharedTraceCollector, TraceOp, TraceWriter, Tracer};
use phi::tcp::hook::NoHook;
use phi::tcp::receiver::TcpReceiver;
use phi::tcp::sender::{SenderConfig, TcpSender};
use phi::tcp::{Cubic, CubicParams};
use phi::workload::{OnOffConfig, OnOffSource, SeedRng};

fn main() {
    // A small, congested dumbbell so the trace shows drops quickly.
    let mut spec = DumbbellSpec::paper(2);
    spec.bottleneck_bps = 2_000_000;
    spec.buffer_bdp_multiple = 1.0;
    let net = dumbbell(&spec);
    let mut sim = Simulator::new(net.topology.clone());

    for i in 0..2 {
        let mut cfg = SenderConfig::new(net.receivers[i], 80, 10);
        cfg.flow_id_base = (i as u64) << 32;
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 300_000.0,
                mean_off_secs: 0.2,
                deterministic: false,
            },
            SeedRng::new(1).fork_indexed("sender", i as u64),
        );
        sim.add_agent(
            net.senders[i],
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        );
        sim.add_agent(net.receivers[i], 80, Box::new(TcpReceiver::new()));
    }

    // Render the first two simulated seconds as trace lines...
    struct Both {
        writer: TraceWriter,
        shared: Box<dyn Tracer>,
    }
    impl Tracer for Both {
        fn event(&mut self, ev: &phi::sim::trace::TraceEvent) {
            self.writer.event(ev);
            self.shared.event(ev);
        }
    }
    let (shared, events) = SharedTraceCollector::new();
    sim.set_tracer(Box::new(Both {
        writer: TraceWriter::new(),
        shared,
    }));
    sim.run_until(Time::from_secs(2));

    let events = events.lock().unwrap();
    let head: Vec<String> = {
        // Re-render the head from the shared buffer (the writer half lives
        // inside the simulator; this avoids pulling it back out).
        let mut w = TraceWriter::new();
        for ev in events.iter().take(36) {
            w.event(ev);
        }
        w.as_str().lines().map(String::from).collect()
    };
    println!(
        "first {} trace lines of a congested 2 Mbit/s dumbbell:\n",
        head.len()
    );
    for line in &head {
        println!("  {line}");
    }
    let count = |op: TraceOp| events.iter().filter(|e| e.op == op).count();
    println!(
        "\n2 simulated seconds: {} enqueues, {} transmissions, {} deliveries, {} drops",
        count(TraceOp::Enqueue),
        count(TraceOp::Transmit),
        count(TraceOp::Deliver),
        count(TraceOp::Drop),
    );

    // ...and show the same world at experiment altitude for contrast.
    let espec = {
        let mut s = ExperimentSpec::new(2, OnOffConfig::fig2(), Dur::from_secs(10), 1);
        s.dumbbell = spec;
        s
    };
    let r = run_experiment(&espec, provision_cubic(CubicParams::default()));
    println!(
        "\nsame network, harness view over 10 s: {:.2} Mbit/s per flow, {:.1} ms queueing, {:.2}% loss",
        r.metrics.throughput_mbps,
        r.metrics.queueing_delay_ms,
        r.metrics.loss_rate * 100.0
    );
}
