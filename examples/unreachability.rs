//! §2.4 closed loop on a *simulated* network: script a link outage,
//! watch senders spiral into RTO backoff and abort, export what the
//! receivers saw through a sampled + lossy IPFIX pipeline, and let the
//! provider-side diagnosis plane detect the unreachability window and
//! name the failed link — without ever being told about it.
//!
//! This is the companion to `outage_diagnosis`, which drives the same
//! detector from *synthetic* telemetry. Here every record traces back to
//! an individual simulated packet.
//!
//! Run with: `cargo run --release --example unreachability`

use std::collections::HashMap;
use std::net::Ipv4Addr;

use phi::diagnosis::{
    detect, localize, sliced_from_collector, DetectorConfig, LocalizerConfig, SeasonalModel,
    SliceKey,
};
use phi::sim::engine::Simulator;
use phi::sim::faults::ImpairmentPlan;
use phi::sim::queue::Capacity;
use phi::sim::time::{Dur, Time};
use phi::sim::topology::TopologyBuilder;
use phi::sim::trace::{SharedTraceCollector, TraceOp};
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::NoHook;
use phi::tcp::receiver::TcpReceiver;
use phi::tcp::sender::{SenderConfig, TcpSender};
use phi::telemetry::{Collector, FlowKey, LossyExporter, Mode, Sampler};
use phi::workload::{OnOffConfig, OnOffSource, SeedRng};

const PAIRS: usize = 4;
const FAULTY: usize = 2;
const RUN_SECS: u64 = 2400;
const DOWN: u64 = 1200;
const UP: u64 = 1800;

fn main() {
    // --- Build: four client populations, each behind its own access
    //     link; a spine keeps the graph connected but carries nothing. ---
    let mut b = TopologyBuilder::new();
    let spine = b.add_node();
    let mut ends = Vec::new();
    let mut fwd_links = Vec::new();
    for _ in 0..PAIRS {
        let a = b.add_node();
        let z = b.add_node();
        let (f, _r) = b.add_duplex(
            a,
            z,
            1_000_000,
            Dur::from_millis(10),
            Capacity::Packets(100),
        );
        b.add_duplex(
            spine,
            a,
            1_000_000,
            Dur::from_millis(50),
            Capacity::Packets(100),
        );
        ends.push((a, z));
        fwd_links.push(f);
    }
    let mut sim = Simulator::new(b.build());

    // --- Script the fault: pair 2's data link dies for minutes 20–30. ---
    let plan = ImpairmentPlan::new().outage(Time::from_secs(DOWN), Time::from_secs(UP));
    sim.install_impairments(fwd_links[FAULTY], plan, &SeedRng::new(31337));
    println!(
        "ground truth: link {:?} down {}s..{}s (minutes {}..{})\n",
        fwd_links[FAULTY],
        DOWN,
        UP,
        DOWN / 60,
        UP / 60
    );

    let mut senders = Vec::new();
    let mut rx_nodes = Vec::new();
    for (i, &(a, z)) in ends.iter().enumerate() {
        let mut cfg = SenderConfig::new(z, 80, 10);
        cfg.flow_id_base = (i as u64) << 32;
        cfg.max_rto = Dur::from_secs(2);
        cfg.max_consecutive_rtos = Some(6);
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 10_000.0,
                mean_off_secs: 1.0,
                deterministic: true,
            },
            SeedRng::new(1000 + i as u64),
        );
        senders.push(sim.add_agent(
            a,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        ));
        sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
        rx_nodes.push(z);
    }

    let (tracer, events) = SharedTraceCollector::new();
    sim.set_tracer(tracer);
    sim.run_until(Time::from_secs(RUN_SECS));

    // --- What the endpoints experienced. ---
    let census = sim.packet_census();
    println!(
        "packet census: {} injected, {} delivered, {} blackholed (conserved: {})",
        census.injected,
        census.delivered,
        census.blackholed,
        census.conserved()
    );
    for (i, &s) in senders.iter().enumerate() {
        let s = sim.agent_as::<TcpSender>(s).unwrap();
        let aborted = s.reports().iter().filter(|r| r.aborted).count();
        let restarts: u64 = s.reports().iter().map(|r| r.idle_restarts).sum();
        println!(
            "  sender {i}: {} flows, {} aborted (path unreachable), {} idle restarts",
            s.reports().len(),
            aborted,
            restarts
        );
    }

    // --- §2.1 export path: receiver deliveries → 1-in-2 sampler →
    //     lossy exporter (5% transit loss) → bounded collector. ---
    let pair_of: HashMap<_, _> = rx_nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let minutes = (RUN_SECS / 60) as usize;
    let mut sampler = Sampler::new(2, Mode::Probabilistic, SeedRng::new(7));
    let mut exporter = LossyExporter::new(4096, 0.05, SeedRng::new(8));
    let mut collector = Collector::bounded(PAIRS * minutes + 16, 4096);
    let mut submits = 0u64;
    for ev in events.lock().unwrap().iter() {
        if ev.op != TraceOp::Deliver || ev.is_ack {
            continue;
        }
        let Some(&pair) = ev.node.as_ref().and_then(|n| pair_of.get(n)) else {
            continue;
        };
        let key = FlowKey {
            src_ip: Ipv4Addr::new(10, 0, pair as u8, 1),
            dst_ip: Ipv4Addr::new(203, 0, pair as u8, 10),
            src_port: (ev.flow & 0xffff) as u16,
            dst_port: 443,
            proto: 6,
        };
        if let Some(rec) = sampler.observe(key, ev.at.as_nanos() / 1_000_000, ev.size) {
            exporter.submit(rec);
            submits += 1;
            if submits.is_multiple_of(1000) {
                exporter.flush_into(&mut collector);
            }
        }
    }
    exporter.flush_into(&mut collector);
    let (observed, sampled) = sampler.counters();
    println!(
        "\ntelemetry: {observed} packets observed, {sampled} sampled, {} lost in transit, \
         {} shed at the exporter, {} records collected ({} dropped at the collector)",
        exporter.lost(),
        exporter.dropped(),
        collector.record_count(),
        collector.dropped_records()
    );

    // --- §3.4 diagnosis: the provider sees only per-(/24, minute) flow
    //     counts; the address plan maps each /24 to a client AS. ---
    let sliced = sliced_from_collector(&collector, 60, minutes, |id| SliceKey {
        service: 1,
        asn: 64_500 + u32::from(id.subnet.network().octets()[2]),
        metro: 1,
    });
    let total = sliced.total();
    let model = SeasonalModel::fit(&total, 5, 20);
    let cfg = DetectorConfig {
        z_threshold: -2.5,
        min_run: 3,
        max_gap: 1,
    };
    let anomalies = detect(&total, &model, &cfg);
    println!("\ndetected {} unreachability event(s):", anomalies.len());
    for e in &anomalies {
        println!(
            "  minutes {}..{}, mean z {:.1}, {:.0}% of expected volume missing",
            e.start_bin,
            e.end_bin + 1,
            e.mean_z,
            e.deficit_fraction * 100.0
        );
        match localize(&sliced, e, 5, 20, &LocalizerConfig::default()) {
            Some(loc) => {
                for (dim, val) in &loc.constraints {
                    println!(
                        "  localized: {dim:?} = {val} ({:.0}% of the deficit, {:.0}% of its own volume gone)",
                        loc.deficit_share * 100.0,
                        loc.drop_fraction * 100.0
                    );
                }
                let blamed = fwd_links[(loc.constraints[0].1 - 64_500) as usize];
                println!(
                    "  verdict: AS{} maps back to link {blamed:?} — ground truth {}",
                    loc.constraints[0].1,
                    if blamed == fwd_links[FAULTY] {
                        "recovered"
                    } else {
                        "MISSED"
                    }
                );
            }
            None => println!("  (no slice qualifies — event is unlocalizable)"),
        }
    }
}
