//! A real Phi context server over TCP.
//!
//! Starts the threaded [`phi::core::ContextServer`] on a loopback port,
//! then runs a fleet of client "senders" (threads) that follow the
//! §2.2.2 protocol — look up the congestion context when a connection
//! starts, report the experience when it ends — and shows the shared
//! picture converging: utilization, queueing, and competing-sender counts
//! that no individual sender could see alone.
//!
//! Then the failure half of the contract: a server at its connection cap
//! sheds the overflow with a clean `OVERLOADED` error frame, and a
//! [`phi::core::ResilientClient`] pointed at a dead plane degrades to
//! "no context" — backoff, circuit breaker, no blocking — exactly what a
//! Phi sender maps to vanilla TCP defaults.
//!
//! Run with: `cargo run --release --example context_server`

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use phi::core::{
    wire, ClientConfig, ClientError, ContextClient, ContextServer, ContextStore, FlowSummary,
    HaOptions, PathKey, ResilienceConfig, ResilientClient, Role, ServerConfig, StoreConfig,
};

fn main() {
    // One path (think: one busy destination /24), capacity 100 Mbit/s.
    let path = PathKey(0xC0FFEE);
    let store = phi::core::sync_store(ContextStore::new(StoreConfig {
        window_ns: 2_000_000_000, // 2 s sliding window (demo timescale)
        capacity_bps: Some(100_000_000.0),
        queue_alpha: 0.3,
    }));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind context server");
    let addr = server.addr();
    println!("context server listening on {addr}\n");

    // A fleet of sender threads, each running a few "connections".
    let fleet: Vec<_> = (0..6)
        .map(|i: u64| {
            std::thread::spawn(move || {
                let mut client = ContextClient::connect(addr).expect("connect");
                for conn in 0..4u64 {
                    let ctx = client.lookup(path).expect("lookup");
                    // Pick aggressiveness from the shared context, like a
                    // Phi sender chooses Cubic parameters.
                    let aggressive = ctx.utilization < 0.5;
                    // "Transfer": pretend the connection ran for 150-400 ms
                    // moving 0.5-2 MB, busier when aggressive.
                    let bytes = if aggressive { 2_000_000 } else { 500_000 };
                    let dur_ms = 150 + 50 * i + 20 * conn;
                    std::thread::sleep(Duration::from_millis(dur_ms / 10)); // sped up
                    client
                        .report(
                            path,
                            FlowSummary {
                                bytes,
                                duration_ns: dur_ms * 1_000_000,
                                mean_rtt_ms: 150.0 + 8.0 * i as f64,
                                min_rtt_ms: 150.0,
                                retransmits: u32::from(!aggressive),
                                timeouts: 0,
                            },
                        )
                        .expect("report");
                }
            })
        })
        .collect();
    for t in fleet {
        t.join().expect("sender thread");
    }

    // An observer asks for the final "network weather".
    let mut observer = ContextClient::connect(addr).expect("connect");
    let ctx = observer.lookup(path).expect("lookup");
    println!("shared congestion context after the fleet ran:");
    println!("  utilization u  = {:.2}", ctx.utilization);
    println!("  queueing q     = {:.1} ms (RTT inflation)", ctx.queue_ms);
    println!(
        "  competing n    = {} (the observer's own lookup registered it)",
        ctx.competing
    );

    let stats = server.stats();
    println!(
        "\nserver counters: {} connections, {} lookups, {} reports, {} protocol errors",
        stats.connections.load(Ordering::Relaxed),
        stats.lookups.load(Ordering::Relaxed),
        stats.reports.load(Ordering::Relaxed),
        stats.protocol_errors.load(Ordering::Relaxed),
    );

    server.shutdown();
    println!("server shut down cleanly\n");

    overload_demo();
    degradation_demo();
    ha_demo();
}

/// A server at its connection cap answers the overflow with a protocol
/// error frame instead of hanging or silently closing.
fn overload_demo() {
    println!("-- overload: shedding past the connection cap --");
    let store = phi::core::sync_store(ContextStore::new(StoreConfig::default()));
    let server =
        ContextServer::start_with("127.0.0.1:0", store, ServerConfig { max_connections: 2 })
            .expect("bind capped server");
    let addr = server.addr();

    // Two clients fill the cap and stay connected.
    let parked: Vec<ContextClient> = (0..2)
        .map(|i| {
            let mut c = ContextClient::connect(addr).expect("connect");
            c.lookup(PathKey(i)).expect("lookup");
            c
        })
        .collect();

    // The third is shed with a clean answer it can act on.
    let mut spill = ContextClient::connect(addr).expect("tcp connect");
    match spill.lookup(PathKey(9)) {
        Err(ClientError::Server { code, message }) if code == wire::code::OVERLOADED => {
            println!("  third client shed: code {code} ({message})");
        }
        other => println!("  unexpected: {other:?}"),
    }
    println!(
        "  server counted {} rejection(s)\n",
        server.stats().rejected.load(Ordering::Relaxed)
    );
    drop(parked);
    server.shutdown();
}

/// The §2.2.2 contract under a dead plane: every lookup degrades to
/// "no context" within its deadline, the breaker opens after repeated
/// failures, and short-circuited requests don't even touch the network.
fn degradation_demo() {
    println!("-- degradation: the plane dies, the sender must not --");
    let store = phi::core::sync_store(ContextStore::new(StoreConfig::default()));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();

    let mut client = ResilientClient::with_config(
        addr,
        ResilienceConfig {
            client: ClientConfig {
                connect_timeout: Duration::from_millis(100),
                request_deadline: Duration::from_millis(100),
            },
            max_retries: 1,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(20),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(250),
            ..ResilienceConfig::default()
        },
    )
    .expect("resolve");

    // Healthy plane: lookups answer.
    let healthy = client.lookup(PathKey(1)).is_some();
    println!("  plane up:   lookup answered = {healthy}");

    // Kill the plane mid-flight.
    server.shutdown();

    // Every call now degrades to None — bounded by deadline + backoff,
    // never an error the data path has to handle.
    for i in 0..4u64 {
        let ctx = client.lookup(PathKey(i));
        println!(
            "  plane down: lookup -> {:?}, breaker open = {}",
            ctx.map(|c| c.utilization),
            client.breaker_open()
        );
    }
    let s = client.stats();
    println!(
        "  stats: {} requests, {} degraded, {} breaker trip(s), {} short-circuited",
        s.requests, s.failures, s.breaker_trips, s.short_circuited
    );
    println!("  the sender keeps running on default parameters — vanilla TCP\n");
}

/// High availability: a primary replicates to a backup, crashes mid-run,
/// and the backup is promoted at epoch 2. Each sender's failover client
/// walks its endpoint list and resumes against *replicated* state; the
/// only cost is a per-sender degradation window (lookups answering "no
/// context") between the crash and the first successful failover.
fn ha_demo() {
    println!("-- high availability: primary crash, epoch-fenced failover --");
    let path = PathKey(0xC0FFEE);
    let store_cfg = StoreConfig {
        window_ns: 10_000_000_000,
        capacity_bps: Some(100_000_000.0),
        queue_alpha: 0.3,
    };

    // A backup at epoch 1 (fences all client traffic until promoted)...
    let backup = ContextServer::start_ha(
        "127.0.0.1:0",
        phi::core::sync_store(ContextStore::new(store_cfg)),
        ServerConfig::default(),
        HaOptions {
            role: Role::Backup,
            ..HaOptions::default()
        },
    )
    .expect("bind backup");

    // ...and a primary streaming every mutation to it.
    let primary = ContextServer::start_ha(
        "127.0.0.1:0",
        phi::core::sync_store(ContextStore::new(store_cfg)),
        ServerConfig::default(),
        HaOptions {
            backups: vec![backup.addr()],
            ..HaOptions::default()
        },
    )
    .expect("bind primary");
    let endpoints = vec![primary.addr(), backup.addr()];
    println!(
        "  primary {} (epoch {}), backup {} (fenced)",
        primary.addr(),
        primary.epoch(),
        backup.addr()
    );

    // Three senders, each with a failover client over [primary, backup],
    // looking up + reporting every few milliseconds and timing how long
    // lookups answered "no context".
    let start = Instant::now();
    let senders: Vec<_> = (0..3u64)
        .map(|i| {
            let endpoints = endpoints.clone();
            std::thread::spawn(move || {
                let mut client = ResilientClient::multi(
                    endpoints,
                    ResilienceConfig {
                        client: ClientConfig {
                            connect_timeout: Duration::from_millis(50),
                            request_deadline: Duration::from_millis(50),
                        },
                        max_retries: 1,
                        backoff_base: Duration::from_millis(2),
                        backoff_max: Duration::from_millis(10),
                        breaker_threshold: 4,
                        breaker_cooldown: Duration::from_millis(20),
                        ..ResilienceConfig::default()
                    },
                );
                let mut window: Option<(Duration, Duration)> = None; // (first miss, last miss)
                for _ in 0..60 {
                    match client.lookup(path) {
                        Some(_) => {
                            client.report(
                                path,
                                FlowSummary {
                                    bytes: 500_000 + 100_000 * i,
                                    duration_ns: 50_000_000,
                                    mean_rtt_ms: 160.0 + 5.0 * i as f64,
                                    min_rtt_ms: 150.0,
                                    retransmits: 0,
                                    timeouts: 0,
                                },
                            );
                        }
                        None => {
                            let t = start.elapsed();
                            let w = window.get_or_insert((t, t));
                            w.1 = t;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                (window, client.observed_epoch(), client.stats().fenced)
            })
        })
        .collect();

    // Let replication settle, then kill the primary mid-run and promote
    // the backup at a strictly greater epoch — the fencing token that
    // makes the deposed primary's replies unusable.
    std::thread::sleep(Duration::from_millis(150));
    primary.shutdown();
    println!("  primary crashed at t={:?}", start.elapsed());
    // Detection + promotion takes a while in real deployments; during
    // this window no replica answers and the senders run degraded.
    std::thread::sleep(Duration::from_millis(250));
    assert!(backup.promote(2), "promotion at epoch 2 must succeed");
    println!(
        "  backup promoted: epoch 1 -> {} at t={:?}",
        backup.epoch(),
        start.elapsed()
    );

    for (i, t) in senders.into_iter().enumerate() {
        let (window, epoch, fenced) = t.join().expect("sender thread");
        match window {
            Some((from, to)) => println!(
                "  sender {i}: degraded {:?} -> {:?} ({:?} without context), \
                 resumed at epoch {epoch}, {fenced} fenced reply(ies)",
                from,
                to,
                to - from
            ),
            None => println!("  sender {i}: never degraded, finished at epoch {epoch}"),
        }
    }

    // The promoted backup serves the *replicated* context, not an empty
    // store: the fleet's pre-crash reports survived the primary.
    let mut observer = ContextClient::connect(backup.addr()).expect("connect");
    let ctx = observer.lookup(path).expect("lookup");
    let stats = backup.stats();
    println!(
        "  promoted backup: u = {:.2} (replicated pre-crash state), \
         {} delta(s) applied, {} snapshot sync(s), {} fenced pre-promotion request(s)",
        ctx.utilization,
        stats.repl_applied.load(Ordering::Relaxed),
        stats.repl_syncs.load(Ordering::Relaxed),
        stats.fenced.load(Ordering::Relaxed),
    );
    backup.shutdown();
    println!("  failover complete — the plane outlived its primary");
}
