//! A real Phi context server over TCP.
//!
//! Starts the threaded [`phi::core::ContextServer`] on a loopback port,
//! then runs a fleet of client "senders" (threads) that follow the
//! §2.2.2 protocol — look up the congestion context when a connection
//! starts, report the experience when it ends — and shows the shared
//! picture converging: utilization, queueing, and competing-sender counts
//! that no individual sender could see alone.
//!
//! Run with: `cargo run --release --example context_server`

use std::sync::atomic::Ordering;
use std::time::Duration;

use phi::core::{ContextClient, ContextServer, ContextStore, FlowSummary, PathKey, StoreConfig};

fn main() {
    // One path (think: one busy destination /24), capacity 100 Mbit/s.
    let path = PathKey(0xC0FFEE);
    let store = phi::core::sync_store(ContextStore::new(StoreConfig {
        window_ns: 2_000_000_000, // 2 s sliding window (demo timescale)
        capacity_bps: Some(100_000_000.0),
        queue_alpha: 0.3,
    }));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind context server");
    let addr = server.addr();
    println!("context server listening on {addr}\n");

    // A fleet of sender threads, each running a few "connections".
    let fleet: Vec<_> = (0..6)
        .map(|i: u64| {
            std::thread::spawn(move || {
                let mut client = ContextClient::connect(addr).expect("connect");
                for conn in 0..4u64 {
                    let ctx = client.lookup(path).expect("lookup");
                    // Pick aggressiveness from the shared context, like a
                    // Phi sender chooses Cubic parameters.
                    let aggressive = ctx.utilization < 0.5;
                    // "Transfer": pretend the connection ran for 150-400 ms
                    // moving 0.5-2 MB, busier when aggressive.
                    let bytes = if aggressive { 2_000_000 } else { 500_000 };
                    let dur_ms = 150 + 50 * i + 20 * conn;
                    std::thread::sleep(Duration::from_millis(dur_ms / 10)); // sped up
                    client
                        .report(
                            path,
                            FlowSummary {
                                bytes,
                                duration_ns: dur_ms * 1_000_000,
                                mean_rtt_ms: 150.0 + 8.0 * i as f64,
                                min_rtt_ms: 150.0,
                                retransmits: u32::from(!aggressive),
                                timeouts: 0,
                            },
                        )
                        .expect("report");
                }
            })
        })
        .collect();
    for t in fleet {
        t.join().expect("sender thread");
    }

    // An observer asks for the final "network weather".
    let mut observer = ContextClient::connect(addr).expect("connect");
    let ctx = observer.lookup(path).expect("lookup");
    println!("shared congestion context after the fleet ran:");
    println!("  utilization u  = {:.2}", ctx.utilization);
    println!("  queueing q     = {:.1} ms (RTT inflation)", ctx.queue_ms);
    println!(
        "  competing n    = {} (the observer's own lookup registered it)",
        ctx.competing
    );

    let stats = server.stats();
    println!(
        "\nserver counters: {} connections, {} lookups, {} reports, {} protocol errors",
        stats.connections.load(Ordering::Relaxed),
        stats.lookups.load(Ordering::Relaxed),
        stats.reports.load(Ordering::Relaxed),
        stats.protocol_errors.load(Ordering::Relaxed),
    );

    server.shutdown();
    println!("server shut down cleanly");
}
