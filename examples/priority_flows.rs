//! §3.3: prioritization across flows with a TCP-friendly ensemble.
//!
//! One provider owns four long-running flows crossing the bottleneck —
//! a premium HD stream, two normal transfers, and a background bulk copy.
//! The ensemble allocator turns those priorities into MulTCP weights that
//! sum to 4, so the bundle as a whole consumes the share of four standard
//! flows; four independent standard-TCP cross-traffic flows share the
//! link with it. Inside the bundle, bandwidth follows importance.
//!
//! Run with: `cargo run --release --example priority_flows`

use phi::core::harness::{run_experiment, ExperimentSpec, Provisioned};
use phi::core::priority::{multcp_params, EnsembleAllocator, Importance};
use phi::sim::time::Dur;
use phi::tcp::hook::NoHook;
use phi::tcp::{NewReno, NewRenoParams};
use phi::workload::OnOffConfig;

fn main() {
    let classes = [
        Importance::Premium,
        Importance::Normal,
        Importance::Normal,
        Importance::Bulk,
    ];
    let weights = EnsembleAllocator.weights_for(&classes);
    println!("ensemble weights (sum = flow count, keeping the bundle TCP-friendly):");
    for (c, w) in classes.iter().zip(&weights) {
        println!(
            "  {c:?}: weight {w:.2}  (MulTCP: +{w:.2} seg/RTT, shrink to {:.0}% on loss)",
            (1.0 - 1.0 / (2.0 * w)) * 100.0
        );
    }

    // 8 long-running flows: 0..4 = the provider's weighted ensemble,
    // 4..8 = independent standard-TCP cross traffic.
    let mut spec = ExperimentSpec::new(8, OnOffConfig::long_running(), Dur::from_secs(120), 7);
    spec.dumbbell.bottleneck_bps = 40_000_000;
    spec.dumbbell.rtt = Dur::from_millis(80);

    let w = weights.clone();
    let result = run_experiment(&spec, move |ctx| {
        let params = if ctx.index < 4 {
            multcp_params(w[ctx.index])
        } else {
            NewRenoParams::default()
        };
        Provisioned {
            factory: Box::new(move |_| Box::new(NewReno::new(params))),
            hook: Box::new(NoHook),
        }
    });

    println!(
        "\nper-flow goodput over {} s of contention:",
        spec.duration.as_secs_f64()
    );
    let horizon = spec.duration.as_secs_f64();
    let mut shares = Vec::new();
    let mut ensemble = 0.0;
    let mut cross = 0.0;
    for i in 0..8 {
        let bytes: u64 = result.per_sender[i].iter().map(|r| r.bytes).sum::<u64>()
            + result.partials[i].as_ref().map(|p| p.bytes).unwrap_or(0);
        let mbps = bytes as f64 * 8.0 / horizon / 1e6;
        shares.push(mbps);
        let label = if i < 4 {
            format!("{:?} (w={:.2})", classes[i], weights[i])
        } else {
            "cross-traffic standard TCP".to_string()
        };
        if i < 4 {
            ensemble += mbps;
        } else {
            cross += mbps;
        }
        println!("  flow {i}: {label:<34} {mbps:>6.2} Mbit/s");
    }

    println!(
        "\nensemble aggregate {ensemble:.1} Mbit/s vs cross-traffic aggregate {cross:.1} Mbit/s \
         ({:.0}% / {:.0}% of the shared link)",
        ensemble / (ensemble + cross) * 100.0,
        cross / (ensemble + cross) * 100.0
    );
    println!(
        "within the ensemble: premium {:.2} Mbit/s  >  normal {:.2}/{:.2}  >  bulk {:.2}",
        shares[0], shares[1], shares[2], shares[3]
    );
    println!(
        "\nThe bundle stays TCP-friendly in aggregate while redistributing\n\
         its share by importance — prioritization across hosts (§3.3),\n\
         not within one."
    );
}
