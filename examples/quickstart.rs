//! Quickstart: the paper's headline effect in one run.
//!
//! Eight on/off senders share the Figure 1 dumbbell (15 Mbit/s, 150 ms
//! RTT, 5×BDP buffer). We compare three arms on identical workloads:
//!
//! 1. unmodified TCP Cubic (ns-2 defaults of Table 1),
//! 2. Cubic with one well-chosen fixed setting (the §2.2.1 "optimal"),
//! 3. Cubic-Phi: each connection looks up the shared congestion context
//!    at start and draws its parameters from the policy table (§2.2.2).
//!
//! Run with: `cargo run --release --example quickstart`

use phi::core::{
    provision_cubic, provision_cubic_phi, run_repeated, score, ExperimentSpec, Objective,
    PolicyTable,
};
use phi::sim::time::Dur;
use phi::tcp::report::RunMetrics;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

fn main() {
    let spec = ExperimentSpec::new(8, OnOffConfig::fig2(), Dur::from_secs(60), 42);
    let runs = 3;
    println!(
        "Dumbbell: {} senders, {} Mbit/s bottleneck, {} ms base RTT, {} runs x {}s\n",
        spec.dumbbell.pairs,
        spec.dumbbell.bottleneck_bps / 1_000_000,
        spec.base_rtt_ms(),
        runs,
        spec.duration.as_secs_f64(),
    );

    let arms: Vec<(&str, Vec<RunMetrics>)> = vec![
        (
            "Cubic (default)",
            run_repeated(&spec, runs, provision_cubic(CubicParams::default()))
                .into_iter()
                .map(|r| r.metrics)
                .collect(),
        ),
        (
            "Cubic (tuned 32/64/0.2)",
            run_repeated(
                &spec,
                runs,
                provision_cubic(CubicParams::tuned(32.0, 64.0, 0.2)),
            )
            .into_iter()
            .map(|r| r.metrics)
            .collect(),
        ),
        (
            "Cubic-Phi (context + policy)",
            run_repeated(&spec, runs, provision_cubic_phi(PolicyTable::reference()))
                .into_iter()
                .map(|r| r.metrics)
                .collect(),
        ),
    ];

    println!(
        "{:<30} {:>12} {:>12} {:>9} {:>8} {:>10}",
        "scheme", "tput (Mbps)", "queue (ms)", "loss (%)", "util", "power P_l"
    );
    let mut baseline = None;
    for (name, metrics) in &arms {
        let m = RunMetrics::mean_of(metrics);
        let p = score(Objective::PowerLoss, &m, spec.base_rtt_ms());
        if baseline.is_none() {
            baseline = Some(p);
        }
        println!(
            "{:<30} {:>12.2} {:>12.2} {:>9.3} {:>8.2} {:>10.4}  ({:+.0}% vs default)",
            name,
            m.throughput_mbps,
            m.queueing_delay_ms,
            m.loss_rate * 100.0,
            m.utilization,
            p,
            (p / baseline.expect("set above") - 1.0) * 100.0,
        );
    }

    println!(
        "\nThe tuned and Phi arms trade the default's slow-start overshoot\n\
         (huge initial ssthresh -> queue filling -> loss) for a faster,\n\
         bounded start: higher throughput at lower queueing delay."
    );
}
