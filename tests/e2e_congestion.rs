//! End-to-end congestion-control pipeline: sweep → policy → Phi senders.
//!
//! Exercises the whole §2.2 loop across crates: the optimizer finds good
//! parameters on the simulator, a policy table is built from them, and
//! Phi-provisioned senders (context store + practical hooks) then beat
//! the unmodified defaults on the paper's metric under a fresh workload.

use phi::core::{
    policy_from_sweeps, provision_cubic, provision_cubic_phi, run_experiment, run_repeated, score,
    sweep_cubic, ExperimentSpec, Objective, SweepSpec, DUMBBELL_PATH,
};
use phi::sim::time::Dur;
use phi::tcp::report::RunMetrics;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

fn quick_spec(pairs: usize, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        pairs,
        OnOffConfig {
            mean_on_bytes: 300_000.0,
            mean_off_secs: 1.0,
            deterministic: false,
        },
        Dur::from_secs(20),
        seed,
    );
    spec.dumbbell.bottleneck_bps = 10_000_000;
    spec.dumbbell.rtt = Dur::from_millis(80);
    spec
}

#[test]
fn sweep_then_policy_then_phi_beats_default() {
    // 1. Sweep at two load levels.
    let grid = SweepSpec {
        init_window: vec![2.0, 16.0, 64.0],
        init_ssthresh: vec![16.0, 64.0],
        beta: vec![0.2],
    };
    let low = sweep_cubic(&quick_spec(3, 10), &grid, 2, Objective::PowerLoss);
    let high = sweep_cubic(&quick_spec(8, 20), &grid, 2, Objective::PowerLoss);

    // 2. Build the policy from the sweep winners.
    let policy = policy_from_sweeps(vec![
        (low.best().mean.utilization, low.best().params),
        (high.best().mean.utilization, high.best().params),
    ]);

    // 3. Evaluate Phi senders vs defaults on a fresh seed and mid load.
    let eval_spec = quick_spec(6, 99);
    let runs = 3;
    let default_runs = run_repeated(&eval_spec, runs, provision_cubic(CubicParams::default()));
    let phi_runs = run_repeated(&eval_spec, runs, provision_cubic_phi(policy));
    let base = eval_spec.base_rtt_ms();
    let s = |rs: &[phi::core::RunResult]| {
        let ms: Vec<RunMetrics> = rs.iter().map(|r| r.metrics.clone()).collect();
        score(Objective::PowerLoss, &RunMetrics::mean_of(&ms), base)
    };
    let d = s(&default_runs);
    let p = s(&phi_runs);
    assert!(
        p > d,
        "Phi-provisioned senders should beat defaults: {p:.4} vs {d:.4}"
    );

    // 4. The Phi run actually used the shared state.
    let (lookups, reports) = phi_runs[0].store.traffic_counters(DUMBBELL_PATH);
    assert!(
        lookups > 0 && reports > 0,
        "context store was not consulted"
    );
}

#[test]
fn identical_seeds_reproduce_exactly_across_provisioners() {
    let spec = quick_spec(4, 7);
    let a = run_experiment(&spec, provision_cubic(CubicParams::default()));
    let b = run_experiment(&spec, provision_cubic(CubicParams::default()));
    assert_eq!(a.events, b.events);
    assert_eq!(a.metrics.bytes, b.metrics.bytes);
    assert_eq!(a.metrics.flows_completed, b.metrics.flows_completed);
    // Byte-identical flow histories.
    for (ra, rb) in a.per_sender.iter().zip(&b.per_sender) {
        assert_eq!(ra.len(), rb.len());
        for (fa, fb) in ra.iter().zip(rb) {
            assert_eq!(fa.bytes, fb.bytes);
            assert_eq!(fa.start, fb.start);
            assert_eq!(fa.end, fb.end);
            assert_eq!(fa.retransmits, fb.retransmits);
        }
    }
}

#[test]
fn congestion_actually_degrades_the_uncoordinated_network() {
    // The premise of the paper: more blind senders => more queueing.
    let light = run_experiment(&quick_spec(2, 31), provision_cubic(CubicParams::default()));
    let heavy = run_experiment(&quick_spec(10, 31), provision_cubic(CubicParams::default()));
    assert!(
        heavy.metrics.queueing_delay_ms > light.metrics.queueing_delay_ms,
        "queueing should grow with offered load: {} vs {}",
        heavy.metrics.queueing_delay_ms,
        light.metrics.queueing_delay_ms
    );
    assert!(heavy.metrics.utilization > light.metrics.utilization);
}

#[test]
fn fifo_non_insulation_holds() {
    // §3.1/§3.2: with FIFO queueing a well-behaved flow is not insulated
    // from aggressive ones. A lone gentle sender sees low RTT; the same
    // sender next to aggressive defaults sees inflated RTT.
    let gentle_params = CubicParams::tuned(2.0, 8.0, 0.2);
    let alone = run_experiment(&quick_spec(1, 55), provision_cubic(gentle_params));
    let crowded_spec = quick_spec(8, 55);
    let crowded = run_experiment(&crowded_spec, move |ctx| {
        let params = if ctx.index == 0 {
            gentle_params
        } else {
            CubicParams::default()
        };
        phi::core::Provisioned {
            factory: Box::new(move |_| Box::new(phi::tcp::Cubic::new(params))),
            hook: Box::new(phi::tcp::NoHook),
        }
    });
    let gentle_alone = &alone.per_sender[0];
    let gentle_crowded = &crowded.per_sender[0];
    let mean_rtt = |rs: &[phi::tcp::FlowReport]| {
        let with_samples: Vec<&phi::tcp::FlowReport> =
            rs.iter().filter(|r| r.rtt_samples > 0).collect();
        with_samples.iter().map(|r| r.mean_rtt_ms).sum::<f64>() / with_samples.len().max(1) as f64
    };
    let solo = mean_rtt(gentle_alone);
    let shared = mean_rtt(gentle_crowded);
    assert!(
        shared > solo + 5.0,
        "FIFO should expose the gentle flow to others' queue: {solo:.1} vs {shared:.1} ms"
    );
}
