//! Serde round-trips for every public configuration and result type:
//! experiment specs must be storable (configs in repos, results in
//! EXPERIMENTS provenance), and a learned Remy tree must be shippable
//! from the trainer to the fleet.

use phi::core::harness::BottleneckQueue;
use phi::core::{
    ExperimentSpec, FlowSummary, FluidSpec, HaSpec, PolicyTable, ServerCrashPlan, ShardedHa,
    StoreConfig,
};
use phi::remy::{Action, WhiskerTree};
use phi::sim::time::Dur;
use phi::tcp::report::{FlowReport, RunMetrics};
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn experiment_spec_roundtrips() {
    let mut spec = ExperimentSpec::new(8, OnOffConfig::fig2(), Dur::from_secs(60), 42);
    spec.queue = BottleneckQueue::Red;
    spec.dupack_threshold = 5;
    let back = roundtrip(&spec);
    assert_eq!(back.dumbbell.pairs, 8);
    assert_eq!(back.duration, Dur::from_secs(60));
    assert_eq!(back.queue, BottleneckQueue::Red);
    assert_eq!(back.dupack_threshold, 5);
    assert_eq!(back.workload, OnOffConfig::fig2());
}

/// The HA section is additive: a spec serialized before the field
/// existed (no `"ha"` key) must still deserialize — to `None`, the
/// classic single-store plane — so stored experiment configs and
/// EXPERIMENTS provenance stay readable forever.
#[test]
fn pre_ha_spec_json_deserializes_to_no_ha_plane() {
    let spec = ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(30), 7);
    let mut json = serde_json::to_string(&spec).expect("serialize");
    assert!(
        json.contains("\"ha\""),
        "field should serialize when present"
    );
    // Strip the field the way an old writer simply wouldn't have had it.
    json = json.replace(",\"ha\":null", "");
    assert!(
        !json.contains("\"ha\""),
        "test must actually remove the key"
    );
    let back: ExperimentSpec = serde_json::from_str(&json).expect("old JSON must deserialize");
    assert_eq!(back.ha, None);
    assert_eq!(back.seed, 7);
}

#[test]
fn fluid_spec_roundtrips() {
    let mut spec = ExperimentSpec::new(6, OnOffConfig::fig2(), Dur::from_secs(45), 3).with_fluid();
    let fluid = spec.fluid.as_mut().expect("with_fluid sets the field");
    fluid.ref_loss = 2e-4;
    fluid.slow_start_model = false;
    fluid.efficiency = 0.8;
    let back = roundtrip(&spec);
    let f: FluidSpec = back.fluid.expect("fluid section survives");
    assert_eq!(f.ref_loss, 2e-4);
    assert!(!f.slow_start_model);
    assert_eq!(f.efficiency, 0.8);
    assert_eq!(back.seed, 3);
}

/// Like `ha`, the `fluid` section is additive: a spec serialized before
/// the field existed (no `"fluid"` key) must still deserialize — to
/// `None`, the packet-level path — so stored experiment configs and
/// EXPERIMENTS provenance stay readable (and bit-reproducible) forever.
#[test]
fn pre_fluid_spec_json_deserializes_to_packet_path() {
    let spec = ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(30), 7);
    let mut json = serde_json::to_string(&spec).expect("serialize");
    assert!(
        json.contains("\"fluid\""),
        "field should serialize when present"
    );
    json = json.replace(",\"fluid\":null", "");
    assert!(
        !json.contains("\"fluid\""),
        "test must actually remove the key"
    );
    let back: ExperimentSpec = serde_json::from_str(&json).expect("old JSON must deserialize");
    assert_eq!(back.fluid, None);
    assert_eq!(back.seed, 7);
}

/// The `domains` section is additive exactly like `ha` and `fluid`: it
/// round-trips when present, and a spec serialized before the field
/// existed (no `"domains"` key) still deserializes — to `None`, the
/// classic serial engine with its historical digests.
#[test]
fn domains_roundtrips_and_pre_domains_json_deserializes_to_serial() {
    let spec = ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(30), 7).with_domains(4);
    let back = roundtrip(&spec);
    assert_eq!(back.domains, Some(4));

    let spec = ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(30), 7);
    let mut json = serde_json::to_string(&spec).expect("serialize");
    assert!(
        json.contains("\"domains\""),
        "field should serialize when present"
    );
    json = json.replace(",\"domains\":null", "");
    assert!(
        !json.contains("\"domains\""),
        "test must actually remove the key"
    );
    let back: ExperimentSpec = serde_json::from_str(&json).expect("old JSON must deserialize");
    assert_eq!(back.domains, None);
    assert_eq!(back.seed, 7);
}

/// The `budget` section is additive exactly like `ha`, `fluid`, and
/// `domains`: it round-trips when present (every cap, individually and
/// combined), and a spec serialized before the field existed (no
/// `"budget"` key) still deserializes — to `None`, the un-budgeted pop
/// loop with its historical digests.
#[test]
fn budget_roundtrips_and_pre_budget_json_deserializes_to_unlimited() {
    use phi::sim::engine::RunBudget;

    for budget in [
        RunBudget::events(1_000_000),
        RunBudget::sim_time(Dur::from_secs(30)),
        RunBudget::wall_ms(5_000),
        RunBudget {
            max_events: Some(42),
            max_sim_time: Some(Dur::from_millis(750)),
            max_wall_ms: Some(100),
        },
    ] {
        assert_eq!(roundtrip(&budget), budget);
        let spec =
            ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(30), 7).with_budget(budget);
        let back = roundtrip(&spec);
        assert_eq!(back.budget, Some(budget));
    }

    let spec = ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(30), 7);
    let mut json = serde_json::to_string(&spec).expect("serialize");
    assert!(
        json.contains("\"budget\""),
        "field should serialize when present"
    );
    json = json.replace(",\"budget\":null", "");
    assert!(
        !json.contains("\"budget\""),
        "test must actually remove the key"
    );
    let back: ExperimentSpec = serde_json::from_str(&json).expect("old JSON must deserialize");
    assert_eq!(back.budget, None);
    assert_eq!(back.seed, 7);

    // And within the budget itself the caps are individually additive:
    // a budget JSON with only one cap named still deserializes.
    let partial: RunBudget = serde_json::from_str("{\"max_events\":9}").expect("partial budget");
    assert_eq!(partial.max_events, Some(9));
    assert_eq!(partial.max_sim_time, None);
    assert_eq!(partial.max_wall_ms, None);
}

#[test]
fn ha_spec_and_crash_plans_roundtrip() {
    for plan in [
        ServerCrashPlan::none(),
        ServerCrashPlan::crash_at(Dur::from_secs(5)),
        ServerCrashPlan::crash_restart(Dur::from_secs(5), Dur::from_secs(2)),
        ServerCrashPlan::flapping(
            Dur::from_secs(3),
            Dur::from_millis(500),
            Dur::from_secs(2),
            4,
            0.25,
        ),
    ] {
        assert_eq!(roundtrip(&plan), plan);
        let ha = HaSpec {
            plan,
            repl_lag: Dur::from_millis(75),
            failover_delay: Dur::from_millis(300),
            shards: None,
        };
        assert_eq!(roundtrip(&ha), ha);

        // And through the full spec, where it rides as Option<HaSpec>.
        let mut spec = ExperimentSpec::new(2, OnOffConfig::fig2(), Dur::from_secs(10), 1);
        spec.ha = Some(ha.clone());
        let back = roundtrip(&spec);
        assert_eq!(back.ha, Some(ha));
    }
}

/// The sharded-plane section of [`HaSpec`] rides the same additive
/// contract the `ha` field itself does: it round-trips when present, and
/// JSON written before the field existed (no `"shards"` key) still
/// deserializes — to `None`, the classic single plane.
#[test]
fn sharded_ha_roundtrips_and_pre_shards_json_still_deserializes() {
    let mut ha = HaSpec {
        plan: ServerCrashPlan::crash_restart(Dur::from_secs(5), Dur::from_secs(2)),
        repl_lag: Dur::from_millis(50),
        failover_delay: Dur::from_secs(1),
        shards: Some(ShardedHa {
            count: 4,
            crash_shard: 2,
        }),
    };
    assert_eq!(roundtrip(&ha), ha);

    // A pre-shards writer simply never had the key.
    ha.shards = None;
    let mut json = serde_json::to_string(&ha).expect("serialize");
    assert!(json.contains("\"shards\""), "field serializes when present");
    json = json.replace(",\"shards\":null", "");
    assert!(!json.contains("\"shards\""), "key must actually be removed");
    let back: HaSpec = serde_json::from_str(&json).expect("old JSON must deserialize");
    assert_eq!(back.shards, None);
    assert_eq!(back, ha);
}

#[test]
fn cubic_params_and_policy_roundtrip() {
    let p = CubicParams::tuned(32.0, 64.0, 0.3);
    assert_eq!(roundtrip(&p), p);
    let table = PolicyTable::reference();
    let back = roundtrip(&table);
    assert_eq!(back, table);
}

#[test]
fn whisker_tree_ships_to_the_fleet() {
    // Train-side: build a non-trivial tree.
    let mut tree = WhiskerTree::initial();
    tree.split_along(0, 3);
    tree.split(0);
    tree.set_action(
        1,
        Action {
            window_multiple: 0.7,
            window_increment: -2.0,
            intersend_ms: 4.0,
        },
    );
    // Wire: JSON (a fleet rollout artifact).
    let back: WhiskerTree = roundtrip(&tree);
    assert_eq!(back, tree);
    // Behaviour preserved: same lookups everywhere.
    for p in [
        [0.1, 0.2, 0.3, 0.9],
        [0.9, 0.9, 0.9, 0.1],
        [0.5, 0.5, 0.5, 0.5],
    ] {
        assert_eq!(back.action_for(&p), tree.action_for(&p));
    }
}

#[test]
fn reports_and_metrics_roundtrip() {
    let report = FlowReport {
        flow: phi::sim::packet::FlowId(7),
        bytes: 123_456,
        segments: 86,
        start: phi::sim::time::Time::from_millis(10),
        end: phi::sim::time::Time::from_millis(510),
        min_rtt: Some(Dur::from_millis(150)),
        mean_rtt_ms: 163.5,
        rtt_samples: 42,
        retransmits: 3,
        timeouts: 1,
        recoveries: 2,
        aborted: true,
        idle_restarts: 4,
    };
    let back = roundtrip(&report);
    assert_eq!(back.bytes, report.bytes);
    assert_eq!(back.min_rtt, report.min_rtt);
    assert_eq!(back.duration(), report.duration());
    assert!(back.aborted);
    assert_eq!(back.idle_restarts, 4);

    let metrics = RunMetrics {
        throughput_mbps: 2.5,
        queueing_delay_ms: 42.0,
        loss_rate: 0.01,
        mean_rtt_ms: 180.0,
        utilization: 0.7,
        flows_completed: 55,
        flows_aborted: 3,
        bytes: 9_999,
    };
    let back = roundtrip(&metrics);
    assert_eq!(back.flows_completed, 55);
    assert_eq!(back.flows_aborted, 3);
    assert!((back.throughput_mbps - 2.5).abs() < 1e-12);
}

#[test]
fn store_config_and_flow_summary_roundtrip() {
    let cfg = StoreConfig {
        window_ns: 5_000_000_000,
        capacity_bps: Some(15e6),
        queue_alpha: 0.25,
    };
    let back = roundtrip(&cfg);
    assert_eq!(back.window_ns, cfg.window_ns);
    assert_eq!(back.capacity_bps, cfg.capacity_bps);

    let s = FlowSummary {
        bytes: 1,
        duration_ns: 2,
        mean_rtt_ms: 3.0,
        min_rtt_ms: 4.0,
        retransmits: 5,
        timeouts: 6,
    };
    assert_eq!(roundtrip(&s), s);
}

/// The datacenter backpressure sections ride the same additive contract
/// as `ha`/`fluid`/`domains`/`budget`: `SwitchSpec` (with its nested
/// `EcnSpec`/`PfcSpec`) and `IncastConfig` round-trip when present, and
/// a spec serialized before the fields existed (no `"switch"` or
/// `"incast"` key) still deserializes — to `None`, the classic per-link
/// drop-tail islands and on/off workload with their historical digests.
#[test]
fn switch_and_incast_roundtrip_and_pre_datacenter_json_deserializes() {
    use phi::sim::switch::{EcnSpec, PfcSpec, SwitchSpec};
    use phi::workload::IncastConfig;

    // The nested specs themselves.
    let ecn = EcnSpec {
        min_bytes: 10_000,
        max_bytes: 50_000,
    };
    assert_eq!(roundtrip(&ecn), ecn);
    let pfc = PfcSpec {
        xoff_bytes: 30_000,
        xon_bytes: 12_000,
        watchdog: Dur::from_millis(50),
    };
    assert_eq!(roundtrip(&pfc), pfc);
    let switch = SwitchSpec::shared(256_000)
        .with_alpha(2.0)
        .with_ecn(EcnSpec::step(30_000))
        .with_pfc(pfc);
    assert_eq!(roundtrip(&switch), switch);

    // ECN/PFC are additive *within* SwitchSpec too: a bare shared-pool
    // switch JSON without those keys deserializes to a plain DT switch.
    let bare: SwitchSpec =
        serde_json::from_str("{\"pool_bytes\":1000,\"dt_alpha\":1.0}").expect("bare switch");
    assert_eq!(bare, SwitchSpec::shared(1_000));

    // Through the full spec.
    let incast = IncastConfig::fan_in(8).with_jitter(0.002);
    assert_eq!(roundtrip(&incast), incast);
    let spec = ExperimentSpec::new(8, OnOffConfig::fig2(), Dur::from_secs(10), 5)
        .with_switch(switch)
        .with_incast(incast);
    let back = roundtrip(&spec);
    assert_eq!(back.switch, Some(switch));
    assert_eq!(back.incast, Some(incast));

    // A pre-datacenter writer simply never had the keys.
    let spec = ExperimentSpec::new(4, OnOffConfig::fig2(), Dur::from_secs(30), 7);
    let mut json = serde_json::to_string(&spec).expect("serialize");
    for key in ["switch", "incast"] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "{key} should serialize when present"
        );
        json = json.replace(&format!(",\"{key}\":null"), "");
        assert!(
            !json.contains(&format!("\"{key}\"")),
            "test must actually remove the {key} key"
        );
    }
    let back: ExperimentSpec = serde_json::from_str(&json).expect("old JSON must deserialize");
    assert_eq!(back.switch, None);
    assert_eq!(back.incast, None);
    assert_eq!(back.seed, 7);
}
