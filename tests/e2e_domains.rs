//! Determinism regression tests for the conservative parallel engine.
//!
//! The PDES contract mirrors the `RunPool` contract one level down:
//! partitioning one run's topology into K domains changes *nothing*
//! about the results. Trace digests, the packet census, flow metrics,
//! and the summed scheduler conservation identity must be bit-identical
//! for any `PHI_DOMAINS` count — a lookahead bug, a racy merge, or a
//! key collision anywhere in the engine shows up here as a diff between
//! the 1-domain and K-domain executions.

use proptest::prelude::*;

use phi::core::harness::{provision_cubic, run_experiment, ExperimentSpec};
use phi::core::RunResult;
use phi::sim::par::{domains_from_env, ParallelSimulator};
use phi::sim::queue::Capacity;
use phi::sim::time::{Dur, Time};
use phi::sim::topology::{parking_lot, ParkingLotSpec};
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::NoHook;
use phi::tcp::receiver::TcpReceiver;
use phi::tcp::sender::{SenderConfig, TcpSender};
use phi::workload::{OnOffConfig, OnOffSource, SeedRng};

/// FNV-1a over a byte stream (same digest `e2e_parallel` pins).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Everything observable about one partitioned multihop run, digested.
struct RunFingerprint {
    trace_digest: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
    events: u64,
    long_bytes: u64,
    /// `scheduled - fired - skipped_stale - pending` summed over domains
    /// (must be the cancelled-adjusted zero the serial engine maintains).
    conserved: bool,
    cross_domain: u64,
}

/// The e2e_parallel golden multihop scenario — same topology, seeds, and
/// workload — run through the parallel engine at `k` domains.
fn golden_multihop(spec: &ParkingLotSpec, seed: u64, duration: Time, k: u32) -> RunFingerprint {
    let lot = parking_lot(spec);
    let mut sim = ParallelSimulator::new(lot.topology.clone(), k);
    let root = SeedRng::new(seed);
    let mut pairs = vec![lot.long_path];
    pairs.extend(lot.cross.iter().copied());
    let mut senders = Vec::new();
    for (i, (src, dst)) in pairs.iter().enumerate() {
        let mut cfg = SenderConfig::new(*dst, 80, 10);
        cfg.flow_id_base = (i as u64) << 32;
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 150_000.0,
                mean_off_secs: 0.3,
                deterministic: false,
            },
            root.fork_indexed("sender", i as u64),
        );
        senders.push(sim.add_agent(
            *src,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        ));
        sim.add_agent(*dst, 80, Box::new(TcpReceiver::new()));
    }
    sim.enable_tracing();
    sim.run_until(duration);

    let census = sim.packet_census();
    assert!(census.conserved(), "census leaks packets: {census:?}");
    let sched = sim.sched_stats();
    let trace_digest = fnv1a(
        sim.merged_trace()
            .iter()
            .flat_map(|ev| format!("{ev:?}\n").into_bytes()),
    );
    let long_bytes = sim
        .agent_as::<TcpSender>(senders[0])
        .unwrap()
        .reports()
        .iter()
        .map(|r| r.bytes)
        .sum();
    RunFingerprint {
        trace_digest,
        injected: census.injected,
        delivered: census.delivered,
        dropped: census.dropped,
        events: sim.events_processed(),
        long_bytes,
        conserved: sched.conserved(),
        cross_domain: sim.cross_domain_messages(),
    }
}

fn golden_spec() -> ParkingLotSpec {
    ParkingLotSpec {
        hops: 3,
        backbone_bps: 10_000_000,
        hop_delay: Dur::from_millis(5),
        capacity: Capacity::Packets(50),
        access_bps: 100_000_000,
    }
}

/// The acceptance pin: the golden multihop scenario is bit-identical for
/// `PHI_DOMAINS` ∈ {1, 2, 4} (plus whatever the CI matrix exports).
#[test]
fn golden_multihop_bit_identical_for_any_domain_count() {
    let spec = golden_spec();
    let reference = golden_multihop(&spec, 4242, Time::from_secs(3), 1);
    assert_eq!(reference.cross_domain, 0, "one domain exports nothing");
    assert!(reference.delivered > 1000, "scenario must carry real load");
    assert!(reference.conserved, "serial sched conservation broken");

    let mut ks = vec![2, 4];
    if let Some(k) = domains_from_env() {
        ks.push(k);
    }
    for k in ks {
        let got = golden_multihop(&spec, 4242, Time::from_secs(3), k);
        assert_eq!(
            got.trace_digest, reference.trace_digest,
            "trace digest diverged at K={k}"
        );
        assert_eq!(
            got.injected, reference.injected,
            "injected diverged at K={k}"
        );
        assert_eq!(
            got.delivered, reference.delivered,
            "delivered diverged at K={k}"
        );
        assert_eq!(got.dropped, reference.dropped, "dropped diverged at K={k}");
        assert_eq!(
            got.events, reference.events,
            "event count diverged at K={k}"
        );
        assert_eq!(
            got.long_bytes, reference.long_bytes,
            "flow bytes diverged at K={k}"
        );
        assert!(got.conserved, "summed sched conservation broken at K={k}");
        if k > 1 {
            assert!(got.cross_domain > 0, "multihop at K={k} must cross the cut");
        }
    }
}

/// Serialize everything observable about a harness run. JSON equality is
/// byte equality (floats print from their exact bits).
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&(&r.metrics, &r.per_sender, &r.partials, r.events))
        .expect("run result serializes")
}

/// `ExperimentSpec::domains` plumbs through the harness: identical
/// `RunMetrics` (and reports, and partials) for every domain count, and
/// the run's summed scheduler accounting conserves.
#[test]
fn harness_metrics_identical_for_any_domain_count() {
    let mut spec = ExperimentSpec::new(
        3,
        OnOffConfig {
            mean_on_bytes: 200_000.0,
            mean_off_secs: 0.8,
            deterministic: false,
        },
        Dur::from_secs(8),
        9090,
    );
    spec.dumbbell.bottleneck_bps = 8_000_000;
    spec.dumbbell.rtt = Dur::from_millis(60);

    spec.domains = Some(1);
    let reference = run_experiment(&spec, provision_cubic(CubicParams::default()));
    assert!(reference.metrics.flows_completed > 0, "must carry load");
    assert!(reference.sched.conserved(), "sched conservation broken");
    let reference = fingerprint(&reference);

    for k in [2u32, 4] {
        spec.domains = Some(k);
        let got = run_experiment(&spec, provision_cubic(CubicParams::default()));
        assert!(got.sched.conserved(), "sched conservation broken at K={k}");
        assert_eq!(fingerprint(&got), reference, "harness diverged at K={k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential engine check over random multihop topologies and flow
    /// mixes: every domain count replays the same execution, down to the
    /// trace digest, census, metrics, and summed scheduler conservation.
    #[test]
    fn random_multihop_bit_identical_across_domain_counts(
        hops in 2usize..5,
        backbone_mbps in 5u64..20,
        hop_delay_ms in 1u64..8,
        capacity in 20usize..60,
        mean_on in 60_000.0f64..200_000.0,
        mean_off in 0.2f64..0.8,
        seed in 1u64..10_000,
    ) {
        let spec = ParkingLotSpec {
            hops,
            backbone_bps: backbone_mbps * 1_000_000,
            hop_delay: Dur::from_millis(hop_delay_ms),
            capacity: Capacity::Packets(capacity),
            access_bps: 100_000_000,
        };
        // Short horizon: the property runs dozens of full simulations.
        let duration = Time::from_millis(1500);
        let lot_workload = OnOffConfig {
            mean_on_bytes: mean_on,
            mean_off_secs: mean_off,
            deterministic: false,
        };

        let run = |k: u32| {
            let lot = parking_lot(&spec);
            let mut sim = ParallelSimulator::new(lot.topology.clone(), k);
            let root = SeedRng::new(seed);
            let mut pairs = vec![lot.long_path];
            pairs.extend(lot.cross.iter().copied());
            for (i, (src, dst)) in pairs.iter().enumerate() {
                let mut cfg = SenderConfig::new(*dst, 80, 10);
                cfg.flow_id_base = (i as u64) << 32;
                let source = OnOffSource::new(lot_workload, root.fork_indexed("sender", i as u64));
                sim.add_agent(
                    *src,
                    10,
                    Box::new(TcpSender::new(
                        cfg,
                        source,
                        Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                        Box::new(NoHook),
                    )),
                );
                sim.add_agent(*dst, 80, Box::new(TcpReceiver::new()));
            }
            sim.enable_tracing();
            sim.run_until(duration);
            let census = sim.packet_census();
            prop_assert!(census.conserved(), "census leaks at K={}: {:?}", k, census);
            let sched = sim.sched_stats();
            prop_assert!(sched.conserved(), "sched leak at K={}: {:?}", k, sched);
            let digest = fnv1a(
                sim.merged_trace()
                    .iter()
                    .flat_map(|ev| format!("{ev:?}\n").into_bytes()),
            );
            Ok((digest, census, sim.events_processed()))
        };

        let (d1, c1, e1) = run(1)?;
        for k in [2u32, 4] {
            let (d, c, e) = run(k)?;
            prop_assert_eq!(d, d1, "digest diverged at K={}", k);
            prop_assert_eq!(c, c1, "census diverged at K={}", k);
            prop_assert_eq!(e, e1, "event count diverged at K={}", k);
        }
    }
}

/// Wall-clock speedup of the partitioned engine on a wide multihop
/// scenario: 4 domains vs 1. Ignored by default (this CI container may
/// be 1-CPU, per PR 1); run explicitly with
/// `cargo test --test e2e_domains -- --ignored`.
#[test]
#[ignore = "wall-clock benchmark: needs >= 4 idle cores"]
fn four_domains_speed_up_a_multihop_run() {
    let spec = ParkingLotSpec {
        hops: 7,
        backbone_bps: 40_000_000,
        hop_delay: Dur::from_millis(10),
        capacity: Capacity::Packets(100),
        access_bps: 400_000_000,
    };
    let duration = Time::from_secs(12);

    let t0 = std::time::Instant::now();
    let serial = golden_multihop(&spec, 7, duration, 1);
    let serial_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let parallel = golden_multihop(&spec, 7, duration, 4);
    let parallel_time = t1.elapsed();

    // Same answer...
    assert_eq!(parallel.trace_digest, serial.trace_digest);
    assert_eq!(parallel.delivered, serial.delivered);
    // ...meaningfully faster.
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    assert!(
        speedup >= 1.5,
        "4 domains only {speedup:.2}x faster ({serial_time:?} -> {parallel_time:?})"
    );
}
