//! High availability in the context plane, end to end: the primary
//! context server crashes mid-run, the backup takes over at epoch+1,
//! and the senders ride through the failover with bounded goodput cost.
//!
//! Three contracts are pinned here:
//!
//! 1. A *healthy* replicated plane ([`HaSpec::none`]) is bit-identical
//!    to the classic single shared store — replication is pure overhead
//!    bookkeeping, invisible to the traffic.
//! 2. A crash-and-failover run delivers at least 0.9x the goodput of the
//!    no-crash baseline (the §2.2.2 degradation guarantee, now under
//!    server loss rather than network loss).
//! 3. Crash injection is part of the deterministic surface: runs replay
//!    bit-for-bit for any `RunPool` worker count (`PHI_JOBS=1` vs
//!    `PHI_JOBS=4`), down to the FNV digest of the full result.

use phi::core::context::PathKey;
use phi::core::harness::{
    run_experiment, run_repeated_on, ExperimentSpec, ProvisionCtx, Provisioned,
};
use phi::core::runpool::RunPool;
use phi::core::{
    provision_cubic_phi, provision_cubic_phi_ha, shard_index, HaHook, HaSpec, PolicyTable,
    RunResult, ServerCrashPlan, ShardedHa,
};
use phi::sim::time::Dur;
use phi::tcp::cubic::Cubic;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

fn spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        4,
        OnOffConfig {
            mean_on_bytes: 200_000.0,
            mean_off_secs: 0.8,
            deterministic: false,
        },
        Dur::from_secs(15),
        4242,
    );
    spec.dumbbell.bottleneck_bps = 8_000_000;
    spec.dumbbell.rtt = Dur::from_millis(60);
    spec
}

/// A mid-run primary crash: dies at t=5s, the crashed replica restarts
/// 2s later and resyncs from the new primary. The failover window is a
/// full second so the outage is visible in the counters.
fn crash_spec() -> ExperimentSpec {
    let mut spec = spec();
    spec.ha = Some(HaSpec {
        plan: ServerCrashPlan::crash_restart(Dur::from_secs(5), Dur::from_secs(2)),
        repl_lag: Dur::from_millis(50),
        failover_delay: Dur::from_secs(1),
        shards: None,
    });
    spec
}

/// Serialize everything observable about a run — now *including* the HA
/// plane's report (epoch, crash counters, surviving-state digest), so a
/// nondeterminism bug in the crash plane itself cannot hide behind
/// identical traffic.
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&(
        &r.metrics,
        &r.per_sender,
        &r.partials,
        r.events,
        &r.ha,
        &r.ha_shards,
    ))
    .expect("run result serializes")
}

/// Total bytes delivered (completed flows + partials at the deadline).
fn delivered(r: &RunResult) -> u64 {
    let done: u64 = r.per_sender.iter().flatten().map(|rep| rep.bytes).sum();
    let partial: u64 = r.partials.iter().flatten().map(|rep| rep.bytes).sum();
    done + partial
}

/// FNV-1a over a byte stream (same digest the golden-trace tests use).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Contract 1: a replicated plane that never crashes is not merely
/// "close to" the classic shared store — it is bit-identical, because a
/// healthy plane's serving replica performs exactly the store operations
/// [`phi::core::PracticalHook`] would, and the crash RNG is a label-
/// derived fork that never touches the workload streams.
#[test]
fn healthy_replicated_plane_is_bit_identical_to_the_shared_store() {
    let classic = run_experiment(&spec(), provision_cubic_phi(PolicyTable::reference()));

    let mut ha_spec = spec();
    ha_spec.ha = Some(HaSpec::none());
    let replicated = run_experiment(&ha_spec, provision_cubic_phi_ha(PolicyTable::reference()));

    assert!(
        classic.metrics.flows_completed > 0,
        "baseline did nothing: {:?}",
        classic.metrics
    );
    // Compare everything except the HA report (the classic run has none).
    let strip = |r: &RunResult| {
        serde_json::to_string(&(&r.metrics, &r.per_sender, &r.partials, r.events)).unwrap()
    };
    assert_eq!(
        strip(&replicated),
        strip(&classic),
        "a healthy replicated plane must be invisible to the traffic"
    );

    let ha = replicated.ha.expect("HA spec produces an HA report");
    assert_eq!(ha.epoch, 1, "no crash, no promotion");
    assert_eq!(ha.counters.crashes, 0);
    assert_eq!(ha.counters.failovers, 0);
    assert_eq!(ha.counters.lookups_dropped, 0);
    assert_eq!(ha.counters.reports_dropped, 0);
    assert_eq!(ha.counters.ops_lost, 0);
    assert!(ha.counters.lookups > 0, "senders never used the plane");
    assert!(ha.counters.reports > 0, "senders never reported back");
}

/// Contract 2: the primary dies mid-run, the backup is promoted at
/// epoch 2, and total goodput stays within 0.9x of the no-crash
/// baseline — the degradation window costs at most the failover delay
/// per affected sender, not the rest of the run.
#[test]
fn crash_mid_run_fails_over_with_bounded_goodput_cost() {
    let baseline = run_experiment(&spec(), provision_cubic_phi(PolicyTable::reference()));
    let crashed = run_experiment(
        &crash_spec(),
        provision_cubic_phi_ha(PolicyTable::reference()),
    );

    let ha = crashed.ha.expect("HA spec produces an HA report");
    assert_eq!(ha.counters.crashes, 1, "plan scripts exactly one crash");
    assert_eq!(ha.counters.failovers, 1, "backup must take over");
    assert_eq!(ha.epoch, 2, "promotion bumps the epoch");
    assert!(
        ha.counters.lookups_dropped + ha.counters.reports_dropped > 0,
        "a 1s failover window must be visible to some sender: {:?}",
        ha.counters
    );
    // Some senders still got context after the failover: the promoted
    // backup serves replicated state, not an empty store.
    assert!(
        ha.counters.lookups > ha.counters.lookups_dropped,
        "plane never answered: {:?}",
        ha.counters
    );

    let base_bytes = delivered(&baseline) as f64;
    let crash_bytes = delivered(&crashed) as f64;
    assert!(
        crash_bytes >= 0.9 * base_bytes,
        "failover cost too much goodput: {crash_bytes:.0} vs baseline {base_bytes:.0}"
    );
    assert!(
        crashed.metrics.flows_completed as f64 >= 0.9 * baseline.metrics.flows_completed as f64,
        "flows stalled across the failover: {} vs {}",
        crashed.metrics.flows_completed,
        baseline.metrics.flows_completed
    );
    for (i, reports) in crashed.per_sender.iter().enumerate() {
        assert!(!reports.is_empty(), "sender {i} completed no flows");
    }
}

/// Contract 3: crash injection replays bit-for-bit under any worker
/// count. `RunPool::serial()` is `PHI_JOBS=1`; `RunPool::new(4)` is
/// `PHI_JOBS=4`. The fingerprint includes the HA report, and the final
/// FNV digest over all runs is compared as a single value — the same
/// shape of check that pins the golden packet trace.
#[test]
fn failover_runs_bit_identical_for_any_worker_count() {
    let mut flap_spec = spec();
    flap_spec.ha = Some(HaSpec {
        plan: ServerCrashPlan::flapping(
            Dur::from_secs(3),
            Dur::from_millis(500),
            Dur::from_secs(2),
            3,
            0.5,
        ),
        repl_lag: Dur::from_millis(50),
        failover_delay: Dur::from_secs(1),
        shards: None,
    });

    for spec in [crash_spec(), flap_spec] {
        let reference: Vec<String> = run_repeated_on(
            &RunPool::serial(),
            &spec,
            3,
            provision_cubic_phi_ha(PolicyTable::reference()),
        )
        .iter()
        .map(fingerprint)
        .collect();
        let serial_digest = fnv1a(reference.iter().flat_map(|s| s.bytes().collect::<Vec<_>>()));

        // Distinct runs must be distinct (the seeds, and with them the
        // jittered crash windows, really differ per run index).
        assert!(
            reference.windows(2).any(|w| w[0] != w[1]),
            "all runs produced the same result: per-run seed derivation is broken"
        );

        for workers in [2, 4] {
            let got: Vec<String> = run_repeated_on(
                &RunPool::new(workers),
                &spec,
                3,
                provision_cubic_phi_ha(PolicyTable::reference()),
            )
            .iter()
            .map(fingerprint)
            .collect();
            let digest = fnv1a(got.iter().flat_map(|s| s.bytes().collect::<Vec<_>>()));
            assert_eq!(
                got, reference,
                "{workers} workers diverged from serial under crash injection"
            );
            assert_eq!(
                digest, serial_digest,
                "{workers} workers changed the digest"
            );
        }
    }
}

/// Number of shards the sharded-failover tests run.
const SHARDS: u32 = 4;

/// Each sender rides its own path so the senders spread across shards
/// (the shared-dumbbell [`phi::core::DUMBBELL_PATH`] would pin them all
/// to one shard and make sharding invisible).
fn sender_path(index: usize) -> PathKey {
    PathKey(index as u64)
}

/// Provision plain Cubic senders whose hooks talk to the *sharded* HA
/// plane set, one path per sender. The factory ignores the lookup
/// snapshot, so the plane can crash and fail over without feeding back
/// into the traffic — which is exactly what lets the test demand
/// bit-identical behaviour from the shards a crash never touched.
fn provision_cubic_sharded_ha() -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    |ctx| {
        let path = sender_path(ctx.index);
        let plane = ctx
            .ha
            .as_ref()
            .expect("sharded spec carries an HA plane set")
            .plane_for(path)
            .clone();
        Provisioned {
            factory: Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
            hook: Box::new(HaHook::new(plane, path)),
        }
    }
}

fn sharded_spec(pairs: usize, crash_shard: u32) -> ExperimentSpec {
    let mut spec = spec();
    spec.dumbbell = phi::sim::topology::DumbbellSpec::paper(pairs);
    spec.dumbbell.bottleneck_bps = 8_000_000;
    spec.dumbbell.rtt = Dur::from_millis(60);
    spec.ha = Some(HaSpec {
        // A long outage: crash at 5s, failover takes 2s, so every sender
        // on the crashed shard has connections starting inside [5s, 7s).
        plan: ServerCrashPlan::crash_restart(Dur::from_secs(5), Dur::from_secs(2)),
        repl_lag: Dur::from_millis(50),
        failover_delay: Dur::from_secs(2),
        shards: Some(ShardedHa {
            count: SHARDS,
            crash_shard,
        }),
    });
    spec
}

/// The per-shard failover contract, end to end: crash the primary behind
/// ONE shard mid-run and (a) only that shard's senders see a degradation
/// window, (b) every other shard's state — hence every reply it served —
/// is bit-identical to a run where nothing crashed, and (c) the whole
/// sharded-crash machinery replays bit-for-bit for any worker count.
#[test]
fn shard_crash_degrades_only_that_shards_senders() {
    let pairs = 8;
    let crash_shard = shard_index(sender_path(0), SHARDS as usize) as u32;
    // Sanity: the 8 sender paths must put traffic on the crashed shard
    // AND at least one other shard, or the test shows nothing.
    let shards_used: std::collections::HashSet<usize> = (0..pairs)
        .map(|i| shard_index(sender_path(i), SHARDS as usize))
        .collect();
    assert!(shards_used.len() > 1, "all senders landed on one shard");

    let crashed = run_experiment(
        &sharded_spec(pairs, crash_shard),
        provision_cubic_sharded_ha(),
    );
    let mut healthy_spec = sharded_spec(pairs, crash_shard);
    healthy_spec.ha.as_mut().unwrap().plan = ServerCrashPlan::none();
    let healthy = run_experiment(&healthy_spec, provision_cubic_sharded_ha());

    // The planes are invisible to plain-Cubic traffic, so the two runs'
    // traffic must be identical — the crash only shows in the HA reports.
    let traffic = |r: &RunResult| {
        serde_json::to_string(&(&r.metrics, &r.per_sender, &r.partials, r.events)).unwrap()
    };
    assert_eq!(
        traffic(&crashed),
        traffic(&healthy),
        "a context-plane crash must never alter uncooperating traffic"
    );

    let crashed_shards = crashed.ha_shards.as_ref().expect("sharded HA report");
    let healthy_shards = healthy.ha_shards.as_ref().expect("sharded HA report");
    assert_eq!(crashed_shards.len(), SHARDS as usize);
    assert!(crashed.ha.is_none(), "sharded runs report per shard only");

    for (s, (c, h)) in crashed_shards.iter().zip(healthy_shards).enumerate() {
        if s == crash_shard as usize {
            // (a) The crashed shard: one scripted crash, a promotion to
            // epoch 2, and a visible degradation window for its senders.
            assert_eq!(c.counters.crashes, 1, "shard {s}: {:?}", c.counters);
            assert_eq!(c.counters.failovers, 1, "shard {s}: {:?}", c.counters);
            assert_eq!(c.epoch, 2, "promotion bumps only the crashed shard");
            assert!(
                c.counters.lookups_dropped + c.counters.reports_dropped > 0,
                "a 2s outage must be visible on the crashed shard: {:?}",
                c.counters
            );
        } else {
            // (a) Every other shard: no crash, no failover, not one op
            // dropped — its senders never saw a degradation window.
            assert_eq!(c.counters.crashes, 0, "shard {s} crashed: {:?}", c.counters);
            assert_eq!(c.counters.failovers, 0);
            assert_eq!(c.counters.lookups_dropped, 0, "shard {s}: {:?}", c.counters);
            assert_eq!(c.counters.reports_dropped, 0);
            assert_eq!(c.counters.ops_lost, 0);
            assert_eq!(c.epoch, 1, "shard {s} must not be promoted");
            // (b) Bit-identical replies: same ops in, same store state
            // out — pinned by the serving replica's snapshot digest
            // matching the run where nothing crashed anywhere.
            assert_eq!(
                c.state_digest, h.state_digest,
                "shard {s}'s state diverged though the crash was elsewhere"
            );
            assert_eq!(c.counters, h.counters, "shard {s} op counts diverged");
        }
        assert!(
            c.counters.lookups > 0,
            "shard {s} served no senders — paths don't cover it"
        );
    }
}

/// Sharded crash injection is inside the deterministic surface: the full
/// per-shard fingerprint (traffic + every shard's HA report) is
/// bit-identical for `PHI_JOBS` ∈ {1, 4}.
#[test]
fn sharded_failover_runs_bit_identical_for_any_worker_count() {
    let spec = sharded_spec(8, shard_index(sender_path(0), SHARDS as usize) as u32);
    let reference: Vec<String> =
        run_repeated_on(&RunPool::serial(), &spec, 2, provision_cubic_sharded_ha())
            .iter()
            .map(fingerprint)
            .collect();
    assert!(
        reference[0].contains("\"epoch\":2"),
        "fingerprints must carry the per-shard failover: {}",
        &reference[0][..reference[0].len().min(400)]
    );
    let got: Vec<String> =
        run_repeated_on(&RunPool::new(4), &spec, 2, provision_cubic_sharded_ha())
            .iter()
            .map(fingerprint)
            .collect();
    assert_eq!(
        got, reference,
        "4 workers diverged from serial under sharded crash injection"
    );
}
