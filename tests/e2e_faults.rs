//! End-to-end network chaos: a scripted link outage flows through the
//! whole §2.4 loop — senders experience it (RTO spiral, abort verdicts),
//! the telemetry plane exports what the receivers saw (sampled, lossy,
//! bounded), and the diagnosis plane detects the unreachability window
//! and localizes it to the failed link.
//!
//! Also pins the degradation guarantee: a fault confined to one
//! sender/receiver pair leaves every other pair's flow reports
//! bit-identical to the no-fault baseline.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use phi::core::runpool::RunPool;
use phi::diagnosis::{
    detect, localize, sliced_from_collector, DetectorConfig, Dimension, LocalizerConfig,
    SeasonalModel, SliceKey,
};
use phi::sim::engine::Simulator;
use phi::sim::faults::{ImpairmentPlan, LossModel};
use phi::sim::packet::{AgentId, LinkId, NodeId};
use phi::sim::queue::Capacity;
use phi::sim::time::{Dur, Time};
use phi::sim::topology::TopologyBuilder;
use phi::sim::trace::{SharedTraceCollector, TraceOp};
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::NoHook;
use phi::tcp::receiver::TcpReceiver;
use phi::tcp::sender::{SenderConfig, TcpSender};
use phi::telemetry::{Collector, FlowKey, LossyExporter, Mode, Sampler};
use phi::workload::{OnOffConfig, OnOffSource, SeedRng};

/// Four disjoint sender→receiver pairs; a fault on pair `FAULTY`'s
/// forward (data) link cannot touch the other three by construction, so
/// any cross-pair diff is an engine bug.
const PAIRS: usize = 4;
const FAULTY: usize = 2;
const RUN_SECS: u64 = 2400; // 40 one-minute buckets
const OUTAGE_DOWN: u64 = 1200; // minute 20
const OUTAGE_UP: u64 = 1800; // minute 30

struct Fan {
    sim: Simulator,
    senders: Vec<AgentId>,
    rx_nodes: Vec<NodeId>,
    fwd_links: Vec<LinkId>,
}

fn fan(faulty: bool) -> Fan {
    let mut b = TopologyBuilder::new();
    let mut ends = Vec::new();
    let mut fwd_links = Vec::new();
    let spine = b.add_node();
    for _ in 0..PAIRS {
        let a = b.add_node();
        let z = b.add_node();
        let (f, _r) = b.add_duplex(
            a,
            z,
            1_000_000,
            Dur::from_millis(10),
            Capacity::Packets(100),
        );
        // Spine links satisfy strong connectivity but never carry pair
        // traffic: the direct link is always the shorter path.
        b.add_duplex(
            spine,
            a,
            1_000_000,
            Dur::from_millis(50),
            Capacity::Packets(100),
        );
        ends.push((a, z));
        fwd_links.push(f);
    }
    let mut sim = Simulator::new(b.build());
    if faulty {
        let plan =
            ImpairmentPlan::new().outage(Time::from_secs(OUTAGE_DOWN), Time::from_secs(OUTAGE_UP));
        sim.install_impairments(fwd_links[FAULTY], plan, &SeedRng::new(31337));
    }
    let mut senders = Vec::new();
    let mut rx_nodes = Vec::new();
    for (i, &(a, z)) in ends.iter().enumerate() {
        let mut cfg = SenderConfig::new(z, 80, 10);
        cfg.flow_id_base = (i as u64) << 32;
        cfg.max_rto = Dur::from_secs(2);
        cfg.max_consecutive_rtos = Some(6);
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 10_000.0,
                mean_off_secs: 1.0,
                deterministic: true,
            },
            SeedRng::new(1000 + i as u64),
        );
        senders.push(sim.add_agent(
            a,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        ));
        sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
        rx_nodes.push(z);
    }
    Fan {
        sim,
        senders,
        rx_nodes,
        fwd_links,
    }
}

fn reports_json(sim: &Simulator, sender: AgentId) -> String {
    let s = sim.agent_as::<TcpSender>(sender).unwrap();
    serde_json::to_string(&s.reports()).expect("reports serialize")
}

#[test]
fn outage_detected_localized_and_others_bit_identical() {
    // --- No-fault baseline (reports only). ---
    let mut baseline = fan(false);
    baseline.sim.run_until(Time::from_secs(RUN_SECS));
    let baseline_reports: Vec<String> = baseline
        .senders
        .iter()
        .map(|&s| reports_json(&baseline.sim, s))
        .collect();

    // --- Faulty run, traced. ---
    let mut faulty = fan(true);
    let (tracer, events) = SharedTraceCollector::new();
    faulty.sim.set_tracer(tracer);
    faulty.sim.run_until(Time::from_secs(RUN_SECS));

    // The extended conservation law closes under the outage.
    let census = faulty.sim.packet_census();
    assert!(census.conserved(), "census leaks packets: {census:?}");
    assert!(census.blackholed > 0, "the outage never ate a packet");
    let fs = faulty.sim.fault_stats(faulty.fwd_links[FAULTY]);
    assert_eq!(fs.edges, 2, "one down edge, one up edge");
    assert_eq!(fs.blackholed, census.blackholed);

    // Degradation guarantee: unaffected pairs are bit-identical to the
    // no-fault baseline, down to every timestamp and RTT sample.
    for (i, base) in baseline_reports.iter().enumerate() {
        let got = reports_json(&faulty.sim, faulty.senders[i]);
        if i == FAULTY {
            assert_ne!(&got, base, "the fault changed nothing");
        } else {
            assert_eq!(
                &got, base,
                "pair {i} shares no link with the fault but diverged"
            );
        }
    }
    // No baseline flow aborted; the affected sender aborted repeatedly,
    // then recovered after the heal.
    for (i, json) in baseline_reports.iter().enumerate() {
        assert!(
            !json.contains("\"aborted\":true"),
            "baseline pair {i} aborted"
        );
    }
    let affected = faulty
        .sim
        .agent_as::<TcpSender>(faulty.senders[FAULTY])
        .unwrap();
    let aborted = affected.reports().iter().filter(|r| r.aborted).count();
    assert!(aborted >= 5, "expected an abort spiral, got {aborted}");
    let healed = affected
        .reports()
        .iter()
        .filter(|r| !r.aborted && r.start > Time::from_secs(OUTAGE_UP))
        .count();
    assert!(healed >= 10, "sender never recovered after heal: {healed}");
    assert!(
        affected.reports().iter().all(|r| r.aborted
            || !(Time::from_secs(OUTAGE_DOWN + 30)..Time::from_secs(OUTAGE_UP)).contains(&r.end)),
        "no flow can complete mid-outage"
    );

    // --- §2.1 telemetry: receivers' deliveries → sampler → lossy
    //     exporter → wire codec → bounded collector. ---
    let minutes = (RUN_SECS / 60) as usize;
    let pair_of: HashMap<NodeId, usize> = faulty
        .rx_nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();
    // Count-based (router-style) sampling. The fan's synchronized
    // deterministic flows used to phase-lock with the shared-counter
    // sampler and alias entire pairs away; per-flow wheels (seeded FNV
    // phase per flow key) sample every pair at exactly 1-in-N of its
    // own packets, so deterministic mode is now safe here.
    let mut sampler = Sampler::new(2, Mode::Deterministic, SeedRng::new(7));
    let mut exporter = LossyExporter::new(4096, 0.05, SeedRng::new(8));
    let mut collector = Collector::bounded(PAIRS * minutes + 16, 4096);
    let mut submits = 0u64;
    for ev in events.lock().unwrap().iter() {
        if ev.op != TraceOp::Deliver || ev.is_ack {
            continue;
        }
        let Some(&pair) = ev.node.as_ref().and_then(|n| pair_of.get(n)) else {
            continue;
        };
        let key = FlowKey {
            src_ip: Ipv4Addr::new(10, 0, pair as u8, 1),
            dst_ip: Ipv4Addr::new(203, 0, pair as u8, 10),
            src_port: (ev.flow & 0xffff) as u16,
            dst_port: 443,
            proto: 6,
        };
        if let Some(rec) = sampler.observe(key, ev.at.as_nanos() / 1_000_000, ev.size) {
            exporter.submit(rec);
            submits += 1;
            if submits.is_multiple_of(1000) {
                exporter.flush_into(&mut collector);
            }
        }
    }
    exporter.flush_into(&mut collector);
    assert!(exporter.lost() > 0, "the lossy exporter lost nothing");
    assert_eq!(collector.dropped_records(), 0, "bounds sized to fit");
    assert!(collector.record_count() > 1000, "telemetry starved");

    // --- §3.4 diagnosis: collector buckets → sliced series → seasonal
    //     baseline → detect → localize. ---
    let sliced = sliced_from_collector(&collector, 60, minutes, |id| SliceKey {
        service: 1,
        asn: 64_500 + u32::from(id.subnet.network().octets()[2]),
        metro: 1,
    });
    assert_eq!(sliced.slice_count(), PAIRS);
    let total = sliced.total();
    let model = SeasonalModel::fit(&total, 5, 20);
    let cfg = DetectorConfig {
        z_threshold: -2.5,
        min_run: 3,
        max_gap: 1,
    };
    let anomalies = detect(&total, &model, &cfg);
    assert_eq!(anomalies.len(), 1, "expected one event: {anomalies:?}");
    let event = anomalies[0];
    let (down_min, up_min) = ((OUTAGE_DOWN / 60) as usize, (OUTAGE_UP / 60) as usize);
    assert!(
        (down_min..down_min + 2).contains(&event.start_bin),
        "detector missed the onset: {event:?}"
    );
    assert!(
        (up_min - 2..up_min + 1).contains(&event.end_bin),
        "detector missed the heal: {event:?}"
    );
    assert!(
        event.deficit_fraction > 0.15,
        "deficit too small: {event:?}"
    );

    let loc =
        localize(&sliced, &event, 5, 20, &LocalizerConfig::default()).expect("event must localize");
    let expect_asn = 64_500 + FAULTY as u32;
    assert_eq!(
        loc.constraints,
        vec![(Dimension::Asn, expect_asn)],
        "localization blamed the wrong population"
    );
    assert!(loc.drop_fraction > 0.9, "{loc:?}");
    // Close the loop: the named AS maps back to exactly the failed link.
    let blamed_link = faulty.fwd_links[(loc.constraints[0].1 - 64_500) as usize];
    assert_eq!(blamed_link, faulty.fwd_links[FAULTY]);
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// One heavily impaired TCP transfer, digested down to a hash over its
/// complete packet trace (including blackhole/corrupt/duplicate events).
fn impaired_run_digest() -> (u64, u64, u64) {
    let mut b = TopologyBuilder::new();
    let a = b.add_node();
    let z = b.add_node();
    let (fwd, _rev) = b.add_duplex(a, z, 2_000_000, Dur::from_millis(10), Capacity::Packets(50));
    let mut sim = Simulator::new(b.build());
    let plan = ImpairmentPlan::new()
        .flap(
            Time::from_millis(500),
            Time::from_millis(2500),
            Dur::from_millis(100),
            Dur::from_millis(150),
        )
        .loss(LossModel::GilbertElliott {
            p_enter_bad: 0.02,
            p_exit_bad: 0.2,
            good_loss: 0.005,
            bad_loss: 0.5,
        })
        .corrupt(0.02)
        .duplicate(0.05)
        .reorder(0.2, Dur::from_millis(10));
    sim.install_impairments(fwd, plan, &SeedRng::new(4242));
    let mut cfg = SenderConfig::new(z, 80, 10);
    cfg.max_rto = Dur::from_secs(1);
    cfg.max_consecutive_rtos = Some(8);
    let source = OnOffSource::new(
        OnOffConfig {
            mean_on_bytes: 40_000.0,
            mean_off_secs: 0.3,
            deterministic: true,
        },
        SeedRng::new(5),
    );
    sim.add_agent(
        a,
        10,
        Box::new(TcpSender::new(
            cfg,
            source,
            Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
            Box::new(NoHook),
        )),
    );
    sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
    let (tracer, events) = SharedTraceCollector::new();
    sim.set_tracer(tracer);
    sim.run_until(Time::from_secs(4));

    let census = sim.packet_census();
    assert!(census.conserved(), "census leaks packets: {census:?}");
    let digest = fnv1a(
        events
            .lock()
            .unwrap()
            .iter()
            .flat_map(|ev| format!("{ev:?}\n").into_bytes()),
    );
    (digest, census.delivered, census.blackholed)
}

/// The impairment pipeline's behavior is pinned: any change to fault
/// draw order, edge scheduling, or engine integration fails loudly here.
#[test]
fn impaired_trace_digest_matches_pinned_golden() {
    let (digest, delivered, blackholed) = impaired_run_digest();
    println!("GOLDEN digest={digest:#018x} delivered={delivered} blackholed={blackholed}");
    const GOLDEN_DIGEST: u64 = 0x07f2_2dc0_34e8_6c47;
    const GOLDEN_DELIVERED: u64 = 122;
    const GOLDEN_BLACKHOLED: u64 = 17;
    assert_eq!(digest, GOLDEN_DIGEST, "impairment trace diverged");
    assert_eq!(delivered, GOLDEN_DELIVERED);
    assert_eq!(blackholed, GOLDEN_BLACKHOLED);
}

/// The chaos plane honors the `PHI_JOBS` contract: fanning impaired runs
/// across worker threads changes nothing.
#[test]
fn impaired_digests_bit_identical_for_any_worker_count() {
    let serial = RunPool::serial().run(3, |_| impaired_run_digest());
    for workers in [2, 4] {
        let parallel = RunPool::new(workers).run(3, |_| impaired_run_digest());
        assert_eq!(parallel, serial, "{workers} workers changed a trace");
    }
}
