//! End-to-end datacenter backpressure tests: incast collapse on a
//! shared-buffer switch, the DCTCP remedy, and PFC pause-storm recovery.
//!
//! Three acceptance properties for the backpressure plane:
//!
//! 1. **Incast collapse & the ECN remedy** — a synchronized fan-in
//!    through a small shared buffer collapses Cubic (pool rejections →
//!    synchronized loss → timeout-bound goodput) while DCTCP, fed the
//!    same switch's ECN marks, sustains at least **2×** Cubic's goodput.
//! 2. **Pause-storm watchdog** — a cyclic buffer dependency across a
//!    three-switch ring deadlocks a PFC fabric whose watchdog is
//!    effectively disabled; with a real watchdog period the cycle is
//!    detected and broken within a bounded sim-time window, the census
//!    still closes, and every destroyed packet is accounted as
//!    `pfc_dropped`.
//! 3. **Bit-identity** — all of it is deterministic: the harness run is
//!    fingerprint-identical for PHI_JOBS ∈ {1, 4} and K ∈ {1, 2}
//!    domains, and the PFC triangle produces identical traces for
//!    K ∈ {1, 2}.

use std::any::Any;

use phi::core::harness::{
    provision_cubic, provision_dctcp, run_experiment, run_repeated_on, ExperimentSpec,
};
use phi::core::{RunPool, RunResult};
use phi::sim::engine::{packet_to, Agent, Ctx, PacketCensus};
use phi::sim::packet::{FlowId, NodeId, Packet};
use phi::sim::par::ParallelSimulator;
use phi::sim::queue::Capacity;
use phi::sim::switch::{EcnSpec, PfcSpec, SwitchSpec, SwitchStats};
use phi::sim::time::{Dur, Time};
use phi::sim::topology::{LinkSpec, TopologyBuilder};
use phi::sim::trace::TraceEvent;
use phi::tcp::cubic::CubicParams;
use phi::tcp::dctcp::DctcpParams;
use phi::workload::IncastConfig;

// ---------------------------------------------------------------------------
// (1) Incast collapse: Cubic vs DCTCP through the same shared buffer.
// ---------------------------------------------------------------------------

/// A 12-way synchronized fan-in through a shallow shared-buffer switch:
/// datacenter-ish rates and RTT, a pool a couple dozen packets deep, and
/// a DCTCP-style step marking threshold well below it.
fn incast_spec() -> ExperimentSpec {
    let workers = 12u32;
    let mut spec = ExperimentSpec::new(
        workers as usize,
        // Placeholder on/off config; the incast source replaces it.
        phi::workload::OnOffConfig::fig2(),
        Dur::from_secs(10),
        7171,
    );
    spec.dumbbell.bottleneck_bps = 50_000_000;
    spec.dumbbell.access_bps = 400_000_000;
    spec.dumbbell.rtt = Dur::from_millis(2);
    // One perfectly synchronized 64 KB-per-worker burst: the cohort
    // slow-starts in lockstep into the shallow pool, synchronized drops
    // strand flow tails with too few trailing segments for dup-ACK
    // recovery, and the victims eat (200 ms min) retransmission
    // timeouts while the bottleneck sits idle — the classic incast
    // failure mode.
    let incast = IncastConfig {
        workers,
        bytes_per_worker: 64 * 1024,
        rounds: 1,
        round_gap_secs: 0.0,
        jitter_secs: 0.0,
    };
    spec.with_switch(
        SwitchSpec::shared(48_000)
            .with_alpha(8.0)
            .with_ecn(EcnSpec::step(9_000)),
    )
    .with_incast(incast)
}

/// Incast goodput at the collapse point: total bytes over the fan-in's
/// makespan (first start to last completion). Stragglers stuck in RTO
/// dominate the makespan, so timeout collapse shows up here even when
/// early finishers post high per-flow rates.
fn goodput_mbps(r: &RunResult) -> f64 {
    let reports = r.per_sender.iter().flatten();
    let bytes: u64 = reports.clone().map(|f| f.bytes).sum();
    let t0 = reports.clone().map(|f| f.start).min().expect("flows ran");
    let t1 = reports.map(|f| f.end).max().expect("flows ran");
    bytes as f64 * 8.0 / (t1 - t0).as_secs_f64() / 1e6
}

#[test]
fn dctcp_sustains_2x_cubic_goodput_at_the_collapse_point() {
    let spec = incast_spec();

    let cubic = run_experiment(&spec, provision_cubic(CubicParams::default()));
    let dctcp = run_experiment(&spec, provision_dctcp(DctcpParams::default()));

    let [cl, cr] = cubic.switch_stats.expect("switch installed");
    let [dl, dr] = dctcp.switch_stats.expect("switch installed");

    // Cubic is not ECN-capable: it collapses the classic way, by
    // overflowing the shared pool. Not a single mark, plenty of drops.
    assert_eq!(cl.ecn_marked + cr.ecn_marked, 0, "Cubic must not be marked");
    assert!(
        cl.shared_drops > 0,
        "the fan-in must overflow the shared pool for Cubic: {cl:?}"
    );

    // DCTCP rides the marks instead of the drops.
    assert!(
        dl.ecn_marked > 0,
        "DCTCP must see ECN marks at the hot egress: {dl:?}"
    );
    assert!(dl.admitted > 0 && dr.admitted > 0, "both routers admit");

    // Both complete flows, but Cubic's victims strand the fan-in in
    // timeout territory while DCTCP finishes at line rate: ≥ 2×
    // makespan goodput at the collapse point (observed ≈ 3.9×).
    assert!(
        cubic.metrics.flows_completed > 0,
        "cubic: {:?}",
        cubic.metrics
    );
    assert!(
        dctcp.metrics.flows_completed > 0,
        "dctcp: {:?}",
        dctcp.metrics
    );
    let (c, d) = (goodput_mbps(&cubic), goodput_mbps(&dctcp));
    assert!(
        d >= 2.0 * c,
        "DCTCP must sustain ≥2× Cubic goodput under incast: dctcp {d:.3} Mbit/s \
         vs cubic {c:.3} Mbit/s"
    );
}

// ---------------------------------------------------------------------------
// (2) PFC pause storm: a cyclic buffer dependency on a 3-switch ring.
// ---------------------------------------------------------------------------

/// Fires `count` packets at a peer, one per `gap`.
struct Blaster {
    peer: NodeId,
    flow: FlowId,
    gap: Dur,
    remaining: u32,
}

impl Agent for Blaster {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer_after(Dur::ZERO, 0);
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        ctx.send(packet_to(self.peer, 80, 1, self.flow, 1_000));
        ctx.set_timer_after(self.gap, 0);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts arrivals.
#[derive(Default)]
struct Sink {
    got: u64,
}

impl Agent for Sink {
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
        self.got += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Everything observable about one triangle run.
struct TriangleRun {
    census: PacketCensus,
    stats: [SwitchStats; 3],
    delivered_per_sink: [u64; 3],
    trace: Vec<TraceEvent>,
    events: u64,
    cross_domain: u64,
}

/// A three-switch one-way ring (s0→s1→s2→s0) with one host per switch
/// and three 2-ring-hop flows chasing each other around it:
/// h0→h2, h1→h0, h2→h1. Every ring link carries one flow that
/// terminates at the next switch's host and one that continues — the
/// textbook cyclic buffer dependency. PFC per ingress with `watchdog`
/// as the pause-storm period; a huge period approximates "no watchdog".
fn triangle(watchdog: Dur, k: u32, horizon: Time) -> TriangleRun {
    let mut b = TopologyBuilder::new();
    let s: Vec<NodeId> = (0..3).map(|_| b.add_node()).collect();
    let h: Vec<NodeId> = (0..3).map(|_| b.add_node()).collect();
    // Slow one-way ring: the only route between non-adjacent hosts.
    // The 1 ms propagation delay doubles as comfortable PDES lookahead.
    for i in 0..3 {
        b.add_link(LinkSpec::new(
            s[i],
            s[(i + 1) % 3],
            5_000_000,
            Dur::from_millis(1),
            Capacity::Packets(10_000),
        ));
    }
    // Fast host access links (the deep host-side queue absorbs the
    // blaster while its uplink is paused).
    for i in 0..3 {
        b.add_duplex(
            h[i],
            s[i],
            1_000_000_000,
            Dur::from_micros(10),
            Capacity::Packets(10_000),
        );
    }
    let mut sim = ParallelSimulator::new(b.build(), k);
    sim.enable_tracing();
    let spec = SwitchSpec::shared(400_000).with_pfc(PfcSpec {
        xoff_bytes: 25_000,
        xon_bytes: 10_000,
        watchdog,
    });
    for &sw in &s {
        sim.install_switch(sw, spec);
    }
    // Flow i: h[i] → h[(i + 2) % 3], i.e. two ring hops.
    let mut sinks = Vec::new();
    for i in 0..3usize {
        sim.add_agent(
            h[i],
            1,
            Box::new(Blaster {
                peer: h[(i + 2) % 3],
                flow: FlowId(i as u64 + 1),
                gap: Dur::from_micros(500),
                remaining: 400,
            }),
        );
        sinks.push(sim.add_agent(h[i], 80, Box::new(Sink::default())));
    }
    sim.run_until(horizon);
    let census = sim.packet_census();
    let stats = [
        sim.switch_stats(s[0]),
        sim.switch_stats(s[1]),
        sim.switch_stats(s[2]),
    ];
    let delivered_per_sink = [
        sim.agent_as::<Sink>(sinks[0]).expect("sink").got,
        sim.agent_as::<Sink>(sinks[1]).expect("sink").got,
        sim.agent_as::<Sink>(sinks[2]).expect("sink").got,
    ];
    TriangleRun {
        census,
        stats,
        delivered_per_sink,
        trace: sim.merged_trace(),
        events: sim.events_processed(),
        cross_domain: sim.cross_domain_messages(),
    }
}

/// FNV-1a over the debug formatting of a trace (the digest scheme the
/// golden e2e_parallel trace pins).
fn trace_digest(events: &[TraceEvent]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for ev in events {
        for b in format!("{ev:?}\n").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

const HORIZON: Time = Time::from_secs(20);

#[test]
fn pfc_pause_cycle_deadlocks_without_the_watchdog() {
    // Watchdog period beyond the horizon ≈ no watchdog: the cyclic
    // dependency forms and the fabric wedges — packets still queued at
    // the horizon, nothing draining, not one watchdog fire.
    let wedged = triangle(Dur::from_secs(3_600), 1, HORIZON);
    let pauses: u64 = wedged.stats.iter().map(|s| s.pauses).sum();
    let fires: u64 = wedged.stats.iter().map(|s| s.watchdog_fires).sum();
    assert!(
        pauses >= 3,
        "every switch must have paused an ingress: {:?}",
        wedged.stats
    );
    assert_eq!(fires, 0, "disabled watchdog must never fire");
    assert!(
        wedged.census.queued > 0,
        "the pause cycle must wedge traffic in queues: {:?}",
        wedged.census
    );
    assert!(wedged.census.paused_ns > 0, "links must have sat paused");
    assert!(wedged.census.conserved(), "census: {:?}", wedged.census);
}

#[test]
fn pfc_watchdog_breaks_the_pause_cycle_within_a_bounded_window() {
    let broken = triangle(Dur::from_millis(50), 1, HORIZON);
    let fires: u64 = broken.stats.iter().map(|s| s.watchdog_fires).sum();
    let pauses: u64 = broken.stats.iter().map(|s| s.pauses).sum();
    let resumes: u64 = broken.stats.iter().map(|s| s.resumes).sum();
    let pfc_dropped: u64 = broken.stats.iter().map(|s| s.pfc_dropped).sum();

    assert!(pauses > 0, "the storm must form first: {:?}", broken.stats);
    assert!(
        fires >= 1,
        "the watchdog must detect the sustained pause: {:?}",
        broken.stats
    );
    assert!(
        pfc_dropped > 0,
        "breaking the cycle costs a census-accounted drain: {:?}",
        broken.stats
    );
    assert!(resumes > 0, "drained ingresses must force-resume");

    // Within the bounded window every injected packet reached a
    // terminal state: the fabric finished the workload instead of
    // wedging.
    assert_eq!(broken.census.queued, 0, "census: {:?}", broken.census);
    assert_eq!(broken.census.in_flight, 0, "census: {:?}", broken.census);
    assert!(broken.census.conserved(), "census: {:?}", broken.census);
    assert_eq!(
        broken.census.pfc_dropped, pfc_dropped,
        "census and per-switch accounting must agree"
    );
    assert!(broken.census.paused_ns > 0, "links must have sat paused");

    // And it made real forward progress. The storm re-forms and is
    // re-broken repeatedly while the blasters inject, so a substantial
    // share of the 1200 packets is drained — but unlike the wedged
    // fabric (27 delivered, everything else stuck), every sink keeps
    // receiving throughout (observed 119 per 400-packet flow, ≈ 13× the
    // wedged run's total).
    assert!(
        broken.census.delivered >= 300,
        "the fabric must keep moving traffic between storms: {:?}",
        broken.census
    );
    for (i, got) in broken.delivered_per_sink.iter().enumerate() {
        assert!(
            *got >= 100,
            "sink {i} must keep receiving across storm cycles, got {got} \
             (census {:?})",
            broken.census
        );
    }
}

#[test]
fn pfc_triangle_is_bit_identical_for_k_1_and_2() {
    let one = triangle(Dur::from_millis(50), 1, HORIZON);
    let two = triangle(Dur::from_millis(50), 2, HORIZON);
    assert!(two.cross_domain > 0, "K=2 must actually cross a cut");
    assert_eq!(one.census, two.census, "census diverged across K");
    assert_eq!(one.stats, two.stats, "switch stats diverged across K");
    assert_eq!(
        one.delivered_per_sink, two.delivered_per_sink,
        "sink deliveries diverged across K"
    );
    assert_eq!(one.events, two.events, "event counts diverged across K");
    assert_eq!(
        trace_digest(&one.trace),
        trace_digest(&two.trace),
        "trace digests diverged across K"
    );
}

// ---------------------------------------------------------------------------
// (3) Harness bit-identity: PHI_JOBS ∈ {1, 4} and K ∈ {1, 2}.
// ---------------------------------------------------------------------------

/// Serialize everything observable about a harness run (including the
/// per-switch backpressure stats). JSON equality is byte equality.
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&(
        &r.metrics,
        &r.per_sender,
        &r.partials,
        r.events,
        &r.switch_stats,
    ))
    .expect("run result serializes")
}

#[test]
fn incast_run_is_bit_identical_for_jobs_1_and_4() {
    let spec = incast_spec();
    let serial = run_repeated_on(
        &RunPool::serial(),
        &spec,
        3,
        provision_dctcp(DctcpParams::default()),
    );
    let pooled = run_repeated_on(
        &RunPool::new(4),
        &spec,
        3,
        provision_dctcp(DctcpParams::default()),
    );
    assert_eq!(serial.len(), pooled.len());
    for (i, (s, p)) in serial.iter().zip(&pooled).enumerate() {
        assert!(s.metrics.flows_completed > 0, "run {i} must carry load");
        assert_eq!(
            fingerprint(s),
            fingerprint(p),
            "run {i} diverged between PHI_JOBS=1 and PHI_JOBS=4"
        );
    }
}

#[test]
fn incast_run_is_bit_identical_for_domains_1_and_2() {
    let mut spec = incast_spec();
    spec.domains = Some(1);
    let one = run_experiment(&spec, provision_dctcp(DctcpParams::default()));
    assert!(one.metrics.flows_completed > 0, "must carry load");
    let [l, _] = one.switch_stats.expect("switch installed");
    assert!(l.ecn_marked > 0, "partitioned runs must still mark: {l:?}");
    spec.domains = Some(2);
    let two = run_experiment(&spec, provision_dctcp(DctcpParams::default()));
    assert_eq!(
        fingerprint(&one),
        fingerprint(&two),
        "incast run diverged between K=1 and K=2"
    );
}
