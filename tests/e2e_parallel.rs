//! Determinism regression tests for the parallel experiment runner.
//!
//! The `RunPool` contract (ROADMAP: "experiments must be replayable
//! bit-for-bit") is that fanning independent runs across worker threads
//! changes *nothing* about the results: every run's RNG stream is derived
//! only from `(base_seed, run_index)`, and results merge in run order. A
//! scheduler-dependent leak — a shared counter, an RNG keyed on thread id,
//! a completion-order merge — would show up here as a diff between the
//! 1-worker and N-worker executions.

use phi::core::harness::{provision_cubic, run_repeated_on, ExperimentSpec};
use phi::core::optimizer::{sweep_cubic_on, SweepSpec};
use phi::core::power::Objective;
use phi::core::runpool::{derive_seed, RunPool};
use phi::core::RunResult;
use phi::sim::engine::Simulator;
use phi::sim::time::{Dur, Time};
use phi::sim::topology::{dumbbell, DumbbellSpec};
use phi::sim::trace::SharedTraceCollector;
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::NoHook;
use phi::tcp::receiver::TcpReceiver;
use phi::tcp::sender::{SenderConfig, TcpSender};
use phi::workload::{OnOffConfig, OnOffSource, SeedRng};

fn quick_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        3,
        OnOffConfig {
            mean_on_bytes: 200_000.0,
            mean_off_secs: 0.8,
            deterministic: false,
        },
        Dur::from_secs(12),
        9090,
    );
    spec.dumbbell.bottleneck_bps = 8_000_000;
    spec.dumbbell.rtt = Dur::from_millis(60);
    spec
}

/// Serialize everything observable about a run. JSON equality is byte
/// equality here: every float prints from its exact bits.
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&(&r.metrics, &r.per_sender, &r.partials, r.events))
        .expect("run result serializes")
}

#[test]
fn repeated_runs_bit_identical_for_any_worker_count() {
    let spec = quick_spec();
    let reference: Vec<String> = run_repeated_on(
        &RunPool::serial(),
        &spec,
        5,
        provision_cubic(CubicParams::default()),
    )
    .iter()
    .map(fingerprint)
    .collect();

    for workers in [2, 4, 8] {
        let got: Vec<String> = run_repeated_on(
            &RunPool::new(workers),
            &spec,
            5,
            provision_cubic(CubicParams::default()),
        )
        .iter()
        .map(fingerprint)
        .collect();
        assert_eq!(got, reference, "{workers} workers diverged from serial");
    }
}

#[test]
fn sweep_bit_identical_and_same_best_for_any_worker_count() {
    let spec = quick_spec();
    let grid = SweepSpec {
        init_window: vec![2.0, 32.0],
        init_ssthresh: vec![16.0],
        beta: vec![0.2],
    };
    let serial = sweep_cubic_on(&RunPool::serial(), &spec, &grid, 2, Objective::PowerLoss);
    let parallel = sweep_cubic_on(&RunPool::new(4), &spec, &grid, 2, Objective::PowerLoss);

    assert_eq!(
        serde_json::to_string(&serial.best().params).unwrap(),
        serde_json::to_string(&parallel.best().params).unwrap(),
        "parallel sweep picked a different winner"
    );
    assert_eq!(
        serial.best().score.to_bits(),
        parallel.best().score.to_bits()
    );
    assert_eq!(
        serde_json::to_string(&serial.outcomes).unwrap(),
        serde_json::to_string(&parallel.outcomes).unwrap(),
    );
    assert_eq!(
        serde_json::to_string(&serial.default.runs).unwrap(),
        serde_json::to_string(&parallel.default.runs).unwrap(),
    );
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// One full dumbbell simulation under a derived seed, digested down to a
/// single hash over its complete packet trace (every enqueue, drop,
/// transmission, and delivery, with timestamps).
fn traced_run_digest(base_seed: u64, run_index: u64) -> u64 {
    let mut spec = DumbbellSpec::paper(2);
    spec.bottleneck_bps = 5_000_000;
    spec.rtt = Dur::from_millis(40);
    let net = dumbbell(&spec);
    let mut sim = Simulator::new(net.topology.clone());
    let root = SeedRng::new(derive_seed(base_seed, run_index));
    for i in 0..2 {
        let mut cfg = SenderConfig::new(net.receivers[i], 80, 10);
        cfg.flow_id_base = (i as u64) << 32;
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 120_000.0,
                mean_off_secs: 0.5,
                deterministic: false,
            },
            root.fork_indexed("sender", i as u64),
        );
        sim.add_agent(
            net.senders[i],
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        );
        sim.add_agent(net.receivers[i], 80, Box::new(TcpReceiver::new()));
    }
    let (tracer, events) = SharedTraceCollector::new();
    sim.set_tracer(tracer);
    sim.run_until(Time::from_secs_f64(4.0));

    // While we have a mid-flight simulator in hand: the packet-conservation
    // invariant must hold here too, not just in the engine's unit tests.
    let census = sim.packet_census();
    assert!(census.conserved(), "census leaks packets: {census:?}");
    assert!(census.injected > 0, "nothing simulated");

    let digest = fnv1a(
        events
            .lock()
            .unwrap()
            .iter()
            .flat_map(|ev| format!("{ev:?}\n").into_bytes()),
    );
    digest
}

#[test]
fn trace_digests_bit_identical_for_any_worker_count() {
    const BASE: u64 = 777;
    const RUNS: usize = 4;
    let serial = RunPool::serial().run(RUNS, |i| traced_run_digest(BASE, i as u64));
    // Distinct runs must be distinct traces (the seeds really differ)...
    assert!(
        serial.windows(2).any(|w| w[0] != w[1]),
        "all runs produced the same trace: seed derivation is broken"
    );
    // ...and any worker count reproduces them exactly.
    for workers in [2, 4] {
        let parallel = RunPool::new(workers).run(RUNS, |i| traced_run_digest(BASE, i as u64));
        assert_eq!(parallel, serial, "{workers} workers changed a trace");
    }
}

/// Wall-clock speedup of the quick sweep grid: 4 workers vs 1. Ignored by
/// default (timing assertions are load-sensitive); run explicitly with
/// `cargo test --test e2e_parallel -- --ignored`.
#[test]
#[ignore = "wall-clock benchmark: needs >= 4 idle cores"]
fn sweep_speedup_with_four_workers() {
    let mut spec = quick_spec();
    spec.duration = Dur::from_secs(20);
    let grid = SweepSpec::quick();

    let t0 = std::time::Instant::now();
    let serial = sweep_cubic_on(&RunPool::serial(), &spec, &grid, 2, Objective::PowerLoss);
    let serial_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let parallel = sweep_cubic_on(&RunPool::new(4), &spec, &grid, 2, Objective::PowerLoss);
    let parallel_time = t1.elapsed();

    // Same answer...
    assert_eq!(
        serde_json::to_string(&serial.best().params).unwrap(),
        serde_json::to_string(&parallel.best().params).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&serial.outcomes).unwrap(),
        serde_json::to_string(&parallel.outcomes).unwrap()
    );
    // ...at least twice as fast (quick grid = 6 combos + default, 2 runs
    // each = 14 independent jobs; 4 workers give an ideal 4x).
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "4 workers only {speedup:.2}x faster ({serial_time:?} -> {parallel_time:?})"
    );
}

/// One multihop (parking-lot) scenario digested to a single FNV hash over
/// its complete packet trace, plus coarse delivery counters. The values
/// are pinned: a scheduler-ordering bug anywhere in the engine fails this
/// test loudly instead of silently shifting every downstream metric.
#[test]
fn multihop_trace_digest_matches_pinned_golden() {
    use phi::sim::queue::Capacity;
    use phi::sim::topology::{parking_lot, ParkingLotSpec};

    let spec = ParkingLotSpec {
        hops: 3,
        backbone_bps: 10_000_000,
        hop_delay: Dur::from_millis(5),
        capacity: Capacity::Packets(50),
        access_bps: 100_000_000,
    };
    let lot = parking_lot(&spec);
    let mut sim = Simulator::new(lot.topology.clone());
    let root = SeedRng::new(4242);
    let mut pairs = vec![lot.long_path];
    pairs.extend(lot.cross.iter().copied());
    let mut senders = Vec::new();
    for (i, (src, dst)) in pairs.iter().enumerate() {
        let mut cfg = SenderConfig::new(*dst, 80, 10);
        cfg.flow_id_base = (i as u64) << 32;
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 150_000.0,
                mean_off_secs: 0.3,
                deterministic: false,
            },
            root.fork_indexed("sender", i as u64),
        );
        senders.push(sim.add_agent(
            *src,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        ));
        sim.add_agent(*dst, 80, Box::new(TcpReceiver::new()));
    }
    let (tracer, events) = SharedTraceCollector::new();
    sim.set_tracer(tracer);
    sim.run_until(Time::from_secs(3));

    let census = sim.packet_census();
    assert!(census.conserved(), "census leaks packets: {census:?}");

    let digest = fnv1a(
        events
            .lock()
            .unwrap()
            .iter()
            .flat_map(|ev| format!("{ev:?}\n").into_bytes()),
    );
    let delivered: u64 = census.delivered;
    let injected: u64 = census.injected;
    let long_bytes: u64 = sim
        .agent_as::<TcpSender>(senders[0])
        .unwrap()
        .reports()
        .iter()
        .map(|r| r.bytes)
        .sum();
    println!("GOLDEN digest={digest:#018x} injected={injected} delivered={delivered} long_bytes={long_bytes}");

    // Pinned on the pre-tiered-scheduler engine; any engine change that
    // alters packet-level behavior must be caught here, not downstream.
    const GOLDEN_DIGEST: u64 = 0x2adc_337c_5e94_aa04;
    const GOLDEN_INJECTED: u64 = 5243;
    const GOLDEN_DELIVERED: u64 = 4950;
    const GOLDEN_LONG_BYTES: u64 = 344_105;
    assert_eq!(digest, GOLDEN_DIGEST, "packet trace diverged from golden");
    assert_eq!(injected, GOLDEN_INJECTED);
    assert_eq!(delivered, GOLDEN_DELIVERED);
    assert_eq!(long_bytes, GOLDEN_LONG_BYTES);
}
