//! The §2.2.2 degradation guarantee, end to end: Phi's context plane is
//! an *optimization*, never a dependency. When the plane is flapping or
//! entirely gone, Phi senders must degrade to their vanilla controllers
//! and deliver goodput within ε of the no-sharing baseline — and the
//! fault injection itself must be deterministic, so the degradation arms
//! stay bit-identical for any `RunPool` worker count (`PHI_JOBS=1` or N).

use phi::core::harness::{
    provision_cubic, provision_cubic_phi_faulty, run_experiment, run_repeated_on, ExperimentSpec,
    Provisioned,
};
use phi::core::runpool::RunPool;
use phi::core::{fault_counters, FaultPlan, FaultyHook, PolicyTable, PracticalHook, RunResult};
use phi::sim::time::Dur;
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::DegradingHook;
use phi::workload::OnOffConfig;

fn spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        4,
        OnOffConfig {
            mean_on_bytes: 200_000.0,
            mean_off_secs: 0.8,
            deterministic: false,
        },
        Dur::from_secs(15),
        4242,
    );
    spec.dumbbell.bottleneck_bps = 8_000_000;
    spec.dumbbell.rtt = Dur::from_millis(60);
    spec
}

/// Serialize everything observable about a run; JSON equality is byte
/// equality (floats print from their exact bits).
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&(&r.metrics, &r.per_sender, &r.partials, r.events))
        .expect("run result serializes")
}

/// Total bytes delivered (completed flows + the partial at the deadline).
fn delivered(r: &RunResult) -> u64 {
    let done: u64 = r
        .per_sender
        .iter()
        .flatten()
        .map(|rep| rep.bytes)
        .sum::<u64>();
    let partial: u64 = r.partials.iter().flatten().map(|rep| rep.bytes).sum();
    done + partial
}

/// 100% lookup loss: every sender falls back to default parameters and
/// never touches the store — *exactly* what the no-sharing baseline does.
/// The run is not merely "within ε": it is bit-identical, because the
/// fault RNG is a side channel forked per sender (never the workload
/// streams) and a dropped lookup leaves no trace in the simulation.
#[test]
fn total_blackout_is_bit_identical_to_the_no_sharing_baseline() {
    let spec = spec();
    let baseline = run_experiment(&spec, provision_cubic(CubicParams::default()));
    let blackout = run_experiment(
        &spec,
        provision_cubic_phi_faulty(PolicyTable::reference(), FaultPlan::blackout()),
    );

    assert!(
        baseline.metrics.flows_completed > 0,
        "baseline did nothing: {:?}",
        baseline.metrics
    );
    assert_eq!(
        fingerprint(&blackout),
        fingerprint(&baseline),
        "a dead context plane must leave no trace on the traffic"
    );
    // The acceptance bound, implied with ratio exactly 1.0.
    assert!(delivered(&blackout) as f64 >= 0.9 * delivered(&baseline) as f64);
    // The plane being *gone* also means the store never learned anything.
    assert_eq!(blackout.store.path_count(), 0, "store must stay empty");
}

/// A flapping plane (1 s up / 1 s down): some flows get context and tuned
/// parameters, the rest degrade to defaults mid-run. Goodput stays within
/// ε of the no-sharing baseline and every sender keeps completing flows.
#[test]
fn flapping_plane_degrades_gracefully() {
    let spec = spec();
    let baseline = run_experiment(&spec, provision_cubic(CubicParams::default()));

    let policy = PolicyTable::reference();
    let counters = fault_counters();
    let flapping = run_experiment(&spec, |ctx| {
        let policy = policy.clone();
        Provisioned {
            factory: Box::new(move |snap| {
                let params = match snap {
                    Some(s) => policy.params_for(s),
                    None => CubicParams::default(),
                };
                Box::new(Cubic::new(params))
            }),
            hook: Box::new(DegradingHook::new(FaultyHook::new(
                PracticalHook::new(ctx.store.clone(), ctx.path),
                FaultPlan::flapping(Dur::from_secs(1), Dur::from_secs(1)),
                ctx.rng.fork("faults"),
                counters.clone(),
            ))),
        }
    });

    // The square wave really cut both ways: lookups were attempted, some
    // died in a down-phase, some got through in an up-phase.
    let c = *counters.lock().unwrap();
    assert!(c.lookups > 0, "no lookups attempted: {c:?}");
    assert!(c.lookups_dropped > 0, "plane never went down: {c:?}");
    assert!(c.lookups_dropped < c.lookups, "plane never came up: {c:?}");

    // The degradation guarantee: no worse than 0.9x the no-sharing
    // baseline, and senders keep finishing flows throughout.
    let base_bytes = delivered(&baseline) as f64;
    let flap_bytes = delivered(&flapping) as f64;
    assert!(
        flap_bytes >= 0.9 * base_bytes,
        "flapping plane cost too much goodput: {flap_bytes:.0} vs baseline {base_bytes:.0}"
    );
    assert!(
        flapping.metrics.flows_completed as f64 >= 0.9 * baseline.metrics.flows_completed as f64,
        "flows stalled under flapping: {} vs {}",
        flapping.metrics.flows_completed,
        baseline.metrics.flows_completed
    );
    for (i, reports) in flapping.per_sender.iter().enumerate() {
        assert!(!reports.is_empty(), "sender {i} completed no flows");
    }
}

/// Fault injection is part of the deterministic surface: both degradation
/// arms must replay bit-for-bit under any worker count, exactly like every
/// other experiment (`RunPool::serial()` is `PHI_JOBS=1`; `RunPool::new(4)`
/// is `PHI_JOBS=4`).
#[test]
fn degradation_arms_bit_identical_for_any_worker_count() {
    let spec = spec();
    for plan in [
        FaultPlan::blackout(),
        FaultPlan::flapping(Dur::from_secs(1), Dur::from_secs(1)),
        FaultPlan::lossy(0.5),
    ] {
        let reference: Vec<String> = run_repeated_on(
            &RunPool::serial(),
            &spec,
            3,
            provision_cubic_phi_faulty(PolicyTable::reference(), plan),
        )
        .iter()
        .map(fingerprint)
        .collect();
        for workers in [2, 4] {
            let got: Vec<String> = run_repeated_on(
                &RunPool::new(workers),
                &spec,
                3,
                provision_cubic_phi_faulty(PolicyTable::reference(), plan),
            )
            .iter()
            .map(fingerprint)
            .collect();
            assert_eq!(
                got, reference,
                "{workers} workers diverged from serial under {plan:?}"
            );
        }
    }
}
