//! §3.2 — informed adaptation without cooperation: tuning the duplicate-ACK
//! threshold from shared reordering experience.
//!
//! A path with heavy per-packet delay jitter reorders segments; classic
//! TCP's 3-duplicate-ACK rule then fires *spurious* fast retransmits for
//! segments that were merely late. Phi's shared view (spurious-recovery
//! prevalence across many connections) lets the [`ReorderingAdvisor`]
//! recommend a higher threshold, which removes most of the waste. This
//! test builds exactly that world and measures both settings.

use phi::core::adapt::{JitterBufferAdvisor, ReorderingAdvisor, ReorderingStats};
use phi::sim::engine::Simulator;
use phi::sim::packet::FlowId;
use phi::sim::queue::Capacity;
use phi::sim::time::{Dur, Time};
use phi::sim::topology::{LinkSpec, TopologyBuilder};
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::NoHook;
use phi::tcp::receiver::TcpReceiver;
use phi::tcp::sender::{SenderConfig, TcpSender};
use phi::workload::{OnOffConfig, OnOffSource, SeedRng};

/// Run one 2 MB transfer over a jittery 20 Mbit/s link and report
/// (spurious deliveries seen by the receiver, retransmits, duration).
fn run_with_threshold(dupack_threshold: u32) -> (u64, u64, f64) {
    let mut b = TopologyBuilder::new();
    let a = b.add_node();
    let z = b.add_node();
    // Forward path with jitter: up to 2.5 ms of extra per-packet delay
    // versus a ~0.6 ms serialization gap reorders packets by up to ~4
    // positions — enough to trip the classic 3-dup-ACK rule, and within
    // reach of the advisor's raised threshold.
    let jitter = Dur::from_micros(2_500);
    b.add_link(LinkSpec {
        jitter,
        ..LinkSpec::new(
            a,
            z,
            20_000_000,
            Dur::from_millis(20),
            Capacity::Packets(4096),
        )
    });
    // Clean reverse path for ACKs.
    b.add_link(LinkSpec::new(
        z,
        a,
        20_000_000,
        Dur::from_millis(20),
        Capacity::Packets(4096),
    ));

    let mut sim = Simulator::new(b.build());
    let mut cfg = SenderConfig::new(z, 80, 10);
    cfg.max_flows = Some(1);
    cfg.dupack_threshold = dupack_threshold;
    let source = OnOffSource::new(
        OnOffConfig {
            mean_on_bytes: 2_000_000.0,
            mean_off_secs: 0.0,
            deterministic: true,
        },
        SeedRng::new(3),
    );
    let s = sim.add_agent(
        a,
        10,
        Box::new(TcpSender::new(
            cfg,
            source,
            Box::new(|_| Box::new(Cubic::new(CubicParams::tuned(8.0, 64.0, 0.2)))),
            Box::new(NoHook),
        )),
    );
    let r = sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
    sim.run_until(Time::from_secs(120));

    let sender = sim.agent_as::<TcpSender>(s).unwrap();
    assert!(
        sender.is_done(),
        "transfer must complete (thresh {dupack_threshold})"
    );
    let report = &sender.reports()[0];
    let recv = sim.agent_as::<TcpReceiver>(r).unwrap();
    (
        recv.dup_data(FlowId(0)),
        report.retransmits,
        report.duration().as_secs_f64(),
    )
}

#[test]
fn raised_dupack_threshold_suppresses_spurious_retransmits() {
    let (spurious_3, retx_3, dur_3) = run_with_threshold(3);
    // The advisor would see prevalent spurious recoveries across the
    // fleet and recommend a higher threshold.
    let advisor = ReorderingAdvisor::default();
    let recommended = advisor.recommend(&ReorderingStats {
        recoveries: 100,
        spurious: 60, // what the jittery path produces fleet-wide
    });
    assert!(recommended > 3, "advisor should raise the threshold");

    let (spurious_r, retx_r, dur_r) = run_with_threshold(recommended);

    // There must be real waste at threshold 3 on this path...
    assert!(
        spurious_3 > 10,
        "jitter should cause spurious retransmissions (got {spurious_3})"
    );
    // ...and the recommendation must remove most of it.
    assert!(
        spurious_r * 2 < spurious_3,
        "raised threshold should at least halve spurious deliveries: {spurious_r} vs {spurious_3}"
    );
    assert!(
        retx_r < retx_3,
        "retransmissions should drop: {retx_r} vs {retx_3}"
    );
    // Without materially hurting completion time (no real loss here).
    assert!(
        dur_r < dur_3 * 1.5,
        "completion should not regress: {dur_r:.2}s vs {dur_3:.2}s"
    );
}

#[test]
fn jitter_buffer_advisor_sizes_from_real_path_jitter() {
    // Run several connections over the jittery path and feed each one's
    // observed RTT inflation (the §3.2 shared signal) into the advisor:
    // the recommended buffer must cover the path's real delay variation
    // (jitter up to 2.5 ms plus queueing) without absurd overshoot.
    let mut b = TopologyBuilder::new();
    let a = b.add_node();
    let z = b.add_node();
    let jitter = Dur::from_micros(2_500);
    b.add_link(LinkSpec {
        jitter,
        ..LinkSpec::new(
            a,
            z,
            20_000_000,
            Dur::from_millis(20),
            Capacity::Packets(4096),
        )
    });
    b.add_link(LinkSpec::new(
        z,
        a,
        20_000_000,
        Dur::from_millis(20),
        Capacity::Packets(4096),
    ));
    let mut sim = Simulator::new(b.build());
    let mut cfg = SenderConfig::new(z, 80, 10);
    cfg.max_flows = Some(12);
    cfg.dupack_threshold = 6; // reordering-tolerant, per the other test
    let source = OnOffSource::new(
        OnOffConfig {
            mean_on_bytes: 400_000.0,
            mean_off_secs: 0.1,
            deterministic: true,
        },
        SeedRng::new(5),
    );
    let s = sim.add_agent(
        a,
        10,
        Box::new(TcpSender::new(
            cfg,
            source,
            Box::new(|_| Box::new(Cubic::new(CubicParams::tuned(8.0, 64.0, 0.2)))),
            Box::new(NoHook),
        )),
    );
    sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
    sim.run_until(Time::from_secs(120));

    let sender = sim.agent_as::<TcpSender>(s).unwrap();
    assert!(sender.reports().len() >= 10, "need several connections");

    // The provider-side aggregation: every finished connection's RTT
    // inflation over the 40 ms base becomes a shared jitter sample.
    let base = Dur::from_millis(40);
    let mut advisor = JitterBufferAdvisor::new(256, 1.2);
    for r in sender.reports() {
        advisor.record(r.rtt_inflation_ms(base));
    }
    let rec = advisor.recommend_ms().expect("samples recorded");
    // Mean inflation is roughly jitter/2 (1.25 ms) plus self-queueing;
    // the p95 x 1.2 recommendation should land in the low-millisecond
    // range — enough to absorb the jitter, not orders of magnitude more.
    assert!(
        (1.0..=60.0).contains(&rec),
        "recommended jitter buffer {rec:.2} ms out of plausible range"
    );
    // And it must cover the typical (median) inflation with headroom.
    let mut inflations: Vec<f64> = sender
        .reports()
        .iter()
        .map(|r| r.rtt_inflation_ms(base))
        .collect();
    inflations.sort_by(f64::total_cmp);
    let median = inflations[inflations.len() / 2];
    assert!(
        rec >= median,
        "recommendation {rec:.2} ms below median inflation {median:.2} ms"
    );
}

#[test]
fn clean_paths_keep_the_classic_threshold() {
    let advisor = ReorderingAdvisor::default();
    let rec = advisor.recommend(&ReorderingStats {
        recoveries: 500,
        spurious: 3,
    });
    assert_eq!(rec, 3, "no reordering evidence, no deviation");
}
