//! §3.3 prioritization, asserted: the weighted ensemble must stay
//! TCP-friendly in aggregate while ordering bandwidth by importance.

use phi::core::harness::{run_experiment, ExperimentSpec, Provisioned};
use phi::core::priority::{multcp_params, EnsembleAllocator, Importance};
use phi::sim::time::{Dur, Time};
use phi::tcp::hook::NoHook;
use phi::tcp::{NewReno, NewRenoParams};
use phi::workload::OnOffConfig;

/// Run 4 ensemble flows (weighted) against 4 standard cross flows for
/// `secs`; returns per-flow goodput in Mbit/s.
fn run_ensemble(weights: &[f64], secs: u64) -> Vec<f64> {
    let mut spec = ExperimentSpec::new(8, OnOffConfig::long_running(), Dur::from_secs(secs), 7);
    spec.dumbbell.bottleneck_bps = 40_000_000;
    spec.dumbbell.rtt = Dur::from_millis(80);
    let w: Vec<f64> = weights.to_vec();
    let result = run_experiment(&spec, move |ctx| {
        let params = if ctx.index < 4 {
            multcp_params(w[ctx.index])
        } else {
            NewRenoParams::default()
        };
        Provisioned {
            factory: Box::new(move |_| Box::new(NewReno::new(params))),
            hook: Box::new(NoHook),
        }
    });
    (0..8)
        .map(|i| {
            let done: u64 = result.per_sender[i].iter().map(|r| r.bytes).sum();
            let partial = result.partials[i].as_ref().map(|p| p.bytes).unwrap_or(0);
            (done + partial) as f64 * 8.0 / secs as f64 / 1e6
        })
        .collect()
}

#[test]
fn weighted_ensemble_is_tcp_friendly_and_ordered() {
    let classes = [
        Importance::Premium,
        Importance::Normal,
        Importance::Normal,
        Importance::Bulk,
    ];
    let weights = EnsembleAllocator.weights_for(&classes);
    let shares = run_ensemble(&weights, 120);

    let ensemble: f64 = shares[..4].iter().sum();
    let cross: f64 = shares[4..].iter().sum();
    let ensemble_frac = ensemble / (ensemble + cross);

    // TCP-friendliness: the bundle takes roughly the share of 4 standard
    // flows among 8 (50%), within a generous band.
    assert!(
        (0.38..=0.62).contains(&ensemble_frac),
        "ensemble share {ensemble_frac:.2} should be near 0.5 \
         (ensemble {ensemble:.1} vs cross {cross:.1} Mbit/s)"
    );

    // Importance ordering inside the bundle.
    assert!(
        shares[0] > shares[1] && shares[0] > shares[2],
        "premium must beat normal: {shares:?}"
    );
    assert!(
        shares[1] > shares[3] && shares[2] > shares[3],
        "normal must beat bulk: {shares:?}"
    );
    // Premium gets a meaningfully larger slice, not a rounding artifact.
    assert!(
        shares[0] > shares[3] * 1.5,
        "premium should clearly dominate bulk: {shares:?}"
    );
}

#[test]
fn equal_weights_recover_plain_fair_sharing() {
    let shares = run_ensemble(&[1.0, 1.0, 1.0, 1.0], 90);
    let mean: f64 = shares.iter().sum::<f64>() / 8.0;
    for (i, s) in shares.iter().enumerate() {
        assert!(
            *s > mean * 0.4 && *s < mean * 1.9,
            "flow {i} far from fair share: {s:.2} vs mean {mean:.2} ({shares:?})"
        );
    }
    let _ = Time::ZERO; // keep the import honest if assertions change
}
