//! End-to-end tests of supervised, resumable sweep execution.
//!
//! Three contracts, exercised through the real experiment harness (not
//! synthetic run results):
//!
//! 1. **Panic isolation, full stack.** An agent hook that panics inside
//!    a `domains = Some(2)` run unwinds through the PDES barrier
//!    protocol (worker poisons the window vote instead of deadlocking
//!    its sibling), through `catch_unwind` in the run pool, and lands
//!    as a quarantined cell — while every healthy cell's metrics stay
//!    bit-identical to an unsupervised sweep.
//! 2. **Kill-and-resume bit-identity.** A sweep journal truncated
//!    mid-frame (simulating `kill -9` during an append) resumes to the
//!    same [`SweepReport::fingerprint`] as the uninterrupted sweep, for
//!    `PHI_JOBS`-style worker counts 1 and 4.
//! 3. **Budget exclusion.** A budget-terminated cell is kept, tagged,
//!    excluded from the sweep means, and — because terminated cells are
//!    not journaled — re-run on resume.

use std::path::PathBuf;

use phi::core::harness::{provision_cubic, run_repeated_on, ExperimentSpec, Provisioned};
use phi::core::journal::Journal;
use phi::core::runpool::RunPool;
use phi::core::supervise::{run_supervised_with, SupervisorConfig};
use phi::core::{run_experiment, RunResult};
use phi::sim::engine::{Ctx, RunBudget};
use phi::sim::time::{Dur, Time};
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::{ContextSnapshot, SessionHook};
use phi::workload::OnOffConfig;

fn quick_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        2,
        OnOffConfig {
            mean_on_bytes: 150_000.0,
            mean_off_secs: 0.6,
            deterministic: false,
        },
        Dur::from_secs(3),
        2718,
    );
    spec.dumbbell.bottleneck_bps = 6_000_000;
    spec.dumbbell.rtt = Dur::from_millis(50);
    spec
}

fn metrics_json(r: &phi::tcp::report::RunMetrics) -> String {
    serde_json::to_string(r).expect("metrics serialize")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phi-e2e-supervision-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// A session hook that detonates on its first lookup — the e2e stand-in
/// for any bug that panics inside agent code mid-simulation.
struct ExplodingHook;

impl SessionHook for ExplodingHook {
    fn lookup(&mut self, _now: Time, _ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        panic!("injected hook panic (supervision e2e)");
    }
}

/// Cubic senders, except the first one carries the exploding hook.
fn provision_with_bomb() -> impl Fn(phi::core::harness::ProvisionCtx<'_>) -> Provisioned + Sync {
    |ctx| {
        let params = CubicParams::default();
        let hook: Box<dyn SessionHook> = if ctx.index == 0 {
            Box::new(ExplodingHook)
        } else {
            Box::new(phi::tcp::hook::NoHook)
        };
        Provisioned {
            factory: Box::new(move |_| Box::new(Cubic::new(params))),
            hook,
        }
    }
}

/// Contract 1: a panicking agent inside a parallel-engine run is
/// quarantined without sinking the sweep, and the healthy cells are
/// bit-identical to an unsupervised reference sweep.
#[test]
fn agent_panic_in_parallel_run_quarantines_one_cell_only() {
    let mut spec = quick_spec();
    spec.domains = Some(2); // the panic must cross the PDES barrier protocol
    let n = 4;
    let bomb_cell = 2;

    let reference = run_repeated_on(
        &RunPool::new(4),
        &spec,
        n,
        provision_cubic(CubicParams::default()),
    );

    let report = run_supervised_with(
        &RunPool::new(4),
        &spec,
        n,
        &SupervisorConfig::new().with_retries(1),
        |i, s| {
            if i == bomb_cell {
                run_experiment(s, provision_with_bomb())
            } else {
                run_experiment(s, provision_cubic(CubicParams::default()))
            }
        },
    )
    .expect("no journal, no io");

    assert_eq!(report.quarantined.len(), 1, "exactly the bomb cell dies");
    assert_eq!(report.quarantined[0].index, bomb_cell);
    assert_eq!(
        report.quarantined[0].attempts, 2,
        "one retry before quarantine"
    );
    assert!(
        !report.quarantined[0].diverged,
        "a deterministic panic must reproduce identically on the same seed"
    );
    assert!(
        report.quarantined[0]
            .last_panic()
            .contains("injected hook panic"),
        "panic payload preserved through barrier + catch_unwind"
    );

    assert_eq!(report.completed.len(), n - 1);
    for cell in &report.completed {
        assert_eq!(
            metrics_json(&cell.metrics),
            metrics_json(&reference[cell.index].metrics),
            "healthy cell {} diverged under supervision",
            cell.index
        );
    }
    // The quarantined cell contributes nothing to the mean.
    let healthy: Vec<_> = reference
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != bomb_cell)
        .map(|(_, r)| r.metrics.clone())
        .collect();
    let expect = phi::tcp::report::RunMetrics::mean_of(&healthy);
    let got = report.mean_metrics().expect("cells completed");
    assert_eq!(metrics_json(&got), metrics_json(&expect));
}

/// Contract 2: kill-and-resume. Truncate the journal mid-frame and
/// resume with 1 and 4 workers; every resumed sweep fingerprints
/// identically to the uninterrupted one.
#[test]
fn killed_sweep_resumes_bit_identically_for_jobs_1_and_4() {
    let spec = quick_spec();
    let n = 6;
    let run = |_i: usize, s: &ExperimentSpec| -> RunResult {
        run_experiment(s, provision_cubic(CubicParams::default()))
    };

    // Uninterrupted reference sweep (journal only so cells get
    // journal-record fingerprints; fresh file each time).
    let ref_path = tmp("reference.jnl");
    std::fs::remove_file(&ref_path).ok();
    let reference = run_supervised_with(
        &RunPool::serial(),
        &spec,
        n,
        &SupervisorConfig::new().with_journal(&ref_path),
        run,
    )
    .expect("journal open");
    assert!(reference.is_clean());

    // "Kill" the reference sweep: keep the magic, three whole frames,
    // and half of the fourth — exactly what a SIGKILL mid-append leaves.
    let bytes = std::fs::read(&ref_path).expect("journal bytes");
    let frame_len = (bytes.len() - 8) / n;
    assert_eq!((bytes.len() - 8) % n, 0, "records frame uniformly");
    let torn_len = 8 + 3 * frame_len + frame_len / 2;

    for workers in [1usize, 4] {
        let path = tmp(&format!("resume-{workers}.jnl"));
        std::fs::write(&path, &bytes[..torn_len]).expect("write torn journal");

        let resumed = run_supervised_with(
            &RunPool::new(workers),
            &spec,
            n,
            &SupervisorConfig::new().with_journal(&path),
            run,
        )
        .expect("journal open");

        assert!(resumed.is_clean());
        assert_eq!(
            resumed.fingerprint(),
            reference.fingerprint(),
            "{workers}-worker resume diverged from the uninterrupted sweep"
        );
        let resumed_flags: Vec<bool> = resumed.completed.iter().map(|c| c.resumed).collect();
        assert_eq!(
            resumed_flags,
            vec![true, true, true, false, false, false],
            "cells 0..3 replay, the torn cell and everything after re-run"
        );
        assert_eq!(
            metrics_json(&resumed.mean_metrics().unwrap()),
            metrics_json(&reference.mean_metrics().unwrap()),
        );

        // After resume the journal is whole again: reopening replays
        // all n cells with no torn bytes.
        let (_, recovery) = Journal::open(&path).expect("reopen");
        assert_eq!(recovery.records.len(), n);
        assert_eq!(recovery.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&ref_path).ok();
}

/// Contract 3: a budget-terminated cell is tagged and excluded from the
/// means, is not journaled, and therefore re-runs (and completes) on
/// resume.
#[test]
fn budget_terminated_cell_is_excluded_then_rerun_on_resume() {
    let spec = quick_spec();
    let n = 3;
    let starved_cell = 1;
    let path = tmp("budget.jnl");
    std::fs::remove_file(&path).ok();
    let cfg = SupervisorConfig::new().with_journal(&path);

    // First pass: cell 1 runs under a tiny event budget and terminates.
    let first = run_supervised_with(&RunPool::serial(), &spec, n, &cfg, |i, s| {
        let mut s = s.clone();
        if i == starved_cell {
            s.budget = Some(RunBudget::events(200));
        }
        run_experiment(&s, provision_cubic(CubicParams::default()))
    })
    .expect("journal open");

    assert_eq!(first.terminated.len(), 1);
    assert_eq!(first.terminated[0].index, starved_cell);
    assert_eq!(
        first.terminated[0].reason,
        phi::sim::engine::BudgetExceeded::Events
    );
    assert_eq!(first.completed.len(), n - 1);

    // The mean covers exactly the two completed cells.
    let reference = run_repeated_on(
        &RunPool::serial(),
        &spec,
        n,
        provision_cubic(CubicParams::default()),
    );
    let healthy: Vec<_> = reference
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != starved_cell)
        .map(|(_, r)| r.metrics.clone())
        .collect();
    assert_eq!(
        metrics_json(&first.mean_metrics().unwrap()),
        metrics_json(&phi::tcp::report::RunMetrics::mean_of(&healthy)),
    );

    // Resume without the starvation: the terminated cell was not
    // journaled, so it re-runs (now unbudgeted) and completes; the
    // other two replay. The final sweep equals a clean 3-cell sweep.
    let second = run_supervised_with(&RunPool::serial(), &spec, n, &cfg, |_, s| {
        run_experiment(s, provision_cubic(CubicParams::default()))
    })
    .expect("journal open");
    assert!(second.is_clean());
    assert_eq!(second.completed.len(), n);
    let resumed_flags: Vec<bool> = second.completed.iter().map(|c| c.resumed).collect();
    assert_eq!(resumed_flags, vec![true, false, true]);
    let all: Vec<_> = reference.iter().map(|r| r.metrics.clone()).collect();
    assert_eq!(
        metrics_json(&second.mean_metrics().unwrap()),
        metrics_json(&phi::tcp::report::RunMetrics::mean_of(&all)),
    );
    std::fs::remove_file(&path).ok();
}

/// Supervision itself must not perturb determinism: the same sweep,
/// supervised, fingerprints identically for 1 and 4 workers.
#[test]
fn supervised_sweep_bit_identical_for_any_worker_count() {
    let spec = quick_spec();
    let cfg = SupervisorConfig::new();
    let run = |_i: usize, s: &ExperimentSpec| -> RunResult {
        run_experiment(s, provision_cubic(CubicParams::default()))
    };
    let serial =
        run_supervised_with(&RunPool::serial(), &spec, 4, &cfg, run).expect("no journal, no io");
    let parallel =
        run_supervised_with(&RunPool::new(4), &spec, 4, &cfg, run).expect("no journal, no io");
    assert_eq!(serial.fingerprint(), parallel.fingerprint());
    assert_eq!(
        metrics_json(&serial.mean_metrics().unwrap()),
        metrics_json(&parallel.mean_metrics().unwrap()),
    );
}
