//! Cross-crate pipelines: telemetry→analysis, telemetry→diagnosis, and
//! simulation→prediction.

use phi::diagnosis::{
    detect, generate, localize, DetectorConfig, Dimension, LocalizerConfig, Outage, SeasonalModel,
    TelemetryConfig,
};
use phi::predict::{predict_download, predict_voip, PathId, PerfDb, PerfObservation};
use phi::sim::time::Dur;
use phi::telemetry::{
    decode_batch, encode_batch, generate_flows, Collector, EgressConfig, Sampler, SharingCdf,
};
use phi::workload::SeedRng;

#[test]
fn sampled_egress_pipeline_shows_sharing() {
    let cfg = EgressConfig {
        subnets: 100,
        flows: 30_000,
        minutes: 5,
        ..EgressConfig::default()
    };
    let mut rng = SeedRng::new(11);
    let flows = generate_flows(&cfg, &mut rng);
    let mut sampler = Sampler::paper(rng.fork("s"));
    let mut collector = Collector::new();
    let mut batch = Vec::new();
    for f in &flows {
        for ts in f.packet_times() {
            if let Some(rec) = sampler.observe(f.key, ts, 1500) {
                batch.push(rec);
            }
        }
    }
    // Wire round-trip, like a real exporter→collector hop.
    for chunk in batch.chunks(500) {
        let bytes = encode_batch(chunk).expect("encode");
        collector.ingest_batch(&decode_batch(&bytes).expect("decode"));
    }
    let cdf = SharingCdf::from_collector(&collector);
    assert!(!cdf.is_empty(), "sampling produced nothing");
    let (p5, _p100) = cdf.paper_rows();
    assert!(p5 > 0.1, "sharing should be visible even sampled: {p5}");
    // CCDF is monotone.
    let series = cdf.ccdf_series(&[0, 1, 5, 25, 125]);
    for w in series.windows(2) {
        assert!(w[1].1 <= w[0].1 + 1e-12);
    }
}

#[test]
fn outage_pipeline_detects_and_localizes() {
    let cfg = TelemetryConfig {
        services: 2,
        asns: 4,
        metros: 3,
        bins_per_day: 96, // 15-min bins
        days: 4,
        ..TelemetryConfig::default()
    };
    let period = cfg.bins_per_day;
    let outage = Outage {
        asn: 2,
        metro: 1,
        start_bin: 3 * period + 40,
        end_bin: 3 * period + 48, // 2 hours of 15-min bins
        severity: 0.9,
    };
    let data = generate(&cfg, Some(&outage), &mut SeedRng::new(77));
    let total = data.total();
    let model = SeasonalModel::fit(&total, period, 3 * period);
    let events = detect(&total, &model, &DetectorConfig::default());
    assert_eq!(events.len(), 1, "exactly one event expected: {events:?}");
    let e = events[0];
    assert!((e.duration_bins() as i64 - 8).abs() <= 2, "{e:?}");
    let loc =
        localize(&data, &e, period, 3 * period, &LocalizerConfig::default()).expect("localize");
    assert!(loc.constraints.contains(&(Dimension::Asn, 2)));
    assert!(loc.constraints.contains(&(Dimension::Metro, 1)));
}

#[test]
fn simulation_feeds_prediction_that_matches_reality() {
    use phi::core::{provision_cubic, run_experiment, ExperimentSpec};
    use phi::tcp::CubicParams;
    use phi::workload::OnOffConfig;

    // 1. Run a sim whose flows all transfer ~the same number of bytes.
    let bytes_per_flow = 500_000u64;
    let mut spec = ExperimentSpec::new(
        4,
        OnOffConfig {
            mean_on_bytes: bytes_per_flow as f64,
            mean_off_secs: 0.5,
            deterministic: true,
        },
        Dur::from_secs(30),
        2024,
    );
    spec.dumbbell.bottleneck_bps = 10_000_000;
    spec.dumbbell.rtt = Dur::from_millis(100);
    let result = run_experiment(&spec, provision_cubic(CubicParams::tuned(8.0, 32.0, 0.2)));

    // 2. Feed observed per-flow performance into the prediction DB.
    let mut db = PerfDb::new(3_600_000_000_000);
    let path = PathId(1);
    let mut actual_durations = Vec::new();
    for r in result.per_sender.iter().flatten() {
        db.record(
            path,
            r.end.as_nanos(),
            &PerfObservation {
                throughput_mbps: r.throughput_bps() / 1e6,
                rtt_ms: r.mean_rtt_ms,
                loss: 0.0,
                jitter_ms: r.rtt_inflation_ms(spec.dumbbell.rtt),
            },
        );
        actual_durations.push(r.duration().as_secs_f64());
    }
    assert!(actual_durations.len() >= 10, "need flows to learn from");

    // 3. Predict the completion time of the same-size download.
    let view = db
        .view(path, spec.duration.as_nanos())
        .expect("view after feeding");
    let pred = predict_download(&view, bytes_per_flow).expect("prediction");
    actual_durations.sort_by(f64::total_cmp);
    let actual_median = actual_durations[actual_durations.len() / 2];
    // The predictor must land in the right ballpark (2x band): it is a
    // distribution estimate, not a simulator.
    assert!(
        pred.p50_secs > actual_median * 0.5 && pred.p50_secs < actual_median * 2.0,
        "predicted {:.2}s vs actual median {:.2}s",
        pred.p50_secs,
        actual_median
    );
    assert!(pred.p95_secs >= pred.p50_secs);

    // 4. VoIP prediction on the same path is consistent: moderate RTT and
    // no loss => acceptable call quality.
    let voip = predict_voip(&view).expect("voip");
    assert!(voip.mos > 3.0, "mos {}", voip.mos);
}
