//! Multi-bottleneck ("parking lot") topologies: the simulator and
//! transport must behave sensibly beyond the dumbbell.
//!
//! Topology: A --10M-- B --10M-- C --10M-- D with hosts hanging off each
//! router. A long path (via all three backbone links) competes with
//! short one-hop cross traffic on each link — the classic setting where
//! the long flow gets squeezed at every hop.

use phi::sim::engine::Simulator;
use phi::sim::queue::Capacity;
use phi::sim::time::{Dur, Time};
use phi::sim::topology::{parking_lot, ParkingLotSpec};
use phi::tcp::cubic::{Cubic, CubicParams};
use phi::tcp::hook::NoHook;
use phi::tcp::receiver::TcpReceiver;
use phi::tcp::sender::{SenderConfig, TcpSender};
use phi::workload::{OnOffConfig, OnOffSource, SeedRng};

struct Lot {
    sim: Simulator,
    senders: Vec<phi::sim::packet::AgentId>,
    backbone: Vec<phi::sim::packet::LinkId>,
}

/// Build the parking lot with one long flow (hop 0 -> hop 3) and one
/// short cross flow per backbone link.
fn build(seconds_of_data: f64) -> Lot {
    let lot = parking_lot(&ParkingLotSpec {
        hops: 3,
        backbone_bps: 10_000_000,
        hop_delay: Dur::from_millis(10),
        capacity: Capacity::Bytes(150_000), // ~1.2 x BDP per link
        access_bps: 1_000_000_000,
    });
    let mut sim = Simulator::new(lot.topology.clone());

    let bytes = 10_000_000.0 / 8.0 * seconds_of_data; // enough to stay busy
    let add_sender = |sim: &mut Simulator,
                      src: phi::sim::packet::NodeId,
                      dst: phi::sim::packet::NodeId,
                      seed: u64| {
        let mut cfg = SenderConfig::new(dst, 80, 10);
        cfg.max_flows = Some(1);
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: bytes,
                mean_off_secs: 0.0,
                deterministic: true,
            },
            SeedRng::new(seed),
        );
        let id = sim.add_agent(
            src,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::tuned(8.0, 64.0, 0.2).paced()))),
                Box::new(NoHook),
            )),
        );
        sim.add_agent(dst, 80, Box::new(TcpReceiver::new()));
        id
    };

    let (long_src, long_dst) = lot.long_path;
    let mut senders = vec![add_sender(&mut sim, long_src, long_dst, 1)];
    for (i, &(src, dst)) in lot.cross.iter().enumerate() {
        senders.push(add_sender(&mut sim, src, dst, 10 + i as u64));
    }
    Lot {
        sim,
        senders,
        backbone: lot.backbone,
    }
}

fn goodput_mbps(sim: &Simulator, id: phi::sim::packet::AgentId, secs: f64) -> f64 {
    let s = sim.agent_as::<TcpSender>(id).unwrap();
    let done: u64 = s.reports().iter().map(|r| r.bytes).sum();
    let partial = s
        .partial_report(Time::from_secs_f64(secs))
        .map(|p| p.bytes)
        .unwrap_or(0);
    (done + partial) as f64 * 8.0 / secs / 1e6
}

#[test]
fn long_flow_is_squeezed_at_every_hop() {
    let secs = 40.0;
    let mut lot = build(secs * 2.0);
    lot.sim.run_until(Time::from_secs_f64(secs));

    let long = goodput_mbps(&lot.sim, lot.senders[0], secs);
    let crosses: Vec<f64> = (1..4)
        .map(|i| goodput_mbps(&lot.sim, lot.senders[i], secs))
        .collect();
    let mean_cross = crosses.iter().sum::<f64>() / 3.0;

    // Everyone makes real progress. The long flow pays loss at three
    // drop-tail bottlenecks with beta = 0.2, so it is squeezed hard —
    // but with per-flow RNG streams keyed on flow id (draws depend only
    // on (seed, flow), not on draw order), the value no longer shifts
    // when unrelated streams change, and the original 0.5 Mbit/s floor
    // holds again.
    assert!(long > 0.5, "long flow starved: {long:.2} Mbit/s");
    for (i, c) in crosses.iter().enumerate() {
        assert!(*c > 1.0, "cross flow {i} starved: {c:.2}");
    }
    // ...but the long flow, paying loss probability at three hops, gets
    // less than the single-hop cross traffic (the parking-lot effect).
    assert!(
        long < mean_cross,
        "long flow ({long:.2}) should underperform one-hop cross traffic ({mean_cross:.2})"
    );
    // Links are all busy: each carries its cross flow + the long flow.
    for (i, l) in lot.backbone.iter().enumerate() {
        let util = lot.sim.link_stats(*l).utilization(Dur::from_secs_f64(secs));
        assert!(util > 0.7, "backbone link {i} underutilized: {util:.2}");
    }
    // Conservation: each backbone link carries at most its capacity.
    for l in &lot.backbone {
        let tput = lot
            .sim
            .link_stats(*l)
            .throughput_bps(Dur::from_secs_f64(secs));
        assert!(tput <= 10_000_000.0 * 1.001, "link over capacity: {tput}");
    }
}

#[test]
fn multihop_rtt_reflects_path_length() {
    let secs = 20.0;
    let mut lot = build(secs * 2.0);
    lot.sim.run_until(Time::from_secs_f64(secs));
    let long = lot
        .sim
        .agent_as::<TcpSender>(lot.senders[0])
        .unwrap()
        .partial_report(Time::from_secs_f64(secs))
        .expect("long flow progressed");
    let cross = lot
        .sim
        .agent_as::<TcpSender>(lot.senders[1])
        .unwrap()
        .partial_report(Time::from_secs_f64(secs))
        .expect("cross flow progressed");
    // Base path: 3 hops of 10 ms vs 1 hop of 10 ms (plus access).
    let long_min = long.min_rtt.unwrap();
    let cross_min = cross.min_rtt.unwrap();
    assert!(
        long_min > cross_min * 2,
        "3-hop min RTT {long_min} should be ~3x the 1-hop {cross_min}"
    );
    assert!(long_min >= Dur::from_millis(60), "got {long_min}");
}
