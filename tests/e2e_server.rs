//! End-to-end context service: simulation experience flowing through the
//! real TCP server.
//!
//! A dumbbell simulation produces genuine flow reports; those are shipped
//! to a live `ContextServer` through the wire protocol by concurrent
//! clients, and the resulting shared context is checked against what the
//! simulation actually experienced.

use std::time::Duration;

use phi::core::wire;
use phi::core::{
    provision_cubic, run_experiment, summarize, sync_store, ClientError, ContextClient,
    ContextServer, ContextStore, ExperimentSpec, PathKey, ServerConfig, StoreConfig,
};
use phi::sim::time::Dur;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

#[test]
fn simulation_reports_through_real_server_build_context() {
    // 1. Run a real simulation to get authentic flow reports.
    let mut spec = ExperimentSpec::new(
        4,
        OnOffConfig {
            mean_on_bytes: 400_000.0,
            mean_off_secs: 0.5,
            deterministic: false,
        },
        Dur::from_secs(20),
        123,
    );
    spec.dumbbell.bottleneck_bps = 10_000_000;
    spec.dumbbell.rtt = Dur::from_millis(100);
    let result = run_experiment(&spec, provision_cubic(CubicParams::default()));
    let reports: Vec<_> = result.per_sender.iter().flatten().collect();
    assert!(reports.len() >= 8, "need a meaningful report stream");

    // 2. Serve a store that knows the real capacity.
    let store = sync_store(ContextStore::new(StoreConfig {
        window_ns: u64::MAX, // everything in-window: we replay history at once
        capacity_bps: Some(spec.dumbbell.bottleneck_bps as f64),
        queue_alpha: 0.3,
    }));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();
    let path = PathKey(42);

    // 3. Each simulated sender becomes a client thread replaying its flows.
    let chunks: Vec<Vec<phi::core::FlowSummary>> = result
        .per_sender
        .iter()
        .map(|rs| rs.iter().map(summarize).collect())
        .collect();
    let handles: Vec<_> = chunks
        .into_iter()
        .map(|summaries| {
            std::thread::spawn(move || {
                let mut client = ContextClient::connect(addr).expect("connect");
                for s in summaries {
                    client.lookup(path).expect("lookup");
                    client.report(path, s).expect("report");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // 4. The shared context reflects the simulation's reality.
    let mut observer = ContextClient::connect(addr).expect("connect");
    let ctx = observer.lookup(path).expect("lookup");
    assert!(
        ctx.utilization > 0.0,
        "server should have accumulated utilization"
    );
    // The sim ran ~100ms base RTT with queueing; RTT inflation must be
    // non-negative and bounded by something sane.
    assert!(
        ctx.queue_ms >= 0.0 && ctx.queue_ms < 1_000.0,
        "q = {}",
        ctx.queue_ms
    );
    // All report slots released; only the observer's lookup is active.
    assert_eq!(ctx.competing, 0);

    let stats = server.stats();
    let total_reports: u64 = reports.len() as u64;
    assert_eq!(
        stats.reports.load(std::sync::atomic::Ordering::Relaxed),
        total_reports
    );
    server.shutdown();
}

#[test]
fn server_survives_client_churn() {
    let store = sync_store(ContextStore::new(StoreConfig::default()));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();

    // Waves of clients connecting, doing one op, disconnecting.
    for wave in 0..5u64 {
        let handles: Vec<_> = (0..4)
            .map(|i: u64| {
                std::thread::spawn(move || {
                    let mut c = ContextClient::connect(addr).expect("connect");
                    let snap = c.lookup(PathKey(wave * 10 + i)).expect("lookup");
                    assert_eq!(snap.competing, 0);
                    // Dropped without reporting: the server must tolerate it.
                })
            })
            .collect();
        for h in handles {
            h.join().expect("wave client");
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    let stats = server.stats();
    assert_eq!(
        stats.connections.load(std::sync::atomic::Ordering::Relaxed),
        20
    );
    assert_eq!(stats.lookups.load(std::sync::atomic::Ordering::Relaxed), 20);
    server.shutdown();
}

#[test]
fn overloaded_server_sheds_with_error_frame_and_counts_rejections() {
    let store = sync_store(ContextStore::new(StoreConfig::default()));
    let server =
        ContextServer::start_with("127.0.0.1:0", store, ServerConfig { max_connections: 2 })
            .expect("bind");
    let addr = server.addr();

    // Fill the cap with two live clients; a completed lookup proves each
    // one's handler thread is running (not just sitting in the backlog).
    let mut parked: Vec<ContextClient> = (0..2)
        .map(|i| {
            let mut c = ContextClient::connect(addr).expect("connect");
            c.lookup(PathKey(i)).expect("lookup");
            c
        })
        .collect();

    // The third connection must be shed with the overload frame — a clean
    // protocol-level answer, not a hang and not a silent close.
    let mut spill = ContextClient::connect(addr).expect("tcp connect still accepted");
    match spill.lookup(PathKey(99)) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(
                code,
                wire::code::OVERLOADED,
                "wrong code: {code} ({message})"
            );
        }
        other => panic!("expected overload error frame, got {other:?}"),
    }
    let rejected = server
        .stats()
        .rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(rejected, 1, "shed connection must bump the counter");

    // Overload is transient: once a slot frees, new clients are served.
    drop(parked.pop());
    let served = (0..50).find_map(|_| {
        std::thread::sleep(Duration::from_millis(20));
        let mut c = ContextClient::connect(addr).ok()?;
        c.lookup(PathKey(7)).ok()
    });
    assert!(
        served.is_some(),
        "server never recovered after load dropped"
    );

    drop(parked);
    server.shutdown();
}
