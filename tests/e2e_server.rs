//! End-to-end context service: simulation experience flowing through the
//! real TCP server.
//!
//! A dumbbell simulation produces genuine flow reports; those are shipped
//! to a live `ContextServer` through the wire protocol by concurrent
//! clients, and the resulting shared context is checked against what the
//! simulation actually experienced.

use std::time::Duration;

use phi::core::wire;
use phi::core::{
    provision_cubic, run_experiment, summarize, sync_store, ClientError, ContextClient,
    ContextServer, ContextStore, ExperimentSpec, FlowSummary, PathKey, ResilienceConfig,
    ResilientClient, ServerConfig, StoreConfig, WriteBehindConfig,
};
use phi::sim::time::Dur;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

#[test]
fn simulation_reports_through_real_server_build_context() {
    // 1. Run a real simulation to get authentic flow reports.
    let mut spec = ExperimentSpec::new(
        4,
        OnOffConfig {
            mean_on_bytes: 400_000.0,
            mean_off_secs: 0.5,
            deterministic: false,
        },
        Dur::from_secs(20),
        123,
    );
    spec.dumbbell.bottleneck_bps = 10_000_000;
    spec.dumbbell.rtt = Dur::from_millis(100);
    let result = run_experiment(&spec, provision_cubic(CubicParams::default()));
    let reports: Vec<_> = result.per_sender.iter().flatten().collect();
    assert!(reports.len() >= 8, "need a meaningful report stream");

    // 2. Serve a store that knows the real capacity.
    let store = sync_store(ContextStore::new(StoreConfig {
        window_ns: u64::MAX, // everything in-window: we replay history at once
        capacity_bps: Some(spec.dumbbell.bottleneck_bps as f64),
        queue_alpha: 0.3,
    }));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();
    let path = PathKey(42);

    // 3. Each simulated sender becomes a client thread replaying its flows.
    let chunks: Vec<Vec<phi::core::FlowSummary>> = result
        .per_sender
        .iter()
        .map(|rs| rs.iter().map(summarize).collect())
        .collect();
    let handles: Vec<_> = chunks
        .into_iter()
        .map(|summaries| {
            std::thread::spawn(move || {
                let mut client = ContextClient::connect(addr).expect("connect");
                for s in summaries {
                    client.lookup(path).expect("lookup");
                    client.report(path, s).expect("report");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // 4. The shared context reflects the simulation's reality.
    let mut observer = ContextClient::connect(addr).expect("connect");
    let ctx = observer.lookup(path).expect("lookup");
    assert!(
        ctx.utilization > 0.0,
        "server should have accumulated utilization"
    );
    // The sim ran ~100ms base RTT with queueing; RTT inflation must be
    // non-negative and bounded by something sane.
    assert!(
        ctx.queue_ms >= 0.0 && ctx.queue_ms < 1_000.0,
        "q = {}",
        ctx.queue_ms
    );
    // All report slots released; only the observer's lookup is active.
    assert_eq!(ctx.competing, 0);

    let stats = server.stats();
    let total_reports: u64 = reports.len() as u64;
    assert_eq!(
        stats.reports.load(std::sync::atomic::Ordering::Relaxed),
        total_reports
    );
    server.shutdown();
}

#[test]
fn server_survives_client_churn() {
    let store = sync_store(ContextStore::new(StoreConfig::default()));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();

    // Waves of clients connecting, doing one op, disconnecting.
    for wave in 0..5u64 {
        let handles: Vec<_> = (0..4)
            .map(|i: u64| {
                std::thread::spawn(move || {
                    let mut c = ContextClient::connect(addr).expect("connect");
                    let snap = c.lookup(PathKey(wave * 10 + i)).expect("lookup");
                    assert_eq!(snap.competing, 0);
                    // Dropped without reporting: the server must tolerate it.
                })
            })
            .collect();
        for h in handles {
            h.join().expect("wave client");
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    let stats = server.stats();
    assert_eq!(
        stats.connections.load(std::sync::atomic::Ordering::Relaxed),
        20
    );
    assert_eq!(stats.lookups.load(std::sync::atomic::Ordering::Relaxed), 20);
    server.shutdown();
}

#[test]
fn overloaded_server_sheds_with_error_frame_and_counts_rejections() {
    let store = sync_store(ContextStore::new(StoreConfig::default()));
    let server =
        ContextServer::start_with("127.0.0.1:0", store, ServerConfig { max_connections: 2 })
            .expect("bind");
    let addr = server.addr();

    // Fill the cap with two live clients; a completed lookup proves each
    // one's handler thread is running (not just sitting in the backlog).
    let mut parked: Vec<ContextClient> = (0..2)
        .map(|i| {
            let mut c = ContextClient::connect(addr).expect("connect");
            c.lookup(PathKey(i)).expect("lookup");
            c
        })
        .collect();

    // The third connection must be shed with the overload frame — a clean
    // protocol-level answer, not a hang and not a silent close.
    let mut spill = ContextClient::connect(addr).expect("tcp connect still accepted");
    match spill.lookup(PathKey(99)) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(
                code,
                wire::code::OVERLOADED,
                "wrong code: {code} ({message})"
            );
        }
        other => panic!("expected overload error frame, got {other:?}"),
    }
    let rejected = server
        .stats()
        .rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(rejected, 1, "shed connection must bump the counter");

    // Overload is transient: once a slot frees, new clients are served.
    drop(parked.pop());
    let served = (0..50).find_map(|_| {
        std::thread::sleep(Duration::from_millis(20));
        let mut c = ContextClient::connect(addr).ok()?;
        c.lookup(PathKey(7)).ok()
    });
    assert!(
        served.is_some(),
        "server never recovered after load dropped"
    );

    drop(parked);
    server.shutdown();
}

fn summary(bytes: u64) -> FlowSummary {
    FlowSummary {
        bytes,
        duration_ns: 1_000_000_000,
        mean_rtt_ms: 170.0,
        min_rtt_ms: 150.0,
        retransmits: 1,
        timeouts: 0,
    }
}

fn server_reports(server: &ContextServer) -> u64 {
    server
        .stats()
        .reports
        .load(std::sync::atomic::Ordering::Relaxed)
}

/// The write-behind staleness bound, end to end against a live sharded
/// server: buffered reports stay client-side — invisible to every other
/// sender — until the count bound, the age bound, or an explicit flush
/// ships them, and after any of those they are visible server-side. A
/// report is never held longer than the bound allows.
#[test]
fn write_behind_reports_land_within_the_staleness_bound() {
    let server = ContextServer::start_sharded(
        "127.0.0.1:0",
        StoreConfig::default(),
        ServerConfig::default(),
        4,
    )
    .expect("bind");
    let addr = server.addr();
    let mut client = ContextClient::connect(addr).expect("connect");
    client.set_write_behind(WriteBehindConfig {
        max_items: 8,
        max_age: Duration::from_millis(150),
    });
    // Paths spread across shards: the flushed batch exercises the
    // group-by-shard path on the server, not just one shard's lock.
    let path = |i: u64| PathKey(i);

    // Count bound: seven reports sit in the buffer, invisible to the
    // server; the eighth crosses `max_items` and the whole batch lands.
    for i in 0..7u64 {
        let flushed = client
            .buffer_report(path(i), summary(100_000))
            .expect("buffer");
        assert!(!flushed, "report {i} flushed before the count bound");
    }
    assert_eq!(client.pending_reports(), 7);
    assert_eq!(server_reports(&server), 0, "buffered reports leaked early");
    assert!(client
        .buffer_report(path(7), summary(100_000))
        .expect("flush"));
    assert_eq!(client.pending_reports(), 0);
    assert_eq!(
        server_reports(&server),
        8,
        "count-bound flush must land all"
    );

    // Age bound: a lone report older than `max_age` is shipped by the
    // next buffer call — the bound is on the *oldest* buffered report,
    // so nothing can be held past it while traffic keeps arriving.
    assert!(!client
        .buffer_report(path(1), summary(50_000))
        .expect("buffer"));
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        client
            .buffer_report(path(2), summary(50_000))
            .expect("age flush"),
        "a report older than max_age must force the flush"
    );
    assert_eq!(server_reports(&server), 10);

    // Explicit flush: the staleness bound is an upper bound, not a delay —
    // a caller can always cut it to zero.
    assert!(!client
        .buffer_report(path(3), summary(25_000))
        .expect("buffer"));
    assert_eq!(client.flush_reports().expect("flush"), 1);
    assert_eq!(client.flush_reports().expect("empty flush"), 0);
    assert_eq!(server_reports(&server), 11);

    // And the landed reports are really in the stores: every reported
    // path answers with accumulated context through the batch-query path.
    let snaps = client
        .query_batch(&(0..8).map(path).collect::<Vec<_>>())
        .expect("batch query");
    assert_eq!(snaps.len(), 8);
    for (i, s) in snaps.iter().enumerate() {
        assert!(s.utilization > 0.0, "path {i} shows no context: {s:?}");
    }
    server.shutdown();
}

/// A dead plane costs buffered telemetry, never the data path: once the
/// server is gone, buffering keeps accepting reports, a triggered flush
/// reports the loss and empties the buffer, and after the circuit breaker
/// opens every call short-circuits without touching the network.
#[test]
fn dead_plane_write_behind_degrades_without_stalling() {
    let store = sync_store(ContextStore::new(StoreConfig::default()));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();

    let mut cfg = ResilienceConfig {
        max_retries: 0,
        backoff_base: Duration::from_millis(1),
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(30),
        ..ResilienceConfig::default()
    };
    cfg.client.connect_timeout = Duration::from_millis(100);
    cfg.client.request_deadline = Duration::from_millis(100);
    let mut client = ResilientClient::with_config(addr, cfg).expect("resolve");
    client.set_write_behind(WriteBehindConfig {
        max_items: 4,
        max_age: Duration::from_secs(3600), // count bound only: timing-proof
    });

    // Healthy plane: a full buffer flushes and lands.
    for i in 0..4u64 {
        client.buffer_report(PathKey(i), summary(10_000));
    }
    assert_eq!(client.pending_reports(), 0);
    assert_eq!(server_reports(&server), 4);

    server.shutdown();

    // Dead plane: buffering itself never fails...
    for i in 0..3u64 {
        assert!(client.buffer_report(PathKey(i), summary(10_000)));
    }
    // ...the flush that hits the dead server reports the loss and drops
    // the batch — the buffer must not grow or retry into the future...
    assert!(
        !client.buffer_report(PathKey(3), summary(10_000)),
        "flush against a dead plane must report the loss"
    );
    assert_eq!(client.pending_reports(), 0, "dropped, not retained");

    // ...and with the breaker open, a full buffer cycle is pure CPU: no
    // connects, no timeouts, no stalls on the caller's path.
    assert!(client.breaker_open(), "one exhausted request must trip it");
    let before = client.stats().short_circuited;
    let start = std::time::Instant::now();
    for i in 0..400u64 {
        client.buffer_report(PathKey(i), summary(10_000));
    }
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "buffering against an open breaker stalled: {:?}",
        start.elapsed()
    );
    assert!(
        client.stats().short_circuited > before,
        "flushes should short-circuit, not touch the network"
    );
    assert_eq!(client.pending_reports() % 4, client.pending_reports());
    assert!(
        client.query_batch(&[PathKey(1)]).is_none(),
        "degrade to no context"
    );
    assert!(client.lookup(PathKey(1)).is_none());
}
