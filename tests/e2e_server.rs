//! End-to-end context service: simulation experience flowing through the
//! real TCP server.
//!
//! A dumbbell simulation produces genuine flow reports; those are shipped
//! to a live `ContextServer` through the wire protocol by concurrent
//! clients, and the resulting shared context is checked against what the
//! simulation actually experienced.

use std::time::Duration;

use phi::core::{
    provision_cubic, run_experiment, summarize, sync_store, ContextClient, ContextServer,
    ContextStore, ExperimentSpec, PathKey, StoreConfig,
};
use phi::sim::time::Dur;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

#[test]
fn simulation_reports_through_real_server_build_context() {
    // 1. Run a real simulation to get authentic flow reports.
    let mut spec = ExperimentSpec::new(
        4,
        OnOffConfig {
            mean_on_bytes: 400_000.0,
            mean_off_secs: 0.5,
            deterministic: false,
        },
        Dur::from_secs(20),
        123,
    );
    spec.dumbbell.bottleneck_bps = 10_000_000;
    spec.dumbbell.rtt = Dur::from_millis(100);
    let result = run_experiment(&spec, provision_cubic(CubicParams::default()));
    let reports: Vec<_> = result.per_sender.iter().flatten().collect();
    assert!(reports.len() >= 8, "need a meaningful report stream");

    // 2. Serve a store that knows the real capacity.
    let store = sync_store(ContextStore::new(StoreConfig {
        window_ns: u64::MAX, // everything in-window: we replay history at once
        capacity_bps: Some(spec.dumbbell.bottleneck_bps as f64),
        queue_alpha: 0.3,
    }));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();
    let path = PathKey(42);

    // 3. Each simulated sender becomes a client thread replaying its flows.
    let chunks: Vec<Vec<phi::core::FlowSummary>> = result
        .per_sender
        .iter()
        .map(|rs| rs.iter().map(summarize).collect())
        .collect();
    let handles: Vec<_> = chunks
        .into_iter()
        .map(|summaries| {
            std::thread::spawn(move || {
                let mut client = ContextClient::connect(addr).expect("connect");
                for s in summaries {
                    client.lookup(path).expect("lookup");
                    client.report(path, s).expect("report");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // 4. The shared context reflects the simulation's reality.
    let mut observer = ContextClient::connect(addr).expect("connect");
    let ctx = observer.lookup(path).expect("lookup");
    assert!(
        ctx.utilization > 0.0,
        "server should have accumulated utilization"
    );
    // The sim ran ~100ms base RTT with queueing; RTT inflation must be
    // non-negative and bounded by something sane.
    assert!(
        ctx.queue_ms >= 0.0 && ctx.queue_ms < 1_000.0,
        "q = {}",
        ctx.queue_ms
    );
    // All report slots released; only the observer's lookup is active.
    assert_eq!(ctx.competing, 0);

    let stats = server.stats();
    let total_reports: u64 = reports.len() as u64;
    assert_eq!(
        stats.reports.load(std::sync::atomic::Ordering::Relaxed),
        total_reports
    );
    server.shutdown();
}

#[test]
fn server_survives_client_churn() {
    let store = sync_store(ContextStore::new(StoreConfig::default()));
    let server = ContextServer::start("127.0.0.1:0", store).expect("bind");
    let addr = server.addr();

    // Waves of clients connecting, doing one op, disconnecting.
    for wave in 0..5u64 {
        let handles: Vec<_> = (0..4)
            .map(|i: u64| {
                std::thread::spawn(move || {
                    let mut c = ContextClient::connect(addr).expect("connect");
                    let snap = c.lookup(PathKey(wave * 10 + i)).expect("lookup");
                    assert_eq!(snap.competing, 0);
                    // Dropped without reporting: the server must tolerate it.
                })
            })
            .collect();
        for h in handles {
            h.join().expect("wave client");
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    let stats = server.stats();
    assert_eq!(
        stats.connections.load(std::sync::atomic::Ordering::Relaxed),
        20
    );
    assert_eq!(stats.lookups.load(std::sync::atomic::Ordering::Relaxed), 20);
    server.shutdown();
}
