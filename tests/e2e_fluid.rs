//! Differential validation of the fluid (flow-level) fast path.
//!
//! The fluid solver is only useful if it is *trustworthy*: same spec,
//! same seeded workload draws, a tiny fraction of the events — and
//! aggregates that land close to the packet-level engine it replaces.
//! These tests pin that contract:
//!
//!  1. Goodput within 10% of packet-level on pinned reference
//!     scenarios, and a property test sweeping random scenarios in the
//!     same band for delivered bytes within 15% (model bias plus
//!     finite-sample noise) and median flow completion time within 40%
//!     (a 108-point sweep of this scenario space measured byte ratios
//!     in [0.93, 1.09] and p50-FCT ratios in [0.67, 1.17]; tail
//!     quantiles are intentionally not pinned — a rate-based model has
//!     no queueing jitter, so p90+ diverges by design).
//!  2. Conservation invariants on the fluid result itself (the solver's
//!     internal byte census is additionally `debug_assert`ed inside
//!     `run_fluid` on every one of these runs).
//!  3. Fluid runs are bit-identical for any `PHI_JOBS` worker count
//!     (`RunPool::serial()` vs `RunPool::new(4)`), down to a serialized
//!     fingerprint of metrics and every flow report.

use phi::core::{
    provision_cubic, run_experiment, run_repeated_on, ExperimentSpec, RunPool, RunResult,
};
use phi::sim::time::Dur;
use phi::tcp::report::FlowReport;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;
use proptest::prelude::*;

/// A dumbbell in the calibrated regime: the paper-style 10 Mbit/s
/// bottleneck at moderate utilization (~0.4–0.8), flows of 100–200 KB.
/// The fluid model is only trustworthy in this band — at saturation the
/// fixed efficiency factor undershoots Cubic's achieved goodput, and at
/// light load with long RTTs the rate-based ramp overshoots Cubic's
/// RTT-bound probing — the same validity boundary `DESIGN.md`
/// documents. A 108-point sweep over this space (6 seeds × all corner
/// combinations) measured delivered-bytes ratios in [0.93, 1.09] and
/// median-FCT ratios in [0.67, 1.17].
fn scenario(pairs: usize, mean_on_bytes: f64, rtt_ms: u64, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        pairs,
        OnOffConfig {
            mean_on_bytes,
            mean_off_secs: 0.5,
            deterministic: false,
        },
        Dur::from_secs(20),
        seed,
    );
    spec.dumbbell.bottleneck_bps = 10_000_000;
    spec.dumbbell.rtt = Dur::from_millis(rtt_ms);
    spec
}

/// All completed flows, flattened.
fn completed(r: &RunResult) -> Vec<&FlowReport> {
    r.per_sender.iter().flatten().collect()
}

/// Total delivered bytes: completed flows plus the partial report of
/// each still-running connection at the deadline.
fn delivered_bytes(r: &RunResult) -> u64 {
    completed(r).iter().map(|f| f.bytes).sum::<u64>()
        + r.partials.iter().flatten().map(|f| f.bytes).sum::<u64>()
}

/// The `q`-quantile of flow completion times, seconds.
fn fct_quantile(reports: &[&FlowReport], q: f64) -> f64 {
    let mut fcts: Vec<f64> = reports
        .iter()
        .map(|f| (f.end.as_nanos() - f.start.as_nanos()) as f64 / 1e9)
        .collect();
    fcts.sort_by(|a, b| a.total_cmp(b));
    fcts[((fcts.len() - 1) as f64 * q).round() as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline differential: across random small scenarios in the
    /// calibrated band the fluid path reproduces the packet path's
    /// delivered bytes within 15% and its median FCT within 40%.
    #[test]
    fn fluid_matches_packet_level_on_small_scenarios(
        pairs in 4usize..=5,
        mean_on_kb in 100u32..=200,
        rtt_ms in 40u64..=80,
        seed in 1u64..1_000_000,
    ) {
        let spec = scenario(pairs, f64::from(mean_on_kb) * 1_000.0, rtt_ms, seed);
        let packet = run_experiment(&spec, provision_cubic(CubicParams::default()));
        let fluid = run_experiment(
            &spec.clone().with_fluid(),
            provision_cubic(CubicParams::default()),
        );

        // Same seeded workload: flow-for-flow identical sizes.
        for (ps, fs) in packet.per_sender.iter().zip(&fluid.per_sender) {
            for (p, f) in ps.iter().zip(fs) {
                prop_assert_eq!(p.bytes, f.bytes, "engines drew different workloads");
            }
        }

        // Goodput within 15%. This is the *random-scenario* envelope:
        // model bias (within 10%, pinned by the reference-scenario test
        // below) plus the finite-sample noise of a 20-second draw from
        // an exponential flow-size distribution.
        let pb = delivered_bytes(&packet) as f64;
        let fb = delivered_bytes(&fluid) as f64;
        prop_assert!(pb > 0.0, "packet run delivered nothing");
        let ratio = fb / pb;
        prop_assert!(
            (0.85..=1.15).contains(&ratio),
            "delivered bytes diverged: fluid {fb} vs packet {pb} (ratio {ratio:.3})"
        );

        // Median FCT within 40% (only when both runs completed enough
        // flows for a stable median). Tail quantiles are deliberately
        // unpinned: a rate-based model has no queueing jitter, so p90+
        // diverges by design.
        let pf = completed(&packet);
        let ff = completed(&fluid);
        if pf.len() >= 30 && ff.len() >= 30 {
            let (p50p, p50f) = (fct_quantile(&pf, 0.5), fct_quantile(&ff, 0.5));
            let r = p50f / p50p;
            prop_assert!(
                (0.6..=1.4).contains(&r),
                "median FCT diverged: fluid {p50f:.3}s vs packet {p50p:.3}s (ratio {r:.3})"
            );
        }

        // Conservation at the result level: the aggregate equals the sum
        // of its parts (completed flows plus deadline partials), time
        // runs forward, utilization is a fraction. (The solver's
        // internal byte census is debug_asserted inside run_fluid on
        // this same run. A record's `end` may exceed the deadline by the
        // slow-start ramp correction — that shift is documented solver
        // behavior, so it is not pinned here.)
        prop_assert_eq!(fluid.metrics.bytes, delivered_bytes(&fluid));
        for f in &ff {
            prop_assert!(f.end.as_nanos() >= f.start.as_nanos());
        }
        prop_assert!(fluid.metrics.utilization <= 1.0);
        prop_assert_eq!(fluid.metrics.loss_rate, 0.0, "a fluid link has no drops");

        // The point of the fast path: far fewer events than packets.
        prop_assert!(
            fluid.events * 5 < packet.events,
            "fluid {} events vs packet {} — no speedup",
            fluid.events,
            packet.events
        );
    }
}

/// The headline calibration number, pinned deterministically: on fixed
/// reference scenarios across the calibrated band (both engines are
/// bit-deterministic, so these ratios never move), fluid goodput lands
/// within 10% of packet-level.
#[test]
fn fluid_goodput_within_ten_percent_on_reference_scenarios() {
    for (pairs, on_kb, rtt_ms, seed) in [
        (4, 100.0, 40, 1),
        (4, 200.0, 80, 2),
        (5, 150.0, 60, 3),
        (5, 200.0, 40, 4),
        (4, 150.0, 80, 5),
    ] {
        let spec = scenario(pairs, on_kb * 1_000.0, rtt_ms, seed);
        let packet = run_experiment(&spec, provision_cubic(CubicParams::default()));
        let fluid = run_experiment(
            &spec.clone().with_fluid(),
            provision_cubic(CubicParams::default()),
        );
        let ratio = delivered_bytes(&fluid) as f64 / delivered_bytes(&packet) as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "reference scenario (pairs={pairs}, on={on_kb}k, rtt={rtt_ms}ms, seed={seed}) \
             diverged: ratio {ratio:.3}"
        );
    }
}

/// Serialized fingerprint of everything a fluid run reports.
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(&(&r.metrics, &r.per_sender, &r.partials, r.events))
        .expect("run result serializes")
}

/// Fluid runs honor the `PHI_JOBS` contract: fanning repeated runs
/// across 4 workers is bit-identical to running them serially.
#[test]
fn fluid_runs_bit_identical_for_any_worker_count() {
    let spec = scenario(5, 200_000.0, 40, 42).with_fluid();
    let provision = || provision_cubic(CubicParams::default());
    let reference: Vec<String> = run_repeated_on(&RunPool::serial(), &spec, 3, provision())
        .iter()
        .map(fingerprint)
        .collect();
    let got: Vec<String> = run_repeated_on(&RunPool::new(4), &spec, 3, provision())
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(
        got, reference,
        "4 workers diverged from serial in fluid mode"
    );
    assert!(
        reference[0].contains("\"flows_completed\""),
        "fingerprint must carry metrics"
    );
}

/// Same seed twice → same fluid result; different seed → different one.
#[test]
fn fluid_runs_are_seed_deterministic() {
    let provision = || provision_cubic(CubicParams::default());
    let a = run_experiment(&scenario(4, 150_000.0, 60, 7).with_fluid(), provision());
    let b = run_experiment(&scenario(4, 150_000.0, 60, 7).with_fluid(), provision());
    let c = run_experiment(&scenario(4, 150_000.0, 60, 8).with_fluid(), provision());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_ne!(fingerprint(&a), fingerprint(&c), "seed must matter");
}
