//! End-to-end learned congestion control: train on the simulator, then
//! verify the learned policy is at least competitive and that the Phi
//! utilization feed changes sender behaviour.

use std::sync::Arc;

use phi::core::harness::{provision_cubic, run_experiment, ExperimentSpec};
use phi::remy::{
    provision_remy, run_objective, Action, Trainer, TrainerConfig, UsageTally, UtilFeed,
    WhiskerTree,
};
use phi::sim::time::Dur;
use phi::tcp::CubicParams;
use phi::workload::OnOffConfig;

fn scenario(seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        4,
        OnOffConfig {
            mean_on_bytes: 200_000.0,
            mean_off_secs: 0.4,
            deterministic: false,
        },
        Dur::from_secs(12),
        seed,
    );
    spec.dumbbell.bottleneck_bps = 10_000_000;
    spec.dumbbell.rtt = Dur::from_millis(100);
    spec
}

#[test]
fn trained_remy_beats_its_own_starting_point() {
    let mut trainer = Trainer::new(TrainerConfig {
        scenarios: vec![scenario(42)],
        feed: UtilFeed::None,
        max_whiskers: 2,
        max_rounds: 4,
        climb_steps: 2,
    });
    let start = WhiskerTree::initial();
    let start_obj = {
        let r = run_experiment(
            &scenario(42),
            provision_remy(Arc::new(start.clone()), UtilFeed::None, None),
        );
        run_objective(&r)
    };
    let (trained, final_obj) = trainer.train(start);
    assert!(
        final_obj >= start_obj - 1e-9,
        "training regressed: {start_obj} -> {final_obj}"
    );
    // Generalization: evaluate the trained tree on an unseen seed.
    let r = run_experiment(
        &scenario(4242),
        provision_remy(Arc::new(trained), UtilFeed::None, None),
    );
    assert!(
        r.metrics.flows_completed > 5,
        "trained tree must still work"
    );
}

#[test]
fn remy_is_competitive_with_misconfigured_cubic() {
    // A modest claim that must hold even with tiny training: learned
    // control beats a badly configured hand-tuned one.
    let mut trainer = Trainer::new(TrainerConfig {
        scenarios: vec![scenario(7)],
        feed: UtilFeed::None,
        max_whiskers: 2,
        max_rounds: 4,
        climb_steps: 2,
    });
    let (tree, _) = trainer.train(WhiskerTree::initial());
    let eval = scenario(1234);
    let remy = run_experiment(&eval, provision_remy(Arc::new(tree), UtilFeed::None, None));
    let bad_cubic = run_experiment(&eval, provision_cubic(CubicParams::tuned(2.0, 2.0, 0.9)));
    assert!(
        run_objective(&remy) > run_objective(&bad_cubic),
        "learned control should beat a pathological configuration"
    );
}

#[test]
fn util_feed_steers_behaviour_through_the_tree() {
    // Tree: low-utilization half is aggressive, high-utilization half is
    // very conservative. Under the ideal feed on a busy network, senders
    // must spend time in the conservative half; without a feed they can't.
    let mut tree = WhiskerTree::single(Action {
        window_multiple: 1.0,
        window_increment: 4.0,
        intersend_ms: 0.5,
    });
    let (_low, high) = tree.split_along(0, 3);
    tree.set_action(
        high,
        Action {
            window_multiple: 0.8,
            window_increment: 0.0,
            intersend_ms: 4.0,
        },
    );
    let tree = Arc::new(tree);

    let spec = scenario(88);
    let tally_fed = UsageTally::for_tree(&tree);
    let fed = run_experiment(
        &spec,
        provision_remy(tree.clone(), UtilFeed::Ideal, Some(tally_fed.clone())),
    );
    let tally_blind = UsageTally::for_tree(&tree);
    let blind = run_experiment(
        &spec,
        provision_remy(tree.clone(), UtilFeed::None, Some(tally_blind.clone())),
    );

    let fed_counts = tally_fed.counts();
    let blind_counts = tally_blind.counts();
    assert!(
        fed_counts[1] > 0,
        "ideal feed must reach the high-utilization whisker: {fed_counts:?}"
    );
    assert_eq!(
        blind_counts[1], 0,
        "without a feed util stays 0: {blind_counts:?}"
    );
    // Both arms still deliver.
    assert!(fed.metrics.flows_completed > 0 && blind.metrics.flows_completed > 0);
}

#[test]
fn practical_feed_uses_store_and_freezes_between_flows() {
    let spec = scenario(99);
    let tree = Arc::new(WhiskerTree::initial());
    let r = run_experiment(&spec, provision_remy(tree, UtilFeed::Practical, None));
    let (lookups, reports) = r.store.traffic_counters(phi::core::DUMBBELL_PATH);
    assert!(lookups >= reports && reports > 0);
    // The store's learned picture is coherent with the sim.
    let ctx = r
        .store
        .peek(phi::core::DUMBBELL_PATH, spec.duration.as_nanos());
    assert!(ctx.utilization > 0.0 && ctx.utilization <= 1.0);
}
