//! The per-path performance database.
//!
//! §3.5: "the large volume of aggregate network performance data available
//! even within a single cloud provider would … enable effective
//! performance prediction." [`PerfDb`] is that aggregate: per destination
//! path (subnet), rotating-epoch sketches of throughput, RTT, loss, and
//! jitter, fed by connection reports and queried by predictors.
//!
//! Freshness is handled by epoch rotation: observations land in the
//! current epoch; queries merge the current and previous epochs, so the
//! answer always reflects roughly the last one-to-two epochs of traffic
//! (the "network weather", not last month's climate).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::sketch::LogHistogram;

/// A path identifier (e.g. destination /24), matching
/// `phi_core::PathKey`'s representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathId(pub u64);

/// One connection's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfObservation {
    /// Achieved throughput, Mbit/s.
    pub throughput_mbps: f64,
    /// Mean RTT, ms.
    pub rtt_ms: f64,
    /// Loss rate in [0, 1].
    pub loss: f64,
    /// Delay variation (jitter), ms.
    pub jitter_ms: f64,
}

/// Per-path, per-epoch sketch bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PathEpoch {
    throughput: LogHistogram,
    rtt: LogHistogram,
    jitter: LogHistogram,
    loss_sum: f64,
    count: u64,
}

impl PathEpoch {
    fn new() -> Self {
        PathEpoch {
            throughput: LogHistogram::for_throughput_mbps(),
            rtt: LogHistogram::for_latency_ms(),
            jitter: LogHistogram::for_latency_ms(),
            loss_sum: 0.0,
            count: 0,
        }
    }

    fn record(&mut self, obs: &PerfObservation) {
        self.throughput.record(obs.throughput_mbps);
        self.rtt.record(obs.rtt_ms);
        self.jitter.record(obs.jitter_ms.max(0.1));
        self.loss_sum += obs.loss.clamp(0.0, 1.0);
        self.count += 1;
    }
}

/// A merged two-epoch view for queries.
#[derive(Debug, Clone)]
pub struct PathView {
    /// Throughput distribution, Mbit/s.
    pub throughput: LogHistogram,
    /// RTT distribution, ms.
    pub rtt: LogHistogram,
    /// Jitter distribution, ms.
    pub jitter: LogHistogram,
    /// Mean loss rate.
    pub mean_loss: f64,
    /// Observations behind the view.
    pub count: u64,
}

/// The performance database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfDb {
    epoch_ns: u64,
    current_epoch: u64,
    paths: HashMap<PathId, (PathEpoch, PathEpoch)>, // (current, previous)
}

impl PerfDb {
    /// A database rotating epochs every `epoch_ns` nanoseconds.
    pub fn new(epoch_ns: u64) -> Self {
        assert!(epoch_ns > 0);
        PerfDb {
            epoch_ns,
            current_epoch: 0,
            paths: HashMap::new(),
        }
    }

    fn rotate_to(&mut self, epoch: u64) {
        if epoch == self.current_epoch {
            return;
        }
        if epoch == self.current_epoch + 1 {
            for (cur, prev) in self.paths.values_mut() {
                std::mem::swap(cur, prev);
                cur.throughput.clear();
                cur.rtt.clear();
                cur.jitter.clear();
                cur.loss_sum = 0.0;
                cur.count = 0;
            }
        } else {
            // Jumped multiple epochs: everything is stale.
            self.paths.clear();
        }
        self.current_epoch = epoch;
    }

    /// Record an observation for `path` at absolute time `now_ns`.
    pub fn record(&mut self, path: PathId, now_ns: u64, obs: &PerfObservation) {
        let epoch = now_ns / self.epoch_ns;
        if epoch < self.current_epoch {
            return; // late report from a closed epoch: drop
        }
        self.rotate_to(epoch);
        let (cur, _) = self
            .paths
            .entry(path)
            .or_insert_with(|| (PathEpoch::new(), PathEpoch::new()));
        cur.record(obs);
    }

    /// The merged current+previous view for `path` at `now_ns`, if any
    /// fresh observations exist.
    pub fn view(&mut self, path: PathId, now_ns: u64) -> Option<PathView> {
        let epoch = now_ns / self.epoch_ns;
        if epoch > self.current_epoch {
            self.rotate_to(epoch);
        }
        let (cur, prev) = self.paths.get(&path)?;
        let count = cur.count + prev.count;
        if count == 0 {
            return None;
        }
        let mut throughput = cur.throughput.clone();
        throughput.merge(&prev.throughput);
        let mut rtt = cur.rtt.clone();
        rtt.merge(&prev.rtt);
        let mut jitter = cur.jitter.clone();
        jitter.merge(&prev.jitter);
        Some(PathView {
            throughput,
            rtt,
            jitter,
            mean_loss: (cur.loss_sum + prev.loss_sum) / count as f64,
            count,
        })
    }

    /// Number of tracked paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3_600_000_000_000;

    fn obs(tput: f64, rtt: f64) -> PerfObservation {
        PerfObservation {
            throughput_mbps: tput,
            rtt_ms: rtt,
            loss: 0.01,
            jitter_ms: 5.0,
        }
    }

    #[test]
    fn record_and_view() {
        let mut db = PerfDb::new(HOUR);
        for i in 0..100 {
            db.record(PathId(1), i * 1_000_000, &obs(8.0, 160.0));
        }
        let v = db.view(PathId(1), 100_000_000).unwrap();
        assert_eq!(v.count, 100);
        assert!((v.throughput.quantile(0.5).unwrap() - 8.0).abs() < 0.5);
        assert!((v.mean_loss - 0.01).abs() < 1e-9);
        assert!(db.view(PathId(2), 0).is_none());
    }

    #[test]
    fn epoch_rotation_keeps_two_epochs() {
        let mut db = PerfDb::new(HOUR);
        db.record(PathId(1), 0, &obs(2.0, 100.0)); // epoch 0
        db.record(PathId(1), HOUR + 1, &obs(8.0, 100.0)); // epoch 1
        let v = db.view(PathId(1), HOUR + 2).unwrap();
        assert_eq!(v.count, 2); // both epochs visible
        db.record(PathId(1), 2 * HOUR + 1, &obs(8.0, 100.0)); // epoch 2
        let v = db.view(PathId(1), 2 * HOUR + 2).unwrap();
        assert_eq!(v.count, 2, "epoch 0 must have aged out");
    }

    #[test]
    fn long_silence_clears_everything() {
        let mut db = PerfDb::new(HOUR);
        db.record(PathId(1), 0, &obs(2.0, 100.0));
        // 10 epochs later.
        assert!(db.view(PathId(1), 10 * HOUR).is_none());
    }

    #[test]
    fn late_reports_dropped() {
        let mut db = PerfDb::new(HOUR);
        db.record(PathId(1), 2 * HOUR, &obs(5.0, 100.0)); // epoch 2
        db.record(PathId(1), 1, &obs(99.0, 1.0)); // stale epoch 0: ignored
        let v = db.view(PathId(1), 2 * HOUR + 1).unwrap();
        assert_eq!(v.count, 1);
        assert!(v.throughput.quantile(0.5).unwrap() < 10.0);
    }

    #[test]
    fn paths_are_independent() {
        let mut db = PerfDb::new(HOUR);
        db.record(PathId(1), 0, &obs(1.0, 300.0));
        db.record(PathId(2), 0, &obs(50.0, 20.0));
        let a = db.view(PathId(1), 1).unwrap();
        let b = db.view(PathId(2), 1).unwrap();
        assert!(a.rtt.quantile(0.5).unwrap() > b.rtt.quantile(0.5).unwrap());
        assert_eq!(db.path_count(), 2);
    }
}
