//! A compact quantile sketch: log-bucketed histogram.
//!
//! Performance prediction needs per-path distributions (throughput, RTT,
//! loss) maintained over millions of observations with bounded memory.
//! We use a logarithmically-bucketed histogram (HdrHistogram's idea):
//! values are binned with a fixed *relative* resolution, so quantile
//! queries have bounded relative error (`growth − 1`, e.g. 5 %) across
//! many orders of magnitude, with a few hundred buckets.

use serde::{Deserialize, Serialize};

/// Log-bucketed histogram over positive values.
///
/// ```
/// use phi_predict::LogHistogram;
///
/// let mut h = LogHistogram::for_latency_ms();
/// for rtt in [12.0, 15.0, 11.0, 140.0, 13.0] {
///     h.record(rtt);
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((12.0..=15.0).contains(&p50));
/// assert_eq!(h.count(), 5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    min_value: f64,
    growth: f64,
    log_growth: f64,
    counts: Vec<u64>,
    total: u64,
    /// Values below `min_value` (counted in bucket 0 conceptually).
    underflow: u64,
    sum: f64,
}

impl LogHistogram {
    /// A histogram resolving `[min_value, max_value]` with relative error
    /// `rel_err` (bucket boundaries grow by `1 + rel_err`).
    pub fn new(min_value: f64, max_value: f64, rel_err: f64) -> Self {
        assert!(min_value > 0.0 && max_value > min_value, "bad value range");
        assert!(
            rel_err > 0.0 && rel_err < 1.0,
            "relative error must be in (0, 1)"
        );
        let growth = 1.0 + rel_err;
        let buckets = ((max_value / min_value).ln() / growth.ln()).ceil() as usize + 1;
        LogHistogram {
            min_value,
            growth,
            log_growth: growth.ln(),
            counts: vec![0; buckets],
            total: 0,
            underflow: 0,
            sum: 0.0,
        }
    }

    /// A default sketch for millisecond-scale latencies (0.1 ms – 100 s).
    pub fn for_latency_ms() -> Self {
        LogHistogram::new(0.1, 100_000.0, 0.05)
    }

    /// A default sketch for throughput in Mbit/s (1 kbit/s – 100 Gbit/s).
    pub fn for_throughput_mbps() -> Self {
        LogHistogram::new(0.001, 100_000.0, 0.05)
    }

    fn bucket_of(&self, value: f64) -> Option<usize> {
        if value < self.min_value {
            return None;
        }
        let idx = ((value / self.min_value).ln() / self.log_growth) as usize;
        Some(idx.min(self.counts.len() - 1))
    }

    /// Representative (geometric-mid) value of bucket `idx`.
    fn bucket_value(&self, idx: usize) -> f64 {
        self.min_value * self.growth.powf(idx as f64 + 0.5)
    }

    /// Record one observation (non-finite or non-positive values are
    /// counted as underflow).
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value.is_finite() {
            self.sum += value.max(0.0);
        }
        match self.bucket_of(if value.is_finite() { value } else { -1.0 }) {
            Some(idx) => self.counts[idx] += 1,
            None => self.underflow += 1,
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of recorded (finite) values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), with the sketch's relative error.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.total as f64 - 1.0)).round() as u64;
        let mut seen = self.underflow;
        if rank < seen {
            return Some(self.min_value);
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank < seen {
                return Some(self.bucket_value(idx));
            }
        }
        Some(self.bucket_value(self.counts.len() - 1))
    }

    /// Merge another histogram with identical configuration.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "config mismatch");
        assert!(
            (self.min_value - other.min_value).abs() < f64::EPSILON
                && (self.growth - other.growth).abs() < f64::EPSILON,
            "config mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.underflow += other.underflow;
        self.sum += other.sum;
    }

    /// Drop all observations.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.underflow = 0;
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LogHistogram::new(1.0, 100_000.0, 0.05);
        // 1..=10_000 uniformly.
        for i in 1..=10_000 {
            h.record(f64::from(i));
        }
        for &(q, exact) in &[(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).unwrap();
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.08, "q={q}: got {got}, exact {exact}, rel {rel}");
        }
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new(1.0, 1000.0, 0.05);
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn underflow_and_garbage_handled() {
        let mut h = LogHistogram::new(1.0, 1000.0, 0.05);
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 4);
        // All landed in underflow; quantiles pin to min_value.
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    fn overflow_clamps_to_top_bucket() {
        let mut h = LogHistogram::new(1.0, 100.0, 0.1);
        h.record(1e9);
        let q = h.quantile(1.0).unwrap();
        assert!((100.0..150.0).contains(&q), "q = {q}");
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::for_latency_ms();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = LogHistogram::new(1.0, 10_000.0, 0.05);
        let mut b = LogHistogram::new(1.0, 10_000.0, 0.05);
        let mut whole = LogHistogram::new(1.0, 10_000.0, 0.05);
        for i in 1..=1000 {
            let v = f64::from(i);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for &q in &[0.1, 0.5, 0.9] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn clear_resets() {
        let mut h = LogHistogram::for_throughput_mbps();
        h.record(10.0);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "config mismatch")]
    fn merge_rejects_mismatched_config() {
        let mut a = LogHistogram::new(1.0, 100.0, 0.05);
        let b = LogHistogram::new(1.0, 200.0, 0.05);
        a.merge(&b);
    }
}
