//! # phi-predict — network performance prediction (§3.5)
//!
//! A provider-side performance oracle: connection experiences stream into
//! a per-path database of compact distribution sketches
//! ([`db::PerfDb`] over [`sketch::LogHistogram`]), and applications ask,
//! *before* starting a transfer or call, what to expect —
//! [`predict::predict_download`] for completion-time percentiles and
//! [`predict::predict_voip`] for an E-model MOS estimate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod predict;
pub mod sketch;

pub use db::{PathId, PathView, PerfDb, PerfObservation};
pub use predict::{predict_download, predict_voip, DownloadPrediction, VoipPrediction};
pub use sketch::LogHistogram;
