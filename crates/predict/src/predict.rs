//! The predictors: what §3.5 surfaces to applications.
//!
//! "Before an application downloads a file or makes a VoIP call or
//! launches a video stream, it would be able to obtain an indication of
//! the expected performance."
//!
//! * [`predict_download`] — expected completion-time percentiles for a
//!   transfer of a given size from the path's throughput distribution
//!   (plus a slow-start-aware startup term).
//! * [`predict_voip`] — a simplified ITU-T E-model: mean-opinion-score
//!   estimate from RTT, jitter, and loss, and the go/no-go verdict the
//!   paper imagines surfacing ("if the VoIP quality is expected to be
//!   poor, the user might hold off").

use serde::{Deserialize, Serialize};

use crate::db::PathView;

/// Download-time prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownloadPrediction {
    /// Median expected completion time, seconds.
    pub p50_secs: f64,
    /// 95th-percentile (pessimistic) completion time, seconds.
    pub p95_secs: f64,
    /// Throughput the median is based on, Mbit/s.
    pub p50_throughput_mbps: f64,
    /// Observations behind the estimate.
    pub samples: u64,
}

/// Predict the completion time of a `bytes`-sized download.
///
/// Completion time = startup (≈ 2 RTTs of handshake + slow start ramp,
/// approximated as `3 × RTT`) + transfer at the distribution's throughput.
/// The pessimistic bound uses the *5th percentile* throughput (slow tail)
/// and 95th-percentile RTT.
pub fn predict_download(view: &PathView, bytes: u64) -> Option<DownloadPrediction> {
    let p50_tput = view.throughput.quantile(0.5)?;
    let slow_tput = view.throughput.quantile(0.05)?.max(1e-3);
    let p50_rtt = view.rtt.quantile(0.5)?;
    let p95_rtt = view.rtt.quantile(0.95)?;
    let bits = bytes as f64 * 8.0;
    let startup = 3.0;
    Some(DownloadPrediction {
        p50_secs: startup * p50_rtt / 1e3 + bits / (p50_tput * 1e6),
        p95_secs: startup * p95_rtt / 1e3 + bits / (slow_tput * 1e6),
        p50_throughput_mbps: p50_tput,
        samples: view.count,
    })
}

/// VoIP quality prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoipPrediction {
    /// Estimated mean opinion score, 1.0–4.5.
    pub mos: f64,
    /// The E-model R-factor behind it, 0–100.
    pub r_factor: f64,
    /// Effective one-way delay used (RTT/2 + jitter buffer), ms.
    pub effective_delay_ms: f64,
    /// Verdict at the conventional MOS ≥ 3.6 "acceptable" bar.
    pub acceptable: bool,
}

/// Predict VoIP call quality on a path (simplified E-model, G.711-like).
///
/// `R = 93.2 − Id(delay) − Ie(loss)` with the standard delay knee at
/// 177.3 ms and a logarithmic loss impairment; MOS via the ITU mapping.
pub fn predict_voip(view: &PathView) -> Option<VoipPrediction> {
    let rtt = view.rtt.quantile(0.5)?;
    // Jitter buffer sized at p95 jitter (what §3.2's informed adaptation
    // would configure).
    let jitter_buffer = view.jitter.quantile(0.95).unwrap_or(0.0);
    let one_way = rtt / 2.0 + jitter_buffer;
    let loss_pct = view.mean_loss * 100.0;

    // Delay impairment Id.
    let id = 0.024 * one_way
        + if one_way > 177.3 {
            0.11 * (one_way - 177.3)
        } else {
            0.0
        };
    // Effective equipment impairment Ie-eff (G.107): for G.711, Ie = 0 and
    // packet-loss robustness Bpl = 4.3 under random loss.
    const BPL: f64 = 4.3;
    let ie = 95.0 * loss_pct / (loss_pct + BPL);
    let r = (93.2 - id - ie).clamp(0.0, 100.0);
    let mos = r_to_mos(r);
    Some(VoipPrediction {
        mos,
        r_factor: r,
        effective_delay_ms: one_way,
        acceptable: mos >= 3.6,
    })
}

/// ITU-T G.107 R-factor → MOS mapping.
fn r_to_mos(r: f64) -> f64 {
    if r <= 0.0 {
        return 1.0;
    }
    if r >= 100.0 {
        return 4.5;
    }
    // The raw polynomial dips slightly below 1.0 for tiny R; clamp to the
    // MOS scale.
    (1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6).clamp(1.0, 4.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{PathId, PerfDb, PerfObservation};

    fn view_with(tput: f64, rtt: f64, loss: f64, jitter: f64, n: usize) -> PathView {
        let mut db = PerfDb::new(u64::MAX);
        for _ in 0..n {
            db.record(
                PathId(1),
                0,
                &PerfObservation {
                    throughput_mbps: tput,
                    rtt_ms: rtt,
                    loss,
                    jitter_ms: jitter,
                },
            );
        }
        db.view(PathId(1), 0).unwrap()
    }

    #[test]
    fn download_time_scales_with_size_and_speed() {
        let v = view_with(8.0, 100.0, 0.0, 2.0, 50);
        let small = predict_download(&v, 1_000_000).unwrap();
        let large = predict_download(&v, 10_000_000).unwrap();
        assert!(large.p50_secs > small.p50_secs * 5.0);
        // 10 MB at 8 Mbit/s ≈ 10 s + 0.3 s startup.
        assert!((large.p50_secs - 10.3).abs() < 1.0, "{}", large.p50_secs);
        assert!(large.p95_secs >= large.p50_secs);

        let fast = view_with(80.0, 100.0, 0.0, 2.0, 50);
        let quick = predict_download(&fast, 10_000_000).unwrap();
        assert!(quick.p50_secs < large.p50_secs / 5.0);
    }

    #[test]
    fn good_path_gets_good_mos() {
        let v = view_with(10.0, 60.0, 0.0, 2.0, 50);
        let p = predict_voip(&v).unwrap();
        assert!(p.mos > 4.0, "mos {}", p.mos);
        assert!(p.acceptable);
    }

    #[test]
    fn lossy_path_degrades_mos() {
        let clean = predict_voip(&view_with(10.0, 60.0, 0.0, 2.0, 50)).unwrap();
        let lossy = predict_voip(&view_with(10.0, 60.0, 0.05, 2.0, 50)).unwrap();
        assert!(
            lossy.mos < clean.mos - 0.5,
            "{} vs {}",
            lossy.mos,
            clean.mos
        );
        assert!(!lossy.acceptable);
    }

    #[test]
    fn long_delay_degrades_mos() {
        let near = predict_voip(&view_with(10.0, 60.0, 0.0, 2.0, 50)).unwrap();
        let far = predict_voip(&view_with(10.0, 600.0, 0.0, 40.0, 50)).unwrap();
        assert!(far.mos < near.mos - 0.5);
        assert!(far.effective_delay_ms > near.effective_delay_ms);
    }

    #[test]
    fn mos_mapping_monotone_in_usable_range_and_bounded() {
        // The ITU polynomial dips slightly below R ≈ 22 (a known property
        // of the G.107 mapping); the usable range is monotone.
        for r in 0..=100 {
            let mos = r_to_mos(f64::from(r));
            assert!((1.0..=4.5).contains(&mos), "R={r} -> {mos}");
        }
        let mut last = r_to_mos(25.0);
        for r in 26..=100 {
            let mos = r_to_mos(f64::from(r));
            assert!(mos >= last - 1e-9, "not monotone at R={r}");
            last = mos;
        }
        assert_eq!(r_to_mos(-5.0), 1.0);
        assert_eq!(r_to_mos(150.0), 4.5);
    }
}
