//! Property-based invariants of the quantile sketch and predictors.

use proptest::prelude::*;

use phi_predict::{predict_download, predict_voip, LogHistogram, PathId, PerfDb, PerfObservation};

proptest! {
    /// Quantiles of the log histogram stay within the configured relative
    /// error of the exact quantiles for arbitrary sample sets.
    #[test]
    fn sketch_quantile_error_bounded(
        mut xs in proptest::collection::vec(1.0f64..99_000.0, 10..400),
        q in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new(1.0, 100_000.0, 0.05);
        for &x in &xs {
            h.record(x);
        }
        xs.sort_by(f64::total_cmp);
        let rank = (q * (xs.len() as f64 - 1.0)).round() as usize;
        let exact = xs[rank];
        let got = h.quantile(q).unwrap();
        prop_assert!(
            (got - exact).abs() / exact < 0.12,
            "q={q}: got {got}, exact {exact}"
        );
    }

    #[test]
    fn sketch_quantiles_monotone_in_q(xs in proptest::collection::vec(0.5f64..50_000.0, 1..200)) {
        let mut h = LogHistogram::for_latency_ms();
        for &x in &xs {
            h.record(x);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last, "quantiles must be monotone");
            last = v;
        }
    }

    #[test]
    fn predictions_are_finite_and_ordered(
        tput in 0.01f64..1000.0,
        rtt in 1.0f64..2000.0,
        loss in 0.0f64..0.5,
        jitter in 0.0f64..500.0,
        bytes in 1u64..1_000_000_000,
    ) {
        let mut db = PerfDb::new(u64::MAX);
        for _ in 0..20 {
            db.record(PathId(1), 0, &PerfObservation {
                throughput_mbps: tput,
                rtt_ms: rtt,
                loss,
                jitter_ms: jitter,
            });
        }
        let view = db.view(PathId(1), 0).unwrap();
        let d = predict_download(&view, bytes).unwrap();
        prop_assert!(d.p50_secs.is_finite() && d.p50_secs > 0.0);
        prop_assert!(d.p95_secs >= d.p50_secs * 0.99);
        let v = predict_voip(&view).unwrap();
        prop_assert!((1.0..=4.5).contains(&v.mos));
        prop_assert!(v.r_factor.is_finite());
    }

    /// More loss never raises the predicted MOS (all else fixed).
    #[test]
    fn voip_mos_monotone_in_loss(
        rtt in 10.0f64..500.0,
        loss_lo in 0.0f64..0.2,
        extra in 0.01f64..0.3,
    ) {
        let mk = |loss: f64| {
            let mut db = PerfDb::new(u64::MAX);
            for _ in 0..10 {
                db.record(PathId(1), 0, &PerfObservation {
                    throughput_mbps: 10.0,
                    rtt_ms: rtt,
                    loss,
                    jitter_ms: 2.0,
                });
            }
            let view = db.view(PathId(1), 0).unwrap();
            predict_voip(&view).unwrap().mos
        };
        prop_assert!(mk(loss_lo + extra) <= mk(loss_lo) + 1e-9);
    }
}
