//! # phi-remy — learned congestion control (TCP ex Machina) with Phi's
//! shared-context extension
//!
//! A compact but structurally faithful Remy: controllers are rule tables
//! ([`whisker::WhiskerTree`]) over a normalized memory of congestion
//! signals ([`memory::Memory`]), learned offline by simulate-and-improve
//! search ([`trainer::Trainer`]).
//!
//! The Phi extension (§2.2.4 of the five-computers paper) adds a fourth
//! memory dimension — the shared bottleneck utilization `u` — fed either
//! live from an oracle (Remy-Phi-ideal) or frozen at connection start via
//! the context store (Remy-Phi-practical); see [`provision::UtilFeed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod memory;
pub mod provision;
pub mod trainer;
pub mod whisker;

pub use controller::{RemyCc, UsageTally};
pub use memory::{Memory, MemoryBounds, MemoryTracker, DIMS};
pub use provision::{provision_remy, provision_remy_owned, UtilFeed};
pub use trainer::{run_objective, Trainer, TrainerConfig};
pub use whisker::{Action, Cube, Whisker, WhiskerTree};
