//! Remy's offline trainer, simplified but structurally faithful.
//!
//! *TCP ex Machina*'s search alternates two moves over simulated
//! scenarios:
//!
//! 1. **Action optimization** — take the most-used whisker and hill-climb
//!    its action over single-coordinate perturbations, re-simulating each
//!    candidate, while the objective (mean over senders of
//!    `log throughput − log delay`, i.e. `log P`) improves.
//! 2. **Structure growth** — when no perturbation helps, *split* the
//!    most-used whisker so the policy can specialize, and continue.
//!
//! Training runs over one or more [`phi_core::ExperimentSpec`] scenarios;
//! the objective is averaged across them. For Remy-Phi, training runs with
//! the same utilization feed the deployment will use — per the paper,
//! "during training, we allow each sender access to up-to-the-minute link
//! utilization".

use std::sync::Arc;

use phi_core::harness::{run_experiment, ExperimentSpec, RunResult};
use phi_core::power::log_power;
use phi_core::runpool::RunPool;
use serde::{Deserialize, Serialize};

use crate::controller::UsageTally;
use crate::provision::{provision_remy, UtilFeed};
use crate::whisker::WhiskerTree;

/// Trainer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Scenarios to average the objective over.
    pub scenarios: Vec<ExperimentSpec>,
    /// Utilization feed used during training (and deployment).
    pub feed: UtilFeed,
    /// Maximum whiskers in the learned tree.
    pub max_whiskers: usize,
    /// Maximum improvement rounds (each = optimize-or-split).
    pub max_rounds: usize,
    /// Hill-climb steps per optimization round.
    pub climb_steps: usize,
}

impl TrainerConfig {
    /// A small training budget suitable for tests and quick benches.
    pub fn quick(scenario: ExperimentSpec, feed: UtilFeed) -> Self {
        TrainerConfig {
            scenarios: vec![scenario],
            feed,
            max_whiskers: 4,
            max_rounds: 10,
            climb_steps: 3,
        }
    }

    /// The budget used for the Table 3 reproduction.
    pub fn table3(scenarios: Vec<ExperimentSpec>, feed: UtilFeed) -> Self {
        TrainerConfig {
            scenarios,
            feed,
            max_whiskers: 16,
            max_rounds: 20,
            climb_steps: 3,
        }
    }
}

/// One evaluation's outcome.
#[derive(Debug, Clone)]
struct Eval {
    objective: f64,
    usage: Vec<u64>,
}

/// Per-sender Remy objective for one run: mean over senders of
/// `log(throughput) − log(delay)`, throughput in Mbit/s and delay the
/// sender's mean RTT in ms — `log(P)` exactly as the papers use it.
pub fn run_objective(result: &RunResult) -> f64 {
    let mut total = 0.0;
    let mut senders = 0usize;
    for reports in &result.per_sender {
        if reports.is_empty() {
            // A sender that completed nothing is heavily penalized: use a
            // tiny throughput at the base RTT.
            total += log_power(1e-3, result.base_rtt_ms);
            senders += 1;
            continue;
        }
        let mut tput = 0.0;
        let mut delay = 0.0;
        let mut n = 0.0;
        for r in reports {
            tput += r.throughput_bps() / 1e6;
            delay += if r.rtt_samples > 0 {
                r.mean_rtt_ms
            } else {
                result.base_rtt_ms
            };
            n += 1.0;
        }
        total += log_power(tput / n, delay / n);
        senders += 1;
    }
    if senders == 0 {
        f64::NEG_INFINITY
    } else {
        total / senders as f64
    }
}

/// The trainer.
pub struct Trainer {
    cfg: TrainerConfig,
    pool: RunPool,
    /// (round, objective, whisker count) log of accepted improvements.
    pub history: Vec<(usize, f64, usize)>,
}

impl Trainer {
    /// A trainer with the given configuration, evaluating candidates on
    /// the [`RunPool::from_env`] pool (`PHI_JOBS` workers).
    pub fn new(cfg: TrainerConfig) -> Self {
        Trainer::with_pool(cfg, RunPool::from_env())
    }

    /// A trainer evaluating candidates on an explicit pool. The learned
    /// tree is identical for any worker count: candidate evaluations are
    /// independent deterministic simulations, and ties between equal
    /// objectives resolve in candidate order either way.
    pub fn with_pool(cfg: TrainerConfig, pool: RunPool) -> Self {
        assert!(!cfg.scenarios.is_empty(), "need at least one scenario");
        Trainer {
            cfg,
            pool,
            history: Vec::new(),
        }
    }

    fn evaluate(&self, tree: &WhiskerTree) -> Eval {
        let tree = Arc::new(tree.clone());
        let tally = UsageTally::for_tree(&tree);
        let mut objective = 0.0;
        for scenario in &self.cfg.scenarios {
            let result = run_experiment(
                scenario,
                provision_remy(tree.clone(), self.cfg.feed, Some(tally.clone())),
            );
            objective += run_objective(&result);
        }
        Eval {
            objective: objective / self.cfg.scenarios.len() as f64,
            usage: tally.counts(),
        }
    }

    /// Run the search and return the learned tree with its final objective.
    pub fn train(&mut self, start: WhiskerTree) -> (WhiskerTree, f64) {
        let mut tree = start;
        let mut eval = self.evaluate(&tree);
        self.history.push((0, eval.objective, tree.len()));

        for round in 1..=self.cfg.max_rounds {
            let Some(target) = most_used(&eval.usage) else {
                break; // nothing ran at all
            };

            // Hill-climb the target whisker's action. All candidate
            // perturbations are evaluated concurrently — they are
            // independent simulations — and the winner is picked by a
            // serial scan in candidate order, so the accepted action is
            // exactly what the sequential loop would have chosen.
            let mut improved_any = false;
            for _ in 0..self.cfg.climb_steps {
                let current = tree.whiskers()[target].action;
                let cands = current.neighbors();
                let evals = self.pool.run(cands.len(), |ci| {
                    let mut t = tree.clone();
                    t.set_action(target, cands[ci]);
                    self.evaluate(&t)
                });
                let mut best = eval.objective;
                let mut best_action = None;
                for (&cand, e) in cands.iter().zip(evals) {
                    if e.objective > best {
                        best = e.objective;
                        best_action = Some((cand, e));
                    }
                }
                match best_action {
                    Some((action, e)) => {
                        tree.set_action(target, action);
                        eval = e;
                        improved_any = true;
                        self.history.push((round, eval.objective, tree.len()));
                    }
                    None => break,
                }
            }

            // No action improvement: grow structure instead.
            if !improved_any {
                if tree.len() >= self.cfg.max_whiskers {
                    break;
                }
                tree.split(target);
                eval = self.evaluate(&tree);
                self.history.push((round, eval.objective, tree.len()));
            }
        }
        (tree, eval.objective)
    }
}

fn most_used(usage: &[u64]) -> Option<usize> {
    let (idx, &max) = usage.iter().enumerate().max_by_key(|(_, &v)| v)?;
    (max > 0).then_some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_sim::time::Dur;
    use phi_workload::OnOffConfig;

    fn tiny_scenario() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            3,
            OnOffConfig {
                mean_on_bytes: 150_000.0,
                mean_off_secs: 0.4,
                deterministic: false,
            },
            Dur::from_secs(10),
            11,
        );
        spec.dumbbell.bottleneck_bps = 8_000_000;
        spec.dumbbell.rtt = Dur::from_millis(80);
        spec
    }

    #[test]
    fn training_never_regresses_the_objective() {
        let mut trainer = Trainer::new(TrainerConfig {
            scenarios: vec![tiny_scenario()],
            feed: UtilFeed::None,
            max_whiskers: 2,
            max_rounds: 2,
            climb_steps: 1,
        });
        let (tree, final_obj) = trainer.train(WhiskerTree::initial());
        assert!(tree.len() <= 2);
        let first = trainer.history.first().expect("history").1;
        assert!(
            final_obj >= first - 1e-12,
            "objective regressed: {first} -> {final_obj}"
        );
        // History objectives from accepted action improvements are
        // monotone (splits re-evaluate but keep the same actions, so they
        // hold the objective as well).
        for w in trainer.history.windows(2) {
            if w[1].2 == w[0].2 {
                assert!(w[1].1 >= w[0].1 - 1e-12, "accepted a regression");
            }
        }
    }

    #[test]
    fn training_result_is_worker_count_invariant() {
        let cfg = TrainerConfig {
            scenarios: vec![tiny_scenario()],
            feed: UtilFeed::None,
            max_whiskers: 3,
            max_rounds: 2,
            climb_steps: 1,
        };
        let (tree_serial, obj_serial) =
            Trainer::with_pool(cfg.clone(), RunPool::serial()).train(WhiskerTree::initial());
        let (tree_parallel, obj_parallel) =
            Trainer::with_pool(cfg, RunPool::new(4)).train(WhiskerTree::initial());
        assert_eq!(tree_serial, tree_parallel, "search took a different path");
        assert_eq!(obj_serial.to_bits(), obj_parallel.to_bits());
    }

    #[test]
    fn objective_prefers_faster_lower_delay_runs() {
        use phi_core::harness::provision_cubic;
        use phi_tcp::cubic::CubicParams;
        let spec = tiny_scenario();
        let good = run_experiment(&spec, provision_cubic(CubicParams::tuned(16.0, 32.0, 0.2)));
        let bad = run_experiment(&spec, provision_cubic(CubicParams::tuned(2.0, 2.0, 0.9)));
        assert!(run_objective(&good) > run_objective(&bad));
    }

    #[test]
    fn most_used_handles_empty_and_zero() {
        assert_eq!(most_used(&[]), None);
        assert_eq!(most_used(&[0, 0]), None);
        assert_eq!(most_used(&[1, 5, 3]), Some(1));
    }
}
