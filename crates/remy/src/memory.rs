//! The controller's "memory": the congestion signals Remy conditions on.
//!
//! Following *TCP ex Machina* (Winstein & Balakrishnan, SIGCOMM '13), a
//! Remy sender summarizes its observations into a small feature vector,
//! updated on every ACK:
//!
//! * `ack_ewma` — EWMA of the interarrival time between ACKs,
//! * `send_ewma` — EWMA of the interarrival time between the *send* times
//!   of the packets being acknowledged (echoed timestamps),
//! * `rtt_ratio` — the latest RTT over the connection minimum.
//!
//! Phi's extension (§2.2.4 of the five-computers paper) adds a fourth
//! dimension: the **shared bottleneck utilization** `u`, delivered either
//! live (ideal) or frozen at connection start (practical). A plain Remy
//! sender has no feed and sees `u = 0`, so trained rules that condition on
//! `u` simply never fire for it.

use phi_sim::time::Time;
use phi_tcp::cc::AckEvent;
use serde::{Deserialize, Serialize};

/// Number of memory dimensions (ack EWMA, send EWMA, RTT ratio, shared u).
pub const DIMS: usize = 4;

/// Normalization bounds for each dimension (raw value mapped to [0, 1]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBounds {
    /// Max ACK interarrival considered, ms.
    pub ack_ewma_ms: f64,
    /// Max send interarrival considered, ms.
    pub send_ewma_ms: f64,
    /// Max RTT ratio considered.
    pub rtt_ratio: f64,
}

impl Default for MemoryBounds {
    fn default() -> Self {
        MemoryBounds {
            ack_ewma_ms: 400.0,
            send_ewma_ms: 400.0,
            rtt_ratio: 4.0,
        }
    }
}

/// The feature vector, in raw units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Memory {
    /// EWMA of ACK interarrival, ms.
    pub ack_ewma_ms: f64,
    /// EWMA of acked-send interarrival, ms.
    pub send_ewma_ms: f64,
    /// Latest RTT / min RTT.
    pub rtt_ratio: f64,
    /// Shared bottleneck utilization in [0, 1] (0 without a feed).
    pub util: f64,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            ack_ewma_ms: 0.0,
            send_ewma_ms: 0.0,
            rtt_ratio: 1.0,
            util: 0.0,
        }
    }
}

impl Memory {
    /// Normalize to the unit hypercube under `bounds` (clamped).
    pub fn normalized(&self, bounds: &MemoryBounds) -> [f64; DIMS] {
        [
            (self.ack_ewma_ms / bounds.ack_ewma_ms).clamp(0.0, 1.0),
            (self.send_ewma_ms / bounds.send_ewma_ms).clamp(0.0, 1.0),
            // rtt_ratio starts at 1; map [1, bound] → [0, 1].
            ((self.rtt_ratio - 1.0) / (bounds.rtt_ratio - 1.0)).clamp(0.0, 1.0),
            self.util.clamp(0.0, 1.0),
        ]
    }
}

/// Tracks memory across the ACK stream of one connection.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    memory: Memory,
    last_ack_at: Option<Time>,
    last_sent_at: Option<Time>,
    alpha: f64,
}

impl MemoryTracker {
    /// A fresh tracker (EWMA gain 1/8, as in Remy).
    pub fn new() -> Self {
        MemoryTracker {
            memory: Memory::default(),
            last_ack_at: None,
            last_sent_at: None,
            alpha: 0.125,
        }
    }

    /// Current memory.
    pub fn memory(&self) -> Memory {
        self.memory
    }

    /// Reset for a new connection.
    pub fn reset(&mut self) {
        *self = MemoryTracker::new();
    }

    /// Fold in one ACK.
    pub fn on_ack(&mut self, ev: &AckEvent) {
        if let Some(prev) = self.last_ack_at {
            let gap = ev.now.saturating_since(prev).as_millis_f64();
            self.memory.ack_ewma_ms += self.alpha * (gap - self.memory.ack_ewma_ms);
        }
        self.last_ack_at = Some(ev.now);

        if ev.sent_at > Time::ZERO {
            if let Some(prev) = self.last_sent_at {
                let gap = ev.sent_at.saturating_since(prev).as_millis_f64();
                self.memory.send_ewma_ms += self.alpha * (gap - self.memory.send_ewma_ms);
            }
            self.last_sent_at = Some(ev.sent_at);
        }

        if let (Some(rtt), Some(min)) = (ev.rtt, ev.min_rtt) {
            if min.as_nanos() > 0 {
                self.memory.rtt_ratio = rtt.as_millis_f64() / min.as_millis_f64();
            }
        }

        if let Some(u) = ev.shared_util {
            self.memory.util = u.clamp(0.0, 1.0);
        }
    }
}

impl Default for MemoryTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_sim::time::Dur;

    fn ack(now_ms: u64, sent_ms: u64, rtt_ms: u64, min_ms: u64, util: Option<f64>) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Some(Dur::from_millis(rtt_ms)),
            min_rtt: Some(Dur::from_millis(min_ms)),
            newly_acked: 1,
            sent_at: Time::from_millis(sent_ms),
            shared_util: util,
            ece: false,
        }
    }

    #[test]
    fn ewmas_track_interarrivals() {
        let mut t = MemoryTracker::new();
        t.on_ack(&ack(100, 10, 90, 90, None));
        // First ack: no interarrival yet.
        assert_eq!(t.memory().ack_ewma_ms, 0.0);
        t.on_ack(&ack(116, 26, 90, 90, None));
        // Gap 16 ms, alpha 1/8: ewma = 2.
        assert!((t.memory().ack_ewma_ms - 2.0).abs() < 1e-9);
        assert!((t.memory().send_ewma_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_ratio_updates() {
        let mut t = MemoryTracker::new();
        t.on_ack(&ack(100, 10, 180, 150, None));
        assert!((t.memory().rtt_ratio - 1.2).abs() < 1e-9);
        t.on_ack(&ack(200, 110, 150, 150, None));
        assert!((t.memory().rtt_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn util_only_moves_with_a_feed() {
        let mut t = MemoryTracker::new();
        t.on_ack(&ack(100, 10, 150, 150, None));
        assert_eq!(t.memory().util, 0.0);
        t.on_ack(&ack(200, 110, 150, 150, Some(0.73)));
        assert!((t.memory().util - 0.73).abs() < 1e-12);
        // Absent feed leaves the last value (frozen).
        t.on_ack(&ack(300, 210, 150, 150, None));
        assert!((t.memory().util - 0.73).abs() < 1e-12);
    }

    #[test]
    fn normalization_clamps_to_unit_cube() {
        let m = Memory {
            ack_ewma_ms: 1000.0, // above the 400 ms bound
            send_ewma_ms: 200.0,
            rtt_ratio: 2.5,
            util: 1.7,
        };
        let n = m.normalized(&MemoryBounds::default());
        assert_eq!(n[0], 1.0);
        assert!((n[1] - 0.5).abs() < 1e-12);
        assert!((n[2] - 0.5).abs() < 1e-12);
        assert_eq!(n[3], 1.0);
        for v in n {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut t = MemoryTracker::new();
        t.on_ack(&ack(100, 10, 180, 150, Some(0.5)));
        t.on_ack(&ack(120, 30, 180, 150, Some(0.5)));
        t.reset();
        let m = t.memory();
        assert_eq!(m.ack_ewma_ms, 0.0);
        assert_eq!(m.rtt_ratio, 1.0);
        assert_eq!(m.util, 0.0);
    }
}
