//! Whiskers: Remy's piecewise-constant control rules.
//!
//! A [`WhiskerTree`] partitions the normalized memory space into axis-
//! aligned boxes; each box carries an [`Action`] — window multiple,
//! window increment, and pacing intersend. Control is a lookup: normalize
//! the current memory, find the containing whisker, apply its action.
//!
//! Training refines the partition: the most-used whisker is *split* (KD
//! style, along its widest dimension) when optimizing its action stops
//! helping, letting the policy specialize where the sender actually
//! spends time — the structure-learning half of Remy's offline search.

use serde::{Deserialize, Serialize};

use crate::memory::DIMS;

/// A control action, applied on each ACK.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Window multiple `m`: `cwnd ← m · cwnd + b`.
    pub window_multiple: f64,
    /// Window increment `b`, segments.
    pub window_increment: f64,
    /// Pacing gap between sends, milliseconds.
    pub intersend_ms: f64,
}

impl Action {
    /// Remy's conventional starting action: hold the window, grow by one
    /// segment per ACK, pace gently.
    pub fn initial() -> Self {
        Action {
            window_multiple: 1.0,
            window_increment: 1.0,
            intersend_ms: 1.0,
        }
    }

    /// Clamp to the legal action box.
    pub fn clamped(self) -> Action {
        Action {
            window_multiple: self.window_multiple.clamp(0.0, 2.0),
            window_increment: self.window_increment.clamp(-10.0, 20.0),
            intersend_ms: self.intersend_ms.clamp(0.02, 50.0),
        }
    }

    /// The candidate single-coordinate perturbations the trainer explores.
    pub fn neighbors(self) -> Vec<Action> {
        let mut out = Vec::with_capacity(6);
        for delta in [-0.1, 0.1] {
            out.push(
                Action {
                    window_multiple: self.window_multiple + delta,
                    ..self
                }
                .clamped(),
            );
        }
        for delta in [-2.0, 2.0] {
            out.push(
                Action {
                    window_increment: self.window_increment + delta,
                    ..self
                }
                .clamped(),
            );
        }
        for factor in [0.5, 2.0] {
            out.push(
                Action {
                    intersend_ms: self.intersend_ms * factor,
                    ..self
                }
                .clamped(),
            );
        }
        out.retain(|a| a != &self);
        out
    }
}

/// An axis-aligned box in normalized memory space: `[lo, hi)` per dim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cube {
    /// Lower corner (inclusive).
    pub lo: [f64; DIMS],
    /// Upper corner (exclusive, except at 1.0).
    pub hi: [f64; DIMS],
}

impl Cube {
    /// The unit hypercube.
    pub fn unit() -> Self {
        Cube {
            lo: [0.0; DIMS],
            hi: [1.0; DIMS],
        }
    }

    /// Point membership (upper edge closed at exactly 1.0 so boundary
    /// points always land somewhere).
    pub fn contains(&self, p: &[f64; DIMS]) -> bool {
        (0..DIMS).all(|d| {
            p[d] >= self.lo[d] && (p[d] < self.hi[d] || (self.hi[d] >= 1.0 && p[d] <= 1.0))
        })
    }

    /// The widest dimension (first wins on ties, so splitting a fresh
    /// unit cube starts at dimension 0).
    pub fn widest_dim(&self) -> usize {
        let mut best = 0;
        for d in 1..DIMS {
            if self.hi[d] - self.lo[d] > self.hi[best] - self.lo[best] {
                best = d;
            }
        }
        best
    }

    /// Split at the midpoint of `dim` into (lower, upper) halves.
    pub fn split(&self, dim: usize) -> (Cube, Cube) {
        let mid = (self.lo[dim] + self.hi[dim]) / 2.0;
        let mut lower = *self;
        let mut upper = *self;
        lower.hi[dim] = mid;
        upper.lo[dim] = mid;
        (lower, upper)
    }
}

/// One rule: a box and the action to take inside it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Whisker {
    /// Domain of this rule.
    pub cube: Cube,
    /// Action applied while memory lies in the domain.
    pub action: Action,
}

/// The rule table: a partition of the unit memory cube.
///
/// ```
/// use phi_remy::{Action, WhiskerTree};
///
/// // Start with one rule, split on the shared-utilization dimension (3),
/// // and make the high-utilization half conservative.
/// let mut tree = WhiskerTree::initial();
/// let (_low, high) = tree.split_along(0, 3);
/// tree.set_action(high, Action {
///     window_multiple: 0.5,
///     window_increment: 0.0,
///     intersend_ms: 5.0,
/// });
///
/// let quiet = [0.1, 0.1, 0.0, 0.1]; // low shared utilization
/// let busy  = [0.1, 0.1, 0.0, 0.9]; // high shared utilization
/// assert!(tree.action_for(&quiet).window_increment > 0.0);
/// assert_eq!(tree.action_for(&busy).window_multiple, 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhiskerTree {
    whiskers: Vec<Whisker>,
}

impl WhiskerTree {
    /// A single-rule tree covering all of memory space.
    pub fn single(action: Action) -> Self {
        WhiskerTree {
            whiskers: vec![Whisker {
                cube: Cube::unit(),
                action,
            }],
        }
    }

    /// Default starting tree.
    pub fn initial() -> Self {
        WhiskerTree::single(Action::initial())
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.whiskers.len()
    }

    /// True if (impossibly) empty.
    pub fn is_empty(&self) -> bool {
        self.whiskers.is_empty()
    }

    /// The rules.
    pub fn whiskers(&self) -> &[Whisker] {
        &self.whiskers
    }

    /// Index of the whisker containing `point`.
    pub fn index_of(&self, point: &[f64; DIMS]) -> usize {
        self.whiskers
            .iter()
            .position(|w| w.cube.contains(point))
            .expect("whisker tree partitions the unit cube")
    }

    /// The action for `point`.
    pub fn action_for(&self, point: &[f64; DIMS]) -> Action {
        self.whiskers[self.index_of(point)].action
    }

    /// Replace whisker `idx`'s action.
    pub fn set_action(&mut self, idx: usize, action: Action) {
        self.whiskers[idx].action = action;
    }

    /// Split whisker `idx` along its widest dimension; both children
    /// inherit the parent's action. Returns the two child indices.
    pub fn split(&mut self, idx: usize) -> (usize, usize) {
        let dim = self.whiskers[idx].cube.widest_dim();
        self.split_along(idx, dim)
    }

    /// A human-readable rendering of the learned rules, one per line —
    /// what the trainer ships to operators alongside the serialized tree.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        const DIM_NAMES: [&str; DIMS] = ["ack_ewma", "send_ewma", "rtt_ratio", "util"];
        let mut out = String::new();
        for (i, w) in self.whiskers.iter().enumerate() {
            let mut domain = Vec::new();
            for (d, name) in DIM_NAMES.iter().enumerate() {
                if w.cube.lo[d] > 0.0 || w.cube.hi[d] < 1.0 {
                    domain.push(format!(
                        "{name} in [{:.2}, {:.2})",
                        w.cube.lo[d], w.cube.hi[d]
                    ));
                }
            }
            let domain = if domain.is_empty() {
                "always".to_string()
            } else {
                domain.join(" & ")
            };
            let _ = writeln!(
                out,
                "rule {i}: when {domain} -> cwnd = {:.2}*cwnd + {:+.1}, pace {:.2} ms",
                w.action.window_multiple, w.action.window_increment, w.action.intersend_ms
            );
        }
        out
    }

    /// Split whisker `idx` along `dim` at the midpoint.
    pub fn split_along(&mut self, idx: usize, dim: usize) -> (usize, usize) {
        let w = self.whiskers[idx];
        let (lower, upper) = w.cube.split(dim);
        self.whiskers[idx] = Whisker {
            cube: lower,
            action: w.action,
        };
        self.whiskers.push(Whisker {
            cube: upper,
            action: w.action,
        });
        (idx, self.whiskers.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cube_contains_everything() {
        let c = Cube::unit();
        assert!(c.contains(&[0.0, 0.0, 0.0, 0.0]));
        assert!(c.contains(&[1.0, 1.0, 1.0, 1.0])); // closed at the top edge
        assert!(c.contains(&[0.3, 0.7, 0.5, 0.9]));
    }

    #[test]
    fn split_partitions_without_gap_or_overlap() {
        let c = Cube::unit();
        let (a, b) = c.split(2);
        // Points on either side of the midpoint land in exactly one half.
        let below = [0.5, 0.5, 0.49, 0.5];
        let above = [0.5, 0.5, 0.51, 0.5];
        let boundary = [0.5, 0.5, 0.5, 0.5];
        assert!(a.contains(&below) && !b.contains(&below));
        assert!(!a.contains(&above) && b.contains(&above));
        assert!(!a.contains(&boundary) && b.contains(&boundary)); // half-open
    }

    #[test]
    fn tree_lookup_after_splits_total() {
        let mut t = WhiskerTree::initial();
        t.split(0);
        t.split(0);
        t.split(1);
        assert_eq!(t.len(), 4);
        // Every corner and many random-ish points must land in exactly one
        // whisker.
        let probes = [
            [0.0, 0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0, 1.0],
            [0.25, 0.75, 0.5, 0.1],
            [0.49999, 0.5, 0.99, 0.0],
            [0.5, 0.0, 1.0, 0.3],
        ];
        for p in &probes {
            let hits = t.whiskers().iter().filter(|w| w.cube.contains(p)).count();
            assert_eq!(hits, 1, "point {p:?} hit {hits} whiskers");
        }
    }

    #[test]
    fn split_children_inherit_action() {
        let mut t = WhiskerTree::single(Action {
            window_multiple: 0.7,
            window_increment: 3.0,
            intersend_ms: 2.0,
        });
        let (a, b) = t.split(0);
        assert_eq!(t.whiskers()[a].action, t.whiskers()[b].action);
        assert_eq!(t.whiskers()[a].action.window_multiple, 0.7);
    }

    #[test]
    fn set_action_targets_one_whisker() {
        let mut t = WhiskerTree::initial();
        let (a, b) = t.split_along(0, 3); // split on util
        let mut act = t.whiskers()[a].action;
        act.window_increment = -5.0;
        t.set_action(a, act);
        assert_ne!(t.whiskers()[a].action, t.whiskers()[b].action);
        // Low-util point gets the new action, high-util the old one.
        let low = [0.1, 0.1, 0.1, 0.1];
        let high = [0.1, 0.1, 0.1, 0.9];
        assert_eq!(t.action_for(&low).window_increment, -5.0);
        assert_eq!(t.action_for(&high).window_increment, 1.0);
    }

    #[test]
    fn neighbors_differ_and_respect_bounds() {
        let a = Action::initial();
        let n = a.neighbors();
        assert!(n.len() >= 5);
        assert!(n.iter().all(|x| x != &a));
        // Clamping at the edge of the action box.
        let edge = Action {
            window_multiple: 2.0,
            window_increment: 20.0,
            intersend_ms: 50.0,
        };
        for x in edge.neighbors() {
            assert!(x.window_multiple <= 2.0);
            assert!(x.window_increment <= 20.0);
            assert!(x.intersend_ms <= 50.0);
        }
    }

    #[test]
    fn describe_is_readable_and_complete() {
        let mut t = WhiskerTree::initial();
        t.split_along(0, 3);
        let text = t.describe();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("util in [0.00, 0.50)"), "{text}");
        assert!(lines[1].contains("util in [0.50, 1.00)"), "{text}");
        assert!(lines[0].contains("cwnd = 1.00*cwnd"));
    }

    #[test]
    fn widest_dim_found() {
        let mut c = Cube::unit();
        c.lo = [0.0, 0.4, 0.0, 0.9];
        c.hi = [0.3, 0.6, 1.0, 1.0];
        assert_eq!(c.widest_dim(), 2);
    }
}
