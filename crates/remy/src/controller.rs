//! The Remy congestion controller: rule-table lookup on every ACK.
//!
//! On each ACK the controller updates its [`crate::memory::Memory`], finds
//! the whisker containing the normalized memory point, and applies its
//! action: `cwnd ← m·cwnd + b` and pacing gap `r`. Loss produces no direct
//! window reaction (Remy's learned policy responds through the delay
//! features instead); a retransmission timeout collapses the window to one
//! segment, as the transport has genuinely lost its ACK clock.

use std::sync::{Arc, Mutex};

use phi_sim::time::{Dur, Time};
use phi_tcp::cc::{AckEvent, CongestionControl, LossEvent};

use crate::memory::{Memory, MemoryBounds, MemoryTracker};
use crate::whisker::WhiskerTree;

/// Per-whisker usage counts, shared across the connections of a run so the
/// trainer can see where senders spend their time.
#[derive(Debug, Default)]
pub struct UsageTally {
    counts: Mutex<Vec<u64>>,
}

impl UsageTally {
    /// A tally sized for `tree`.
    pub fn for_tree(tree: &WhiskerTree) -> Arc<UsageTally> {
        Arc::new(UsageTally {
            counts: Mutex::new(vec![0; tree.len()]),
        })
    }

    fn bump(&self, idx: usize) {
        let mut c = self.counts.lock().expect("usage tally");
        if idx >= c.len() {
            c.resize(idx + 1, 0);
        }
        c[idx] += 1;
    }

    /// Snapshot of the counts.
    pub fn counts(&self) -> Vec<u64> {
        self.counts.lock().expect("usage tally").clone()
    }

    /// Index of the most-used whisker, if any use was recorded.
    pub fn most_used(&self) -> Option<usize> {
        let c = self.counts.lock().expect("usage tally");
        let (idx, &max) = c.iter().enumerate().max_by_key(|(_, &v)| v)?;
        (max > 0).then_some(idx)
    }
}

/// Remy congestion control over a (shared, immutable) whisker tree.
pub struct RemyCc {
    tree: Arc<WhiskerTree>,
    bounds: MemoryBounds,
    tracker: MemoryTracker,
    cwnd: f64,
    intersend: Dur,
    tally: Option<Arc<UsageTally>>,
    min_window: f64,
    max_window: f64,
}

impl RemyCc {
    /// A controller over `tree`; `tally` (if given) accumulates whisker
    /// usage for the trainer.
    pub fn new(tree: Arc<WhiskerTree>, tally: Option<Arc<UsageTally>>) -> Self {
        RemyCc {
            tree,
            bounds: MemoryBounds::default(),
            tracker: MemoryTracker::new(),
            cwnd: 2.0,
            intersend: Dur::from_millis(1),
            tally,
            min_window: 1.0,
            max_window: 1024.0,
        }
    }

    /// The controller's current memory (diagnostics).
    pub fn memory(&self) -> Memory {
        self.tracker.memory()
    }
}

impl CongestionControl for RemyCc {
    fn on_flow_start(&mut self, _now: Time) {
        self.tracker.reset();
        self.cwnd = 2.0;
        self.intersend = Dur::from_millis(1);
    }

    fn window(&self) -> f64 {
        self.cwnd.max(self.min_window)
    }

    fn intersend(&self) -> Option<Dur> {
        Some(self.intersend)
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.tracker.on_ack(ev);
        let point = self.tracker.memory().normalized(&self.bounds);
        let idx = self.tree.index_of(&point);
        if let Some(t) = &self.tally {
            t.bump(idx);
        }
        let a = self.tree.whiskers()[idx].action;
        self.cwnd = (a.window_multiple * self.cwnd + a.window_increment)
            .clamp(self.min_window, self.max_window);
        self.intersend = Dur::from_secs_f64(a.intersend_ms / 1e3);
    }

    fn on_loss(&mut self, _ev: &LossEvent) {
        // Learned policy: no hard-coded reaction; the rtt_ratio and EWMA
        // features carry the congestion signal.
    }

    fn on_rto(&mut self, _now: Time) {
        self.cwnd = self.min_window;
    }

    fn name(&self) -> &'static str {
        "remy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whisker::Action;

    fn ack(now_ms: u64, util: Option<f64>) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Some(Dur::from_millis(160)),
            min_rtt: Some(Dur::from_millis(150)),
            newly_acked: 1,
            sent_at: Time::from_millis(now_ms.saturating_sub(160)),
            shared_util: util,
            ece: false,
        }
    }

    #[test]
    fn action_applies_on_each_ack() {
        let tree = Arc::new(WhiskerTree::single(Action {
            window_multiple: 1.0,
            window_increment: 2.0,
            intersend_ms: 5.0,
        }));
        let mut cc = RemyCc::new(tree, None);
        cc.on_flow_start(Time::ZERO);
        assert_eq!(cc.window(), 2.0);
        cc.on_ack(&ack(100, None));
        assert_eq!(cc.window(), 4.0);
        cc.on_ack(&ack(200, None));
        assert_eq!(cc.window(), 6.0);
        assert_eq!(cc.intersend(), Some(Dur::from_millis(5)));
    }

    #[test]
    fn window_clamped_to_bounds() {
        let tree = Arc::new(WhiskerTree::single(Action {
            window_multiple: 0.0,
            window_increment: -10.0,
            intersend_ms: 1.0,
        }));
        let mut cc = RemyCc::new(tree, None);
        cc.on_flow_start(Time::ZERO);
        cc.on_ack(&ack(100, None));
        assert_eq!(cc.window(), 1.0); // floor

        let tree = Arc::new(WhiskerTree::single(Action {
            window_multiple: 2.0,
            window_increment: 20.0,
            intersend_ms: 1.0,
        }));
        let mut cc = RemyCc::new(tree, None);
        cc.on_flow_start(Time::ZERO);
        for i in 1..100 {
            cc.on_ack(&ack(i * 10, None));
        }
        assert_eq!(cc.window(), 1024.0); // ceiling
    }

    #[test]
    fn util_dimension_can_switch_rules() {
        // Two-rule tree split on the util dimension: low-util grows the
        // window, high-util shrinks it — the shape Remy-Phi learns.
        let mut tree = WhiskerTree::single(Action {
            window_multiple: 1.0,
            window_increment: 4.0,
            intersend_ms: 1.0,
        });
        let (_low, high) = tree.split_along(0, 3);
        tree.set_action(
            high,
            Action {
                window_multiple: 0.5,
                window_increment: 0.0,
                intersend_ms: 1.0,
            },
        );
        let tree = Arc::new(tree);
        let mut quiet = RemyCc::new(tree.clone(), None);
        let mut busy = RemyCc::new(tree, None);
        quiet.on_flow_start(Time::ZERO);
        busy.on_flow_start(Time::ZERO);
        for i in 1..=5 {
            quiet.on_ack(&ack(i * 100, Some(0.1)));
            busy.on_ack(&ack(i * 100, Some(0.9)));
        }
        assert!(quiet.window() > busy.window());
        assert_eq!(busy.window(), 1.0);
    }

    #[test]
    fn tally_accumulates_across_controllers() {
        let tree = Arc::new(WhiskerTree::initial());
        let tally = UsageTally::for_tree(&tree);
        let mut a = RemyCc::new(tree.clone(), Some(tally.clone()));
        let mut b = RemyCc::new(tree.clone(), Some(tally.clone()));
        a.on_flow_start(Time::ZERO);
        b.on_flow_start(Time::ZERO);
        a.on_ack(&ack(100, None));
        b.on_ack(&ack(100, None));
        b.on_ack(&ack(200, None));
        assert_eq!(tally.counts().iter().sum::<u64>(), 3);
        assert_eq!(tally.most_used(), Some(0));
    }

    #[test]
    fn rto_collapses_window_loss_does_not() {
        let tree = Arc::new(WhiskerTree::single(Action {
            window_multiple: 1.0,
            window_increment: 3.0,
            intersend_ms: 1.0,
        }));
        let mut cc = RemyCc::new(tree, None);
        cc.on_flow_start(Time::ZERO);
        cc.on_ack(&ack(100, None));
        let w = cc.window();
        cc.on_loss(&LossEvent {
            now: Time::from_millis(150),
        });
        assert_eq!(cc.window(), w);
        cc.on_rto(Time::from_millis(300));
        assert_eq!(cc.window(), 1.0);
    }

    #[test]
    fn flow_start_resets_memory_and_window() {
        let tree = Arc::new(WhiskerTree::initial());
        let mut cc = RemyCc::new(tree, None);
        cc.on_flow_start(Time::ZERO);
        cc.on_ack(&ack(100, Some(0.9)));
        cc.on_ack(&ack(130, Some(0.9)));
        cc.on_flow_start(Time::from_secs(5));
        assert_eq!(cc.window(), 2.0);
        assert_eq!(cc.memory().util, 0.0);
    }
}
