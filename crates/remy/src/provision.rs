//! Plugging Remy senders into the `phi-core` experiment harness.
//!
//! The three evaluation arms of Table 3 differ only in their utilization
//! feed:
//!
//! * [`UtilFeed::None`] — plain Remy: no shared information, `u` stays 0.
//! * [`UtilFeed::Ideal`] — Remy-Phi-ideal: every ACK carries the
//!   bottleneck's rolling utilization from the simulator oracle.
//! * [`UtilFeed::Practical`] — Remy-Phi-practical: `u` is fetched from the
//!   context store at connection start and frozen until the next flow
//!   (§2.2.2's lookup/report discipline).

use std::sync::Arc;

use phi_core::harness::{ProvisionCtx, Provisioned};
use phi_core::hooks::{IdealOracleHook, PracticalHook};
use phi_tcp::hook::NoHook;
use serde::{Deserialize, Serialize};

use crate::controller::{RemyCc, UsageTally};
use crate::whisker::WhiskerTree;

/// How senders obtain the shared utilization signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UtilFeed {
    /// No sharing (plain Remy).
    None,
    /// Live oracle from the bottleneck link (Remy-Phi-ideal).
    Ideal,
    /// Context-store lookup at flow start (Remy-Phi-practical).
    Practical,
}

/// Provision every sender as a Remy sender over `tree` with the given
/// feed. If `tally` is supplied, whisker usage is accumulated there (the
/// trainer's signal for what to optimize next).
pub fn provision_remy(
    tree: Arc<WhiskerTree>,
    feed: UtilFeed,
    tally: Option<Arc<UsageTally>>,
) -> impl FnMut(ProvisionCtx<'_>) -> Provisioned {
    move |ctx| {
        let tree = tree.clone();
        let tally = tally.clone();
        let hook: Box<dyn phi_tcp::hook::SessionHook> = match feed {
            UtilFeed::None => Box::new(NoHook),
            UtilFeed::Ideal => {
                let rate = ctx.net.topology.link(ctx.net.bottleneck).rate_bps;
                Box::new(IdealOracleHook::new(
                    ctx.net.bottleneck,
                    rate,
                    ctx.net.senders.len() as u32,
                ))
            }
            UtilFeed::Practical => Box::new(PracticalHook::new(ctx.store.clone(), ctx.path)),
        };
        Provisioned {
            factory: Box::new(move |_| Box::new(RemyCc::new(tree.clone(), tally.clone()))),
            hook,
        }
    }
}

/// Thread-safe variant of [`provision_remy`] for parallel repeated runs
/// ([`phi_core::harness::run_repeated`] fans runs across worker threads,
/// so its provisioner must be `Sync` — an `Rc`-holding closure would not be).
///
/// Owns the tree and materializes a per-sender `Arc` inside the worker
/// thread; whisker trees are at most a few dozen rules, so the clone per
/// sender is noise next to the simulation itself. Usage tallies are
/// inherently per-run state and are not supported here — the trainer,
/// which needs them, shares one tree per evaluation via [`provision_remy`].
pub fn provision_remy_owned(
    tree: WhiskerTree,
    feed: UtilFeed,
) -> impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync {
    move |ctx| {
        let mut provision = provision_remy(Arc::new(tree.clone()), feed, None);
        provision(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_core::harness::{run_experiment, ExperimentSpec};
    use phi_sim::time::Dur;
    use phi_workload::OnOffConfig;

    fn quick_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            4,
            OnOffConfig {
                mean_on_bytes: 200_000.0,
                mean_off_secs: 0.5,
                deterministic: false,
            },
            Dur::from_secs(15),
            5,
        );
        spec.dumbbell.bottleneck_bps = 10_000_000;
        spec.dumbbell.rtt = Dur::from_millis(100);
        spec
    }

    #[test]
    fn remy_senders_complete_flows() {
        let spec = quick_spec();
        let tree = Arc::new(WhiskerTree::initial());
        let r = run_experiment(&spec, provision_remy(tree, UtilFeed::None, None));
        assert!(r.metrics.flows_completed > 5, "{:?}", r.metrics);
        assert!(r.metrics.throughput_mbps > 0.1);
    }

    #[test]
    fn ideal_feed_reaches_controllers() {
        // With an ideal feed and a tree split on util, usage must appear in
        // whiskers that only a non-zero util can reach.
        let spec = quick_spec();
        let mut tree = WhiskerTree::initial();
        let (_low, _high) = tree.split_along(0, 3);
        let tree = Arc::new(tree);
        let tally = UsageTally::for_tree(&tree);
        let _ = run_experiment(
            &spec,
            provision_remy(tree.clone(), UtilFeed::Ideal, Some(tally.clone())),
        );
        let counts = tally.counts();
        assert_eq!(counts.len(), 2);
        assert!(
            counts[1] > 0,
            "high-util whisker never used; feed not flowing ({counts:?})"
        );
    }

    #[test]
    fn no_feed_never_leaves_zero_util_whisker() {
        let spec = quick_spec();
        let mut tree = WhiskerTree::initial();
        let (_low, _high) = tree.split_along(0, 3);
        let tree = Arc::new(tree);
        let tally = UsageTally::for_tree(&tree);
        let _ = run_experiment(
            &spec,
            provision_remy(tree.clone(), UtilFeed::None, Some(tally.clone())),
        );
        let counts = tally.counts();
        assert!(counts[0] > 0);
        assert_eq!(counts[1], 0, "util stayed 0 so only whisker 0 is reachable");
    }

    #[test]
    fn practical_feed_populates_store() {
        let spec = quick_spec();
        let tree = Arc::new(WhiskerTree::initial());
        let r = run_experiment(&spec, provision_remy(tree, UtilFeed::Practical, None));
        let (lookups, reports) = r.store.traffic_counters(phi_core::DUMBBELL_PATH);
        assert!(lookups > 0 && reports > 0);
    }
}
