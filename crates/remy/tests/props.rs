//! Property-based invariants of the whisker tree: any sequence of splits
//! still partitions memory space, and actions stay inside their legal box
//! under any perturbation chain.

use proptest::prelude::*;

use phi_remy::{Action, WhiskerTree};

proptest! {
    #[test]
    fn splits_preserve_partition(
        splits in proptest::collection::vec((0usize..64, 0usize..4), 0..20),
        probes in proptest::collection::vec([0.0f64..=1.0, 0.0..=1.0, 0.0..=1.0, 0.0..=1.0], 1..50),
    ) {
        let mut tree = WhiskerTree::initial();
        for (idx, dim) in splits {
            let idx = idx % tree.len();
            tree.split_along(idx, dim);
        }
        for p in probes {
            let hits = tree
                .whiskers()
                .iter()
                .filter(|w| w.cube.contains(&p))
                .count();
            prop_assert_eq!(hits, 1, "point {:?} hit {} whiskers", p, hits);
            let idx = tree.index_of(&p);
            prop_assert!(tree.whiskers()[idx].cube.contains(&p));
        }
    }

    #[test]
    fn neighbor_chains_stay_in_action_box(steps in proptest::collection::vec(0usize..6, 0..40)) {
        let mut a = Action::initial();
        for s in steps {
            let n = a.neighbors();
            if n.is_empty() {
                break;
            }
            a = n[s % n.len()];
            prop_assert!((0.0..=2.0).contains(&a.window_multiple));
            prop_assert!((-10.0..=20.0).contains(&a.window_increment));
            prop_assert!((0.02..=50.0).contains(&a.intersend_ms));
        }
    }

    #[test]
    fn clamp_is_idempotent(
        m in -10.0f64..10.0,
        b in -100.0f64..100.0,
        r in -10.0f64..200.0,
    ) {
        let a = Action {
            window_multiple: m,
            window_increment: b,
            intersend_ms: r,
        }
        .clamped();
        prop_assert_eq!(a, a.clamped());
        prop_assert!((0.0..=2.0).contains(&a.window_multiple));
    }
}
