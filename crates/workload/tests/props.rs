//! Property-based invariants of the workload generators.

use proptest::prelude::*;

use phi_workload::{BoundedPareto, Exponential, OnOffConfig, OnOffSource, Sample, SeedRng, Zipf};

proptest! {
    #[test]
    fn exponential_samples_nonnegative(mean in 1e-6f64..1e12, seed in any::<u64>()) {
        let d = Exponential::with_mean(mean);
        let mut rng = SeedRng::new(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn pareto_samples_within_bounds(
        alpha in 0.2f64..5.0,
        lo in 1.0f64..1e6,
        scale in 1.1f64..1e4,
        seed in any::<u64>(),
    ) {
        let hi = lo * scale;
        let d = BoundedPareto::new(alpha, lo, hi);
        let mut rng = SeedRng::new(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo * 0.999 && x <= hi * 1.001, "x = {x} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn zipf_ranks_in_range(n in 1usize..5000, s in 0.1f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = SeedRng::new(seed);
        for _ in 0..100 {
            prop_assert!(z.sample_rank(&mut rng) < n);
        }
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn onoff_plans_are_sane_and_deterministic(
        mean_on in 1.0f64..1e9,
        mean_off in 0.0f64..100.0,
        deterministic in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = OnOffConfig { mean_on_bytes: mean_on, mean_off_secs: mean_off, deterministic };
        let a: Vec<_> = {
            let mut s = OnOffSource::new(cfg, SeedRng::new(seed));
            (0..30).map(|_| s.next_flow()).collect()
        };
        let b: Vec<_> = {
            let mut s = OnOffSource::new(cfg, SeedRng::new(seed));
            (0..30).map(|_| s.next_flow()).collect()
        };
        prop_assert_eq!(&a, &b);
        for p in &a {
            prop_assert!(p.bytes >= 1);
        }
    }

    #[test]
    fn forks_with_same_label_always_agree(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SeedRng::new(seed);
        let mut a = root.fork(&label);
        let mut b = root.fork(&label);
        use rand::RngCore;
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
