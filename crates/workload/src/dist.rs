//! Sampling distributions used by workload generators.
//!
//! The paper's traffic model draws on-period sizes and off-period durations
//! from exponential distributions (§2.2); the telemetry experiments need a
//! heavy-tailed (Zipf) destination popularity and Pareto-ish flow sizes.
//! All samplers are implemented from first principles (inverse transform /
//! alias-free CDF search) over a [`SeedRng`] so results are reproducible.

use serde::{Deserialize, Serialize};

use crate::rng::SeedRng;

/// A real-valued distribution that can be sampled.
pub trait Sample {
    /// Draw one sample.
    fn sample(&self, rng: &mut SeedRng) -> f64;

    /// The distribution's mean, if finite.
    fn mean(&self) -> Option<f64>;
}

/// Exponential distribution with the given mean (rate = 1/mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// An exponential with mean `mean` (> 0).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Exponential { mean }
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SeedRng) -> f64 {
        // Inverse transform; 1-u keeps the argument strictly positive.
        let u = rng.unit();
        -self.mean * (1.0 - u).ln()
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
}

/// Bounded Pareto distribution (heavy-tailed flow sizes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    /// Shape parameter alpha (> 0).
    pub alpha: f64,
    /// Lower bound (> 0).
    pub lo: f64,
    /// Upper bound (> lo).
    pub hi: f64,
}

impl BoundedPareto {
    /// A bounded Pareto on `[lo, hi]` with shape `alpha`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo, "invalid Pareto params");
        BoundedPareto { alpha, lo, hi }
    }
}

impl Sample for BoundedPareto {
    fn sample(&self, rng: &mut SeedRng) -> f64 {
        let u = rng.unit();
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        let la = l.powf(a);
        let ha = h.powf(a);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a)
    }

    fn mean(&self) -> Option<f64> {
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            // alpha = 1: mean = ln(h/l) * l*h/(h-l)
            Some((h / l).ln() * l * h / (h - l))
        } else {
            let num = l.powf(a) / (1.0 - (l / h).powf(a));
            Some(num * (a / (a - 1.0)) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0)))
        }
    }
}

/// A degenerate distribution: always the same value (useful in tests and
/// for "long-running connection" workloads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample(&self, _rng: &mut SeedRng) -> f64 {
        self.0
    }
    fn mean(&self) -> Option<f64> {
        Some(self.0)
    }
}

/// Empirical distribution: resamples from observed values (with linear
/// interpolation between order statistics), for replaying measured flow
/// sizes or RTTs through the same generator interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Build from observed samples (at least one, all finite).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        samples.sort_by(f64::total_cmp);
        Empirical { sorted: samples }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples (never: the constructor requires one).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SeedRng) -> f64 {
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        // Inverse of the empirical CDF with linear interpolation.
        let u = rng.unit() * (self.sorted.len() - 1) as f64;
        let lo = u.floor() as usize;
        let frac = u - lo as f64;
        let hi = (lo + 1).min(self.sorted.len() - 1);
        self.sorted[lo] + frac * (self.sorted[hi] - self.sorted[lo])
    }

    fn mean(&self) -> Option<f64> {
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Sampling is by binary search over the precomputed CDF: O(log n) per
/// draw, exact, and deterministic.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf over `n` ranks with exponent `s` (s = 1.0 is classic Zipf;
    /// larger `s` is more skewed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no ranks (never: the constructor requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n` (rank 0 is most popular).
    pub fn sample_rank(&self, rng: &mut SeedRng) -> usize {
        let u = rng.unit();
        // partition_point returns the first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &impl Sample, seed: u64, n: usize) -> f64 {
        let mut rng = SeedRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(500_000.0);
        let m = sample_mean(&d, 1, 50_000);
        assert!(
            (m - 500_000.0).abs() / 500_000.0 < 0.02,
            "sample mean {m} too far from 500000"
        );
    }

    #[test]
    fn exponential_is_positive_and_memoryless_shape() {
        let d = Exponential::with_mean(1.0);
        let mut rng = SeedRng::new(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        // P(X > 1) should be about e^-1 = 0.3679.
        let frac = samples.iter().filter(|&&x| x > 1.0).count() as f64 / n as f64;
        assert!((frac - 0.3679).abs() < 0.015, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_nonpositive_mean() {
        Exponential::with_mean(0.0);
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let d = BoundedPareto::new(1.2, 1_000.0, 1_000_000.0);
        let mut rng = SeedRng::new(3);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1_000.0..=1_000_000.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn bounded_pareto_mean_close_to_analytic() {
        let d = BoundedPareto::new(1.5, 10.0, 10_000.0);
        let analytic = d.mean().unwrap();
        let m = sample_mean(&d, 4, 200_000);
        assert!(
            (m - analytic).abs() / analytic < 0.05,
            "sample {m} vs analytic {analytic}"
        );
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(7.0);
        let mut rng = SeedRng::new(5);
        assert_eq!(d.sample(&mut rng), 7.0);
        assert_eq!(d.mean(), Some(7.0));
    }

    #[test]
    fn empirical_resamples_within_observed_range() {
        let d = Empirical::from_samples(vec![5.0, 1.0, 3.0, 9.0]);
        assert_eq!(d.len(), 4);
        let mut rng = SeedRng::new(8);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=9.0).contains(&x), "x = {x}");
        }
        // The resampled mean approaches the *interpolated* mean: with
        // linear interpolation between order statistics the expectation is
        // the trapezoid average ((1+3)/2 + (3+5)/2 + (5+9)/2)/3 = 13/3,
        // slightly below the arithmetic mean 4.5.
        let m = sample_mean(&d, 9, 50_000);
        assert!((m - 13.0 / 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn empirical_single_sample_is_constant() {
        let d = Empirical::from_samples(vec![7.5]);
        let mut rng = SeedRng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empirical_rejects_empty() {
        Empirical::from_samples(vec![]);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SeedRng::new(6);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
        // Classic Zipf: rank-0 frequency about 1/H_1000 = 13.4%.
        let f0 = counts[0] as f64 / 100_000.0;
        assert!((f0 - z.pmf(0)).abs() < 0.01, "f0 {f0} pmf {}", z.pmf(0));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.3);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sample_always_in_range() {
        let z = Zipf::new(3, 0.8);
        let mut rng = SeedRng::new(7);
        for _ in 0..10_000 {
            assert!(z.sample_rank(&mut rng) < 3);
        }
    }
}
