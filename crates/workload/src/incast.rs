//! Incast: the many-to-one datacenter traffic pattern.
//!
//! A fan-in of `workers` senders each transfers a fixed block
//! (`bytes_per_worker`) to one aggregator, all starting together; the
//! synchronized burst slams the aggregator's switch port and — under
//! drop-tail with loss-based congestion control — collapses into
//! retransmission timeouts (TCP incast). A round repeats after a fixed
//! barrier gap, optionally with a small per-worker jitter so rounds
//! don't phase-lock perfectly.
//!
//! Each [`IncastSource`] is one worker's view: it emits `FlowPlan`s of
//! exactly `bytes_per_worker` bytes. The *first* flow starts after only
//! the worker's jitter; later flows wait out the round gap (measured
//! from the previous flow's completion, as with the on/off model) plus
//! a fresh jitter draw. Jitter draws are keyed on `(seed, round)` via
//! [`SeedRng::fork_indexed`], so a worker's round-`k` offset never
//! depends on how other streams were consumed — reruns and
//! cross-scheme comparisons see identical arrivals.

use serde::{Deserialize, Serialize};

use crate::onoff::{FlowPlan, OnOffSource};
use crate::rng::SeedRng;

/// Configuration of a synchronized incast fan-in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncastConfig {
    /// Number of workers fanning in to the aggregator.
    pub workers: u32,
    /// Bytes each worker sends per round (one flow).
    pub bytes_per_worker: u64,
    /// Rounds each worker performs (the harness maps this to the
    /// sender's `max_flows`; the source itself keeps producing plans).
    pub rounds: u64,
    /// Barrier gap between a worker's rounds, seconds (from the previous
    /// flow's completion to the next request).
    pub round_gap_secs: f64,
    /// Maximum uniform per-flow start jitter, seconds. Zero keeps the
    /// bursts perfectly synchronized.
    pub jitter_secs: f64,
}

impl IncastConfig {
    /// A classic incast probe: `workers` senders, 64 KB blocks, ten
    /// rounds, 10 ms barrier gaps, no jitter.
    pub fn fan_in(workers: u32) -> Self {
        IncastConfig {
            workers,
            bytes_per_worker: 64 * 1024,
            rounds: 10,
            round_gap_secs: 0.01,
            jitter_secs: 0.0,
        }
    }

    /// Same fan-in with a uniform per-flow start jitter.
    pub fn with_jitter(mut self, secs: f64) -> Self {
        self.jitter_secs = secs;
        self
    }
}

/// One worker's flow plans in an incast fan-in.
#[derive(Debug)]
pub struct IncastSource {
    cfg: IncastConfig,
    rng: SeedRng,
    next_round: u64,
}

impl IncastSource {
    /// The source for one worker; `rng` should already be forked per
    /// worker (e.g. `root.fork_indexed("worker", i)`).
    pub fn new(cfg: IncastConfig, rng: SeedRng) -> Self {
        assert!(cfg.bytes_per_worker >= 1, "zero-byte incast blocks");
        IncastSource {
            cfg,
            rng,
            next_round: 0,
        }
    }

    /// The plan for this worker's next round.
    pub fn next_flow(&mut self) -> FlowPlan {
        let round = self.next_round;
        self.next_round += 1;
        let jitter_secs = if self.cfg.jitter_secs > 0.0 {
            self.rng.fork_indexed("round", round).unit() * self.cfg.jitter_secs
        } else {
            0.0
        };
        let gap_secs = if round == 0 {
            jitter_secs
        } else {
            self.cfg.round_gap_secs.max(0.0) + jitter_secs
        };
        FlowPlan {
            bytes: self.cfg.bytes_per_worker,
            off_ns: (gap_secs * 1e9).min(1.8e19) as u64,
        }
    }
}

/// Any of the crate's flow-plan generators, as one pluggable source.
///
/// Transport endpoints take `impl Into<FlowSource>`, so call sites keep
/// passing a concrete [`OnOffSource`] or [`IncastSource`] directly.
#[derive(Debug)]
pub enum FlowSource {
    /// The paper's on/off model ([`crate::onoff`]).
    OnOff(OnOffSource),
    /// A synchronized incast fan-in worker.
    Incast(IncastSource),
}

impl FlowSource {
    /// The plan for the next connection.
    pub fn next_flow(&mut self) -> FlowPlan {
        match self {
            FlowSource::OnOff(s) => s.next_flow(),
            FlowSource::Incast(s) => s.next_flow(),
        }
    }
}

impl From<OnOffSource> for FlowSource {
    fn from(s: OnOffSource) -> Self {
        FlowSource::OnOff(s)
    }
}

impl From<IncastSource> for FlowSource {
    fn from(s: IncastSource) -> Self {
        FlowSource::Incast(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_blocks_every_round() {
        let cfg = IncastConfig::fan_in(8);
        let mut s = IncastSource::new(cfg, SeedRng::new(3));
        for round in 0..20 {
            let p = s.next_flow();
            assert_eq!(p.bytes, 64 * 1024, "round {round}");
        }
    }

    #[test]
    fn no_jitter_means_perfect_synchrony() {
        let cfg = IncastConfig::fan_in(4);
        // Different per-worker seeds, identical plans: the burst is
        // synchronized by construction.
        let mut a = IncastSource::new(cfg, SeedRng::new(1).fork_indexed("worker", 0));
        let mut b = IncastSource::new(cfg, SeedRng::new(1).fork_indexed("worker", 3));
        for _ in 0..10 {
            assert_eq!(a.next_flow(), b.next_flow());
        }
        // First flow starts immediately; later rounds wait the gap.
        let mut c = IncastSource::new(cfg, SeedRng::new(7));
        assert_eq!(c.next_flow().off_ns, 0);
        assert_eq!(c.next_flow().off_ns, 10_000_000);
    }

    #[test]
    fn jitter_is_bounded_and_reproducible() {
        let cfg = IncastConfig::fan_in(4).with_jitter(0.002);
        let a: Vec<FlowPlan> = {
            let mut s = IncastSource::new(cfg, SeedRng::new(5));
            (0..50).map(|_| s.next_flow()).collect()
        };
        let b: Vec<FlowPlan> = {
            let mut s = IncastSource::new(cfg, SeedRng::new(5));
            (0..50).map(|_| s.next_flow()).collect()
        };
        assert_eq!(a, b);
        assert!(a[0].off_ns <= 2_000_000);
        for p in &a[1..] {
            assert!(p.off_ns >= 10_000_000 && p.off_ns <= 12_000_000);
        }
    }

    #[test]
    fn flow_source_dispatches_to_either_model() {
        let incast: FlowSource = IncastSource::new(IncastConfig::fan_in(2), SeedRng::new(1)).into();
        let onoff: FlowSource =
            OnOffSource::new(crate::onoff::OnOffConfig::fig2(), SeedRng::new(1)).into();
        let mut incast = incast;
        let mut onoff = onoff;
        assert_eq!(incast.next_flow().bytes, 64 * 1024);
        assert!(onoff.next_flow().bytes >= 1);
    }
}
