//! # phi-workload — deterministic workload generation
//!
//! Seeded random streams and the traffic models used across the Phi
//! reproduction:
//!
//! * [`rng::SeedRng`] — forkable ChaCha8 streams; every random choice in an
//!   experiment is addressed by a label, so runs are reproducible and
//!   insensitive to unrelated code changes.
//! * [`dist`] — exponential, bounded-Pareto, constant, and Zipf samplers
//!   implemented from first principles.
//! * [`onoff`] — the paper's on/off sender model (§2.2): exponential
//!   on-period bytes, exponential off-period gaps.
//! * [`incast`] — the synchronized many-to-one datacenter fan-in
//!   (fixed blocks, barrier rounds), plus the [`incast::FlowSource`]
//!   enum that lets transports take either model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod incast;
pub mod onoff;
pub mod rng;

pub use dist::{BoundedPareto, Constant, Empirical, Exponential, Sample, Zipf};
pub use incast::{FlowSource, IncastConfig, IncastSource};
pub use onoff::{FlowPlan, OnOffConfig, OnOffSource};
pub use rng::{fnv1a, SeedRng};
