//! The paper's on/off traffic model (§2.2).
//!
//! Each sender alternates between an *on* period — a fresh connection that
//! transfers an exponentially-distributed number of bytes — and an *off*
//! period of exponentially-distributed duration. Workload level is varied
//! by the number of senders, the mean connection length, and the mean off
//! time (e.g. Figure 2a/2b use mean 500 KB on / 2 s off).

use serde::{Deserialize, Serialize};

use crate::dist::{Constant, Exponential, Sample};
use crate::rng::SeedRng;

/// The plan for one on-period connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowPlan {
    /// Bytes to transfer in this connection (at least one segment's worth).
    pub bytes: u64,
    /// Idle gap *before* this connection starts, in nanoseconds.
    pub off_ns: u64,
}

/// Configuration of one sender's on/off process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnOffConfig {
    /// Mean bytes per on-period connection.
    pub mean_on_bytes: f64,
    /// Mean off-period duration, seconds. Zero means back-to-back flows.
    pub mean_off_secs: f64,
    /// If true, sizes/gaps are the means exactly (long-running-flow mode,
    /// used by Figure 2c); otherwise both are exponential.
    pub deterministic: bool,
}

impl OnOffConfig {
    /// The Figure 2a/2b workload: exponential, 500 KB mean on, 2 s mean off.
    pub fn fig2() -> Self {
        OnOffConfig {
            mean_on_bytes: 500_000.0,
            mean_off_secs: 2.0,
            deterministic: false,
        }
    }

    /// The Table 3 workload: exponential, 100 KB mean on, 0.5 s mean off.
    pub fn table3() -> Self {
        OnOffConfig {
            mean_on_bytes: 100_000.0,
            mean_off_secs: 0.5,
            deterministic: false,
        }
    }

    /// A single effectively-infinite connection (Figure 2c long-running
    /// flows): `bytes` is made enormous and there is no off period.
    pub fn long_running() -> Self {
        OnOffConfig {
            mean_on_bytes: 1e15,
            mean_off_secs: 0.0,
            deterministic: true,
        }
    }
}

/// Draws successive [`FlowPlan`]s for one sender.
///
/// Each flow's draws come from an independent stream forked from the
/// source's seed and keyed on the flow index
/// ([`SeedRng::fork_indexed`]`("flow", k)`), never from one shared
/// sequential stream: flow `k`'s size and gap depend only on
/// `(seed, k)`, so a change in how many draws earlier flows consumed —
/// or in the seed-derivation of any *other* stream — cannot shift them.
/// That keeps workload arrivals comparable across schemes and across
/// code changes (the same property [`SeedRng::fork`] gives experiments).
#[derive(Debug)]
pub struct OnOffSource {
    on_bytes: Dist,
    off_secs: Dist,
    rng: SeedRng,
    next_index: u64,
    /// Fraction of the mean off time used to stagger the very first start.
    initial_stagger: f64,
}

#[derive(Debug)]
enum Dist {
    Exp(Exponential),
    Const(Constant),
}

impl Dist {
    fn sample(&self, rng: &mut SeedRng) -> f64 {
        match self {
            Dist::Exp(d) => d.sample(rng),
            Dist::Const(d) => d.sample(rng),
        }
    }
}

impl OnOffSource {
    /// A source following `cfg`, drawing from `rng`.
    ///
    /// The first flow starts after a uniform stagger in `[0, mean_off]`
    /// (or in `[0, 100ms]` when there is no off period) so simultaneous
    /// senders don't phase-lock at t = 0 — ns-2 experiments use random
    /// start times for the same reason.
    pub fn new(cfg: OnOffConfig, rng: SeedRng) -> Self {
        let on_bytes = if cfg.deterministic {
            Dist::Const(Constant(cfg.mean_on_bytes))
        } else {
            Dist::Exp(Exponential::with_mean(cfg.mean_on_bytes))
        };
        let off_secs = if cfg.mean_off_secs <= 0.0 {
            Dist::Const(Constant(0.0))
        } else if cfg.deterministic {
            Dist::Const(Constant(cfg.mean_off_secs))
        } else {
            Dist::Exp(Exponential::with_mean(cfg.mean_off_secs))
        };
        let initial_stagger = rng.fork("stagger").unit();
        OnOffSource {
            on_bytes,
            off_secs,
            rng,
            next_index: 0,
            initial_stagger,
        }
    }

    /// The plan for the next connection.
    pub fn next_flow(&mut self) -> FlowPlan {
        let index = self.next_index;
        self.next_index += 1;
        let flow_rng = self.rng.fork_indexed("flow", index);
        let off_secs = if index == 0 {
            let base = match &self.off_secs {
                Dist::Exp(d) => d.mean().unwrap_or(0.0),
                Dist::Const(c) => c.0,
            };
            let window = if base > 0.0 { base } else { 0.1 };
            self.initial_stagger * window
        } else {
            self.off_secs.sample(&mut flow_rng.fork("off"))
        };
        let bytes = self.on_bytes.sample(&mut flow_rng.fork("bytes")).max(1.0);
        FlowPlan {
            bytes: bytes.min(1.8e19) as u64,
            off_ns: (off_secs * 1e9).min(1.8e19) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_source_matches_means() {
        let cfg = OnOffConfig::fig2();
        let mut src = OnOffSource::new(cfg, SeedRng::new(1));
        let n = 20_000;
        let mut bytes = 0f64;
        let mut off = 0f64;
        src.next_flow(); // skip the staggered first flow
        for _ in 0..n {
            let p = src.next_flow();
            bytes += p.bytes as f64;
            off += p.off_ns as f64 / 1e9;
        }
        let mb = bytes / n as f64;
        let mo = off / n as f64;
        assert!((mb - 500_000.0).abs() / 500_000.0 < 0.03, "mean bytes {mb}");
        assert!((mo - 2.0).abs() / 2.0 < 0.03, "mean off {mo}");
    }

    #[test]
    fn first_flow_staggered_within_mean_off() {
        for seed in 0..20 {
            let mut src = OnOffSource::new(OnOffConfig::fig2(), SeedRng::new(seed));
            let p = src.next_flow();
            assert!(p.off_ns <= 2_000_000_000, "stagger {} > mean off", p.off_ns);
        }
    }

    #[test]
    fn long_running_is_one_huge_flow() {
        let mut src = OnOffSource::new(OnOffConfig::long_running(), SeedRng::new(2));
        let p = src.next_flow();
        assert!(p.bytes > 1_000_000_000_000, "bytes {}", p.bytes);
        assert!(p.off_ns <= 100_000_000); // stagger at most 100 ms
        let p2 = src.next_flow();
        assert_eq!(p2.off_ns, 0);
    }

    #[test]
    fn deterministic_sources_reproduce() {
        let a: Vec<FlowPlan> = {
            let mut s = OnOffSource::new(OnOffConfig::table3(), SeedRng::new(9));
            (0..50).map(|_| s.next_flow()).collect()
        };
        let b: Vec<FlowPlan> = {
            let mut s = OnOffSource::new(OnOffConfig::table3(), SeedRng::new(9));
            (0..50).map(|_| s.next_flow()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn flow_draws_keyed_on_flow_id_not_draw_order() {
        // Flow k's size depends only on (seed, k). The two configs below
        // share the on-size distribution but consume different numbers of
        // off draws (exponential vs constant-zero gaps); with one shared
        // sequential stream the byte sizes would diverge from flow 1 on.
        let mut gaps = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 500_000.0,
                mean_off_secs: 2.0,
                deterministic: false,
            },
            SeedRng::new(77),
        );
        let mut back_to_back = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 500_000.0,
                mean_off_secs: 0.0,
                deterministic: false,
            },
            SeedRng::new(77),
        );
        for k in 0..50 {
            assert_eq!(
                gaps.next_flow().bytes,
                back_to_back.next_flow().bytes,
                "flow {k} size shifted with the off distribution"
            );
        }
    }

    #[test]
    fn bytes_always_at_least_one() {
        let mut src = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 1.0,
                mean_off_secs: 0.001,
                deterministic: false,
            },
            SeedRng::new(4),
        );
        for _ in 0..1000 {
            assert!(src.next_flow().bytes >= 1);
        }
    }
}
