//! Deterministic, forkable random number streams.
//!
//! Every stochastic element of an experiment draws from a [`SeedRng`]
//! derived from a single experiment seed plus a textual label (e.g.
//! `"sender/3/on-bytes"`). Forking by label means adding or removing one
//! source of randomness never perturbs the streams of the others — runs
//! stay comparable across code changes, which is what makes the paper's
//! leave-one-out analysis (Figure 3) meaningful here.
//!
//! ChaCha8 is used rather than `rand`'s `StdRng` because its output is
//! specified and stable across `rand` versions and platforms.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SeedRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SeedRng {
    /// The root stream for an experiment.
    pub fn new(seed: u64) -> Self {
        SeedRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream (or its root ancestor) was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream for `label`.
    ///
    /// Stable under insertion/removal of other forks: the child seed
    /// depends only on the parent seed and the label (FNV-1a hash), not on
    /// how much the parent stream has been consumed.
    pub fn fork(&self, label: &str) -> SeedRng {
        let child = fnv1a(self.seed, label.as_bytes());
        SeedRng {
            inner: ChaCha8Rng::seed_from_u64(child),
            seed: child,
        }
    }

    /// Derive an independent stream for an indexed entity, e.g. sender `i`.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SeedRng {
        let child = fnv1a(self.seed, label.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeedRng {
            inner: ChaCha8Rng::seed_from_u64(child),
            seed: child,
        }
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + self.unit() * (hi - lo)
    }

    /// A uniform integer draw in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// A uniform usize draw in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

impl RngCore for SeedRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Seeded FNV-1a over `bytes` — the repository's standard cheap keyed
/// hash. Used for seed derivation here and for order-free fingerprints
/// (per-flow sampler phases, run digests) elsewhere.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeedRng::new(42);
        let mut b = SeedRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let root = SeedRng::new(7);
        let fork_before = root.fork("x");
        let mut consumed = root.clone();
        for _ in 0..10 {
            consumed.next_u64();
        }
        let fork_after = consumed.fork("x");
        assert_eq!(fork_before.seed(), fork_after.seed());
    }

    #[test]
    fn fork_labels_distinguish() {
        let root = SeedRng::new(7);
        assert_ne!(root.fork("a").seed(), root.fork("b").seed());
        assert_ne!(
            root.fork_indexed("s", 0).seed(),
            root.fork_indexed("s", 1).seed()
        );
    }

    #[test]
    fn unit_in_range_and_uniformish() {
        let mut r = SeedRng::new(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let mut r = SeedRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SeedRng::new(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
