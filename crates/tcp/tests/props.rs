//! Property-based invariants of the transport: arbitrary transfers over
//! arbitrary (sane) links must complete exactly, and congestion windows
//! must respect their invariants under arbitrary event sequences.

use proptest::prelude::*;

use phi_sim::engine::Simulator;
use phi_sim::queue::Capacity;
use phi_sim::time::{Dur, Time};
use phi_sim::topology::TopologyBuilder;
use phi_tcp::cc::{AckEvent, CongestionControl, LossEvent};
use phi_tcp::cubic::{Cubic, CubicParams};
use phi_tcp::hook::NoHook;
use phi_tcp::newreno::{NewReno, NewRenoParams};
use phi_tcp::receiver::TcpReceiver;
use phi_tcp::sender::{SenderConfig, TcpSender};
use phi_workload::{OnOffConfig, OnOffSource, SeedRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any transfer over any sane single link completes with the right
    /// byte count, regardless of how lossy the queue is.
    #[test]
    fn transfers_always_complete_exactly(
        bytes in 1_000u64..400_000,
        rate_mbps in 1u64..50,
        delay_ms in 1u64..60,
        queue_pkts in 4usize..64,
        seed in 0u64..1000,
    ) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_duplex(
            a,
            z,
            rate_mbps * 1_000_000,
            Dur::from_millis(delay_ms),
            Capacity::Packets(queue_pkts),
        );
        let mut sim = Simulator::new(b.build());
        let mut cfg = SenderConfig::new(z, 80, 10);
        cfg.max_flows = Some(1);
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: bytes as f64,
                mean_off_secs: 0.0,
                deterministic: true,
            },
            SeedRng::new(seed),
        );
        let s = sim.add_agent(
            a,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        );
        let r = sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
        sim.run_until(Time::from_secs(600));

        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        prop_assert!(sender.is_done(), "transfer did not complete");
        let report = &sender.reports()[0];
        prop_assert_eq!(report.bytes, bytes);
        prop_assert!(report.end > report.start);

        // The receiver consumed every segment exactly in order.
        let recv = sim.agent_as::<TcpReceiver>(r).unwrap();
        let flow = report.flow;
        prop_assert!(recv.finished(flow));
        prop_assert_eq!(recv.progress(flow), report.segments);
    }

    /// Cubic's window never drops below one segment and ssthresh never
    /// below two, under arbitrary interleavings of acks/losses/timeouts.
    #[test]
    fn cubic_invariants_under_arbitrary_events(
        events in proptest::collection::vec(0u8..3, 1..200),
        iw in 1u32..64,
        ssthresh in 2u32..1024,
        beta_tenths in 1u32..10,
    ) {
        let mut cc = Cubic::new(CubicParams::tuned(
            f64::from(iw),
            f64::from(ssthresh),
            f64::from(beta_tenths) / 10.0,
        ));
        cc.on_flow_start(Time::ZERO);
        let mut now_ms = 0u64;
        for e in events {
            now_ms += 37;
            match e {
                0 => cc.on_ack(&AckEvent {
                    now: Time::from_millis(now_ms),
                    rtt: Some(Dur::from_millis(50)),
                    min_rtt: Some(Dur::from_millis(40)),
                    newly_acked: 3,
                    sent_at: Time::from_millis(now_ms.saturating_sub(50)),
                    shared_util: None,
                    ece: false,
                }),
                1 => cc.on_loss(&LossEvent {
                    now: Time::from_millis(now_ms),
                }),
                _ => cc.on_rto(Time::from_millis(now_ms)),
            }
            prop_assert!(cc.window() >= 1.0, "window {}", cc.window());
            prop_assert!(cc.window().is_finite());
            prop_assert!(cc.ssthresh() >= 2.0);
        }
    }

    /// NewReno: same invariants, plus decrease monotonicity on loss.
    #[test]
    fn newreno_invariants_under_arbitrary_events(
        events in proptest::collection::vec(0u8..3, 1..200),
        increase in 1u32..8,
    ) {
        let mut cc = NewReno::new(NewRenoParams {
            increase: f64::from(increase),
            ..NewRenoParams::default()
        });
        cc.on_flow_start(Time::ZERO);
        for (i, e) in events.iter().enumerate() {
            let now = Time::from_millis(i as u64 * 29);
            match e {
                0 => cc.on_ack(&AckEvent {
                    now,
                    rtt: Some(Dur::from_millis(80)),
                    min_rtt: Some(Dur::from_millis(80)),
                    newly_acked: 2,
                    sent_at: Time::ZERO,
                    shared_util: Some(0.5),
                    ece: false,
                }),
                1 => {
                    let before = cc.window();
                    cc.on_loss(&LossEvent { now });
                    // ssthresh is floored at 2 segments, so a window of 1
                    // may legitimately rise to the floor.
                    prop_assert!(cc.window() <= before.max(2.0));
                }
                _ => {
                    cc.on_rto(now);
                    prop_assert_eq!(cc.window(), 1.0);
                }
            }
            prop_assert!(cc.window() >= 1.0 && cc.window().is_finite());
        }
    }
}
