//! Surgical loss-recovery tests: exact drop scripts, exact expectations.
//!
//! The `ScriptedDrop` discipline kills precisely chosen segments, so each
//! test isolates one recovery behaviour: a single loss repaired by one
//! fast retransmit, a lost retransmission detected from the scoreboard,
//! a lost final (FIN) segment, and a multi-hole burst repaired by SACK
//! in about one round trip.

use phi_sim::engine::Simulator;
use phi_sim::packet::LinkId;
use phi_sim::queue::{Capacity, DropTail, LinkQueue, ScriptedDrop};
use phi_sim::time::{Dur, Time};
use phi_sim::topology::TopologyBuilder;
use phi_tcp::cc::FixedWindow;
use phi_tcp::cubic::{Cubic, CubicParams};
use phi_tcp::hook::NoHook;
use phi_tcp::receiver::TcpReceiver;
use phi_tcp::report::FlowReport;
use phi_tcp::sender::{SenderConfig, TcpSender};
use phi_workload::{OnOffConfig, OnOffSource, SeedRng};

/// One 50-segment transfer over a clean 10 Mbit/s / 40 ms-RTT link whose
/// forward queue drops exactly `script`. Returns the flow report.
fn run_with_script(script: &[(u64, u64, u32)], window: f64) -> FlowReport {
    let mut b = TopologyBuilder::new();
    let a = b.add_node();
    let z = b.add_node();
    b.add_duplex(
        a,
        z,
        10_000_000,
        Dur::from_millis(20),
        Capacity::Packets(10_000),
    );
    let script = script.to_vec();
    let mut sim = Simulator::with_disciplines(b.build(), move |id, spec| {
        if id == LinkId(0) {
            LinkQueue::custom(ScriptedDrop::new(DropTail::new(spec.capacity), &script))
        } else {
            LinkQueue::drop_tail(spec.capacity)
        }
    });
    let mut cfg = SenderConfig::new(z, 80, 10);
    cfg.max_flows = Some(1);
    let source = OnOffSource::new(
        OnOffConfig {
            mean_on_bytes: 50.0 * 1448.0, // exactly 50 segments
            mean_off_secs: 0.0,
            deterministic: true,
        },
        SeedRng::new(1),
    );
    let s = sim.add_agent(
        a,
        10,
        Box::new(TcpSender::new(
            cfg,
            source,
            Box::new(move |_| Box::new(FixedWindow::new(window))),
            Box::new(NoHook),
        )),
    );
    sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
    sim.run_until(Time::from_secs(120));
    let sender = sim.agent_as::<TcpSender>(s).unwrap();
    assert!(sender.is_done(), "transfer must complete");
    sender.reports()[0].clone()
}

#[test]
fn clean_run_has_no_recovery_activity() {
    let r = run_with_script(&[], 16.0);
    assert_eq!(r.retransmits, 0);
    assert_eq!(r.recoveries, 0);
    assert_eq!(r.timeouts, 0);
    assert_eq!(r.segments, 50);
}

#[test]
fn single_loss_costs_exactly_one_fast_retransmit() {
    let r = run_with_script(&[(0, 5, 1)], 16.0);
    assert_eq!(r.recoveries, 1, "one recovery episode");
    assert_eq!(r.retransmits, 1, "one retransmission, no collateral");
    assert_eq!(r.timeouts, 0, "fast retransmit must beat the RTO");
    // Cost: roughly one extra RTT over the clean run.
    let clean = run_with_script(&[], 16.0);
    let penalty = r.duration().saturating_sub(clean.duration());
    assert!(
        penalty < Dur::from_millis(150),
        "single-loss penalty too high: {penalty}"
    );
}

#[test]
fn lost_retransmission_is_repaired_without_an_rto() {
    // Drop seq 5 twice: the fast retransmit also dies. Segments SACKed
    // beyond the retransmission's send point prove the retransmission
    // itself was lost (RFC 6675 §5 / RACK-style), so the sender repairs
    // the hole again instead of stalling until the timer fires.
    let r = run_with_script(&[(0, 5, 2)], 16.0);
    assert_eq!(r.timeouts, 0, "lost retx should not need the RTO: {r:?}");
    assert_eq!(
        r.retransmits, 2,
        "seq 5 goes out three times in total: {r:?}"
    );
    assert_eq!(r.recoveries, 1, "still one loss episode: {r:?}");
}

#[test]
fn lost_final_segment_recovers_via_timeout() {
    // The last segment (49) has nothing after it: no dup ACKs are
    // possible, so only the RTO can detect the loss.
    let r = run_with_script(&[(0, 49, 1)], 16.0);
    assert!(r.timeouts >= 1, "tail loss needs the timer: {r:?}");
    assert_eq!(r.segments, 50);
}

#[test]
fn burst_of_holes_repaired_in_about_one_rtt() {
    // Five scattered losses from one window; SACK recovery should repair
    // them together, not one per RTT.
    let script: Vec<(u64, u64, u32)> = [3u64, 6, 9, 12, 15]
        .iter()
        .map(|&s| (0u64, s, 1u32))
        .collect();
    let r = run_with_script(&script, 20.0);
    assert_eq!(r.retransmits, 5);
    assert_eq!(r.timeouts, 0, "no timeout needed with SACK: {r:?}");
    let clean = run_with_script(&[], 20.0);
    let penalty = r.duration().saturating_sub(clean.duration());
    assert!(
        penalty < Dur::from_millis(200),
        "five holes should cost ~1-2 RTTs, not {penalty}"
    );
}

#[test]
fn recovery_under_cubic_backs_off_once_per_episode() {
    // Same single loss under Cubic: exactly one window reduction.
    let mut b = TopologyBuilder::new();
    let a = b.add_node();
    let z = b.add_node();
    b.add_duplex(
        a,
        z,
        10_000_000,
        Dur::from_millis(20),
        Capacity::Packets(10_000),
    );
    let mut sim = Simulator::with_disciplines(b.build(), move |id, spec| {
        if id == LinkId(0) {
            LinkQueue::custom(ScriptedDrop::new(
                DropTail::new(spec.capacity),
                &[(0, 10, 1)],
            ))
        } else {
            LinkQueue::drop_tail(spec.capacity)
        }
    });
    let mut cfg = SenderConfig::new(z, 80, 10);
    cfg.max_flows = Some(1);
    let source = OnOffSource::new(
        OnOffConfig {
            mean_on_bytes: 100.0 * 1448.0,
            mean_off_secs: 0.0,
            deterministic: true,
        },
        SeedRng::new(2),
    );
    let s = sim.add_agent(
        a,
        10,
        Box::new(TcpSender::new(
            cfg,
            source,
            Box::new(|_| Box::new(Cubic::new(CubicParams::tuned(8.0, 64.0, 0.3)))),
            Box::new(NoHook),
        )),
    );
    sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
    sim.run_until(Time::from_secs(60));
    let sender = sim.agent_as::<TcpSender>(s).unwrap();
    assert!(sender.is_done());
    let r = &sender.reports()[0];
    assert_eq!(r.recoveries, 1, "one loss, one episode: {r:?}");
    assert_eq!(r.timeouts, 0);
}

mod pacing {
    use super::*;
    use phi_sim::packet::AgentId;
    use phi_tcp::cc::{AckEvent, CongestionControl, LossEvent};

    /// A window-based controller that also paces: big window, fixed gap.
    struct Paced {
        gap: Dur,
    }
    impl CongestionControl for Paced {
        fn on_flow_start(&mut self, _now: Time) {}
        fn window(&self) -> f64 {
            1_000.0
        }
        fn intersend(&self) -> Option<Dur> {
            Some(self.gap)
        }
        fn on_ack(&mut self, _ev: &AckEvent) {}
        fn on_loss(&mut self, _ev: &LossEvent) {}
        fn on_rto(&mut self, _now: Time) {}
        fn name(&self) -> &'static str {
            "paced"
        }
    }

    fn run_paced(gap: Dur, secs: u64) -> (f64, AgentId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_duplex(
            a,
            z,
            100_000_000,
            Dur::from_millis(5),
            Capacity::Packets(100_000),
        );
        let mut sim = Simulator::new(b.build());
        let mut cfg = SenderConfig::new(z, 80, 10);
        cfg.max_flows = Some(1);
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: 1e12, // never finishes
                mean_off_secs: 0.0,
                deterministic: true,
            },
            SeedRng::new(9),
        );
        let s = sim.add_agent(
            a,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(move |_| Box::new(Paced { gap })),
                Box::new(NoHook),
            )),
        );
        sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
        sim.run_until(Time::from_secs(secs));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        let p = sender
            .partial_report(Time::from_secs(secs))
            .expect("progress");
        (p.throughput_bps() / 1e6, s)
    }

    #[test]
    fn pacing_caps_throughput_independent_of_window() {
        // 10 ms gap => ~1448 B / 10 ms = 1.16 Mbit/s goodput, despite a
        // 1000-segment window on a 100 Mbit/s link.
        let (slow, _) = run_paced(Dur::from_millis(10), 10);
        assert!(
            (slow - 1.16).abs() < 0.2,
            "10 ms pacing should yield ~1.16 Mbit/s, got {slow:.2}"
        );
        // Halving the gap doubles the rate.
        let (fast, _) = run_paced(Dur::from_millis(5), 10);
        assert!(
            (fast / slow - 2.0).abs() < 0.2,
            "5 ms pacing should double 10 ms pacing: {fast:.2} vs {slow:.2}"
        );
    }
}
