//! The session hook: where Phi plugs into the transport.
//!
//! The paper's practical design (§2.2.2) keeps context-server traffic
//! minimal: a sender **looks up** the congestion context once when a new
//! connection starts (to pick parameters) and **reports back** once when
//! the connection ends (to refresh the shared state). [`SessionHook`]
//! models exactly that interaction, plus an optional live utilization feed
//! for the *ideal* variants that assume up-to-the-minute shared knowledge.
//!
//! `phi-tcp` defines the trait so the transport stays independent of the
//! context-server implementation; `phi-core` provides the real hooks.

use phi_sim::engine::Ctx;
use phi_sim::time::Time;
use serde::{Deserialize, Serialize};

use crate::report::FlowReport;

/// A snapshot of the shared congestion context for one path, as returned
/// by a context-server lookup. This is the paper's (u, q, n) triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextSnapshot {
    /// Estimated bottleneck utilization, [0, 1].
    pub utilization: f64,
    /// Estimated queueing delay (RTT inflation over minimum), milliseconds.
    pub queue_ms: f64,
    /// Estimated number of competing senders on the path.
    pub competing: u32,
}

/// Transport-to-Phi interaction points for one sender.
/// `Send` because hook-carrying senders ride domain simulators onto
/// parallel-engine worker threads.
pub trait SessionHook: Send {
    /// A new connection is starting: look up the shared context, if any.
    /// The returned snapshot is handed to the congestion-control factory.
    fn lookup(&mut self, _now: Time, _ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        None
    }

    /// The connection finished: report its experience to the shared state.
    fn report(&mut self, _report: &FlowReport, _ctx: &mut Ctx<'_>) {}

    /// Live shared-utilization feed, sampled on every ACK.
    ///
    /// * Ideal mode (Remy-Phi-ideal): reads the bottleneck's rolling
    ///   utilization directly from the simulator.
    /// * Practical mode (Remy-Phi-practical): returns the value frozen at
    ///   the last [`SessionHook::lookup`].
    /// * Plain senders: `None`.
    fn live_util(&self, _ctx: &Ctx<'_>) -> Option<f64> {
        None
    }
}

/// The no-coordination hook: a sender that flies blind, like classic TCP.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl SessionHook for NoHook {}

/// Degrades to [`NoHook`] behaviour whenever the context plane faults.
///
/// The §2.2.2 contract is that a Phi sender is *no worse than vanilla
/// TCP* when the context plane is slow, flapping, or gone. A failed
/// lookup already yields default controller parameters, but the live
/// utilization feed is subtler: the inner hook may keep serving a value
/// frozen at some *earlier* successful lookup, so the controller would
/// adapt on junk long after the plane died. `DegradingHook` tracks plane
/// health per connection — a lookup that returns `None` marks the plane
/// unhealthy and suppresses [`SessionHook::live_util`] until a lookup
/// succeeds again, making the degraded sender indistinguishable from a
/// [`NoHook`] one for the whole faulty connection.
#[derive(Debug)]
pub struct DegradingHook<H> {
    inner: H,
    healthy: bool,
    degraded_flows: u64,
}

impl<H: SessionHook> DegradingHook<H> {
    /// Wrap `inner`; the plane is assumed unhealthy until the first
    /// successful lookup.
    pub fn new(inner: H) -> Self {
        DegradingHook {
            inner,
            healthy: false,
            degraded_flows: 0,
        }
    }

    /// Connections that started without context (plane faulty at lookup).
    pub fn degraded_flows(&self) -> u64 {
        self.degraded_flows
    }

    /// The wrapped hook.
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<H: SessionHook> SessionHook for DegradingHook<H> {
    fn lookup(&mut self, now: Time, ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        let snap = self.inner.lookup(now, ctx);
        self.healthy = snap.is_some();
        if !self.healthy {
            self.degraded_flows += 1;
        }
        snap
    }

    fn report(&mut self, report: &FlowReport, ctx: &mut Ctx<'_>) {
        // Reports always pass through: the inner hook (or the plane
        // underneath it) decides whether they can be delivered, and a
        // recovered plane benefits from whatever this sender learned.
        self.inner.report(report, ctx);
    }

    fn live_util(&self, ctx: &Ctx<'_>) -> Option<f64> {
        if self.healthy {
            self.inner.live_util(ctx)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hook_is_inert() {
        // NoHook's default methods return nothing; we can't easily build a
        // Ctx here (engine-internal), so just assert the snapshot type is
        // well-behaved and the hook is constructible.
        let snap = ContextSnapshot {
            utilization: 0.7,
            queue_ms: 12.0,
            competing: 5,
        };
        let round: ContextSnapshot = snap;
        assert_eq!(round, snap);
        let _hook = NoHook;
    }
}
