//! DCTCP (Data Center TCP, SIGCOMM '10) congestion control.
//!
//! DCTCP turns the *extent* of congestion into a proportional window
//! cut. Switches mark ECN-capable packets whose queue exceeds a step
//! threshold `K`; the receiver echoes the marks; the sender maintains
//!
//! ```text
//! α ← (1 − g)·α + g·F
//! ```
//!
//! where `F` is the fraction of acknowledged segments marked over the
//! last observation window (≈ one RTT), and cuts
//!
//! ```text
//! cwnd ← cwnd · (1 − α/2)
//! ```
//!
//! once per window in which any mark arrived. A fully congested path
//! (`α = 1`) halves like Reno; a lightly congested one shaves a few
//! percent — which is what keeps incast fan-ins at high goodput with
//! tiny queues while Cubic/NewReno saw-tooth into shared-buffer
//! collapse. Loss handling (dup-ACK and RTO) stays NewReno-like:
//! marks are the common signal, loss the last resort.

use phi_sim::time::{Dur, Time};
use serde::{Deserialize, Serialize};

use crate::cc::{AckEvent, CongestionControl, LossEvent};

/// DCTCP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DctcpParams {
    /// Initial congestion window, segments.
    pub init_window: f64,
    /// Initial slow-start threshold, segments.
    pub init_ssthresh: f64,
    /// EWMA gain `g` for the marked-fraction estimate (paper value 1/16).
    pub g: f64,
}

impl Default for DctcpParams {
    fn default() -> Self {
        DctcpParams {
            init_window: 2.0,
            init_ssthresh: 65_536.0,
            g: 0.0625,
        }
    }
}

/// The DCTCP controller.
#[derive(Debug, Clone)]
pub struct Dctcp {
    params: DctcpParams,
    cwnd: f64,
    ssthresh: f64,
    /// EWMA of the marked fraction.
    alpha: f64,
    /// Segments acked in the current observation window.
    acked: u64,
    /// Of those, segments whose ACK carried an ECN Echo.
    marked: u64,
    /// When the current observation window closes.
    window_end: Time,
    losses: u64,
    /// Lifetime count of ECE-carrying ACK events (diagnostics).
    ece_seen: u64,
}

/// Observation-window length when no RTT sample exists yet.
const FALLBACK_WINDOW: Dur = Dur::from_millis(10);

impl Dctcp {
    /// A DCTCP controller with the given parameters.
    pub fn new(params: DctcpParams) -> Self {
        assert!(params.init_window >= 1.0);
        assert!(params.g > 0.0 && params.g <= 1.0, "g must be in (0, 1]");
        Dctcp {
            params,
            cwnd: params.init_window,
            ssthresh: params.init_ssthresh,
            alpha: 0.0,
            acked: 0,
            marked: 0,
            window_end: Time::ZERO,
            losses: 0,
            ece_seen: 0,
        }
    }

    /// Current marked-fraction estimate α ∈ [0, 1].
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Loss events (dup-ACK episodes and RTOs) on the current flow.
    pub fn loss_events(&self) -> u64 {
        self.losses
    }

    /// Lifetime count of ACKs that carried an ECN Echo.
    pub fn ece_acks(&self) -> u64 {
        self.ece_seen
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Close the observation window: fold the marked fraction into α and
    /// apply at most one proportional decrease per window.
    fn roll_window(&mut self, ev: &AckEvent) {
        if self.acked > 0 {
            let f = self.marked as f64 / self.acked as f64;
            self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g * f;
            if self.marked > 0 {
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(2.0);
                self.ssthresh = self.cwnd;
            }
        }
        self.acked = 0;
        self.marked = 0;
        let span = ev.rtt.or(ev.min_rtt).unwrap_or(FALLBACK_WINDOW);
        self.window_end = ev.now + span;
    }
}

impl CongestionControl for Dctcp {
    fn on_flow_start(&mut self, _now: Time) {
        let p = self.params;
        *self = Dctcp::new(p);
    }

    fn window(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.acked += ev.newly_acked;
        if ev.ece {
            self.marked += ev.newly_acked;
            self.ece_seen += 1;
            // A mark ends slow start immediately: queues are already at
            // the threshold, growing exponentially past it defeats the
            // point of early signalling.
            if self.in_slow_start() {
                self.ssthresh = self.cwnd;
            }
        } else if self.in_slow_start() {
            self.cwnd = (self.cwnd + ev.newly_acked as f64).min(self.ssthresh.max(self.cwnd));
        } else {
            // Reno-style additive increase between marks.
            self.cwnd += ev.newly_acked as f64 / self.cwnd;
        }
        if ev.now >= self.window_end {
            self.roll_window(ev);
        }
    }

    fn on_loss(&mut self, _ev: &LossEvent) {
        self.losses += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: Time) {
        self.losses += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn ecn_capable(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, newly: u64, ece: bool) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Some(Dur::from_millis(1)),
            min_rtt: Some(Dur::from_millis(1)),
            newly_acked: newly,
            sent_at: Time::ZERO,
            shared_util: None,
            ece,
        }
    }

    #[test]
    fn is_ecn_capable_and_named() {
        let d = Dctcp::new(DctcpParams::default());
        assert!(d.ecn_capable());
        assert_eq!(d.name(), "dctcp");
    }

    #[test]
    fn unmarked_acks_grow_like_reno() {
        let mut d = Dctcp::new(DctcpParams {
            init_ssthresh: 8.0,
            ..DctcpParams::default()
        });
        d.on_flow_start(Time::ZERO);
        d.on_ack(&ack(2, 2, false)); // slow start: 2 -> 4
        d.on_ack(&ack(4, 4, false)); // 4 -> 8, leaves slow start
        assert!(!d.in_slow_start());
        let w = d.window();
        d.on_ack(&ack(6, 8, false)); // one window acked: +1
        assert!((d.window() - (w + 1.0)).abs() < 1e-9);
        assert_eq!(d.alpha(), 0.0);
    }

    #[test]
    fn fully_marked_window_converges_toward_halving() {
        let mut d = Dctcp::new(DctcpParams {
            init_ssthresh: 4.0, // leave slow start quickly
            ..DctcpParams::default()
        });
        d.on_flow_start(Time::ZERO);
        // Every ACK marked: F = 1 each window, so α → 1 and the per-
        // window cut approaches 1/2.
        for i in 1..=400u64 {
            d.on_ack(&ack(i * 2, 4, true));
        }
        assert!(d.alpha() > 0.9, "alpha {} should approach 1", d.alpha());
        assert!(d.ece_acks() > 0);
    }

    #[test]
    fn light_marking_cuts_gently() {
        let heavy = run_marked(8, 8); // every segment marked
        let light = run_marked(8, 1); // 1-in-8 marked
        assert!(
            light > heavy,
            "light marking ({light}) must retain more window than heavy ({heavy})"
        );
    }

    fn run_marked(per_window: u64, marked: u64) -> f64 {
        let mut d = Dctcp::new(DctcpParams {
            init_ssthresh: 16.0,
            ..DctcpParams::default()
        });
        d.on_flow_start(Time::ZERO);
        for i in 1..=200u64 {
            for j in 0..per_window {
                d.on_ack(&ack(i * 2, 1, j < marked));
            }
        }
        d.window()
    }

    #[test]
    fn loss_still_halves_and_rto_resets() {
        let mut d = Dctcp::new(DctcpParams::default());
        d.on_flow_start(Time::ZERO);
        for i in 1..=4 {
            d.on_ack(&ack(i, 4, false));
        }
        let w = d.window();
        d.on_loss(&LossEvent { now: Time::ZERO });
        assert!((d.window() - (w / 2.0).max(2.0)).abs() < 1e-9);
        d.on_rto(Time::ZERO);
        assert_eq!(d.window(), 1.0);
        assert_eq!(d.loss_events(), 2);
    }

    #[test]
    fn flow_start_resets_alpha() {
        let mut d = Dctcp::new(DctcpParams::default());
        d.on_flow_start(Time::ZERO);
        for i in 1..=50 {
            d.on_ack(&ack(i * 2, 2, true));
        }
        assert!(d.alpha() > 0.0);
        d.on_flow_start(Time::from_secs(1));
        assert_eq!(d.alpha(), 0.0);
        assert_eq!(d.ece_acks(), 0);
    }
}
