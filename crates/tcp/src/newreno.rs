//! TCP NewReno (RFC 5681/6582) congestion control — the classic AIMD
//! baseline the related-work section contrasts Cubic against, and a
//! reference point for the TCP-friendliness tests in `phi-core`.

use phi_sim::time::Time;
use serde::{Deserialize, Serialize};

use crate::cc::{AckEvent, CongestionControl, LossEvent};

/// NewReno parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewRenoParams {
    /// Initial congestion window, segments.
    pub init_window: f64,
    /// Initial slow-start threshold, segments.
    pub init_ssthresh: f64,
    /// Multiplicative-decrease numerator: window shrinks to `decrease`·cwnd
    /// on loss (classic value 0.5).
    pub decrease: f64,
    /// Additive increase per RTT in congestion avoidance, segments
    /// (classic value 1.0). Values > 1 emulate an ensemble of flows
    /// (MulTCP-style weighting, used by `phi-core`'s prioritizer).
    pub increase: f64,
}

impl Default for NewRenoParams {
    fn default() -> Self {
        NewRenoParams {
            init_window: 2.0,
            init_ssthresh: 65_536.0,
            decrease: 0.5,
            increase: 1.0,
        }
    }
}

/// TCP NewReno.
#[derive(Debug, Clone)]
pub struct NewReno {
    params: NewRenoParams,
    cwnd: f64,
    ssthresh: f64,
    losses: u64,
}

impl NewReno {
    /// A NewReno controller with the given parameters.
    pub fn new(params: NewRenoParams) -> Self {
        assert!(params.init_window >= 1.0);
        assert!(params.decrease > 0.0 && params.decrease < 1.0);
        assert!(params.increase > 0.0);
        NewReno {
            params,
            cwnd: params.init_window,
            ssthresh: params.init_ssthresh,
            losses: 0,
        }
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Loss events seen on the current flow.
    pub fn loss_events(&self) -> u64 {
        self.losses
    }
}

impl CongestionControl for NewReno {
    fn on_flow_start(&mut self, _now: Time) {
        let p = self.params;
        *self = NewReno::new(p);
    }

    fn window(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        let acked = ev.newly_acked as f64;
        if self.in_slow_start() {
            self.cwnd = (self.cwnd + acked).min(self.ssthresh.max(self.cwnd));
        } else {
            // `increase` segments per RTT == increase/cwnd per acked segment.
            self.cwnd += self.params.increase * acked / self.cwnd;
        }
    }

    fn on_loss(&mut self, _ev: &LossEvent) {
        self.losses += 1;
        self.ssthresh = (self.cwnd * self.params.decrease).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: Time) {
        self.losses += 1;
        self.ssthresh = (self.cwnd * self.params.decrease).max(2.0);
        self.cwnd = 1.0;
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_sim::time::Dur;

    fn ack(newly: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(100),
            rtt: Some(Dur::from_millis(50)),
            min_rtt: Some(Dur::from_millis(50)),
            newly_acked: newly,
            sent_at: Time::ZERO,
            shared_util: None,
            ece: false,
        }
    }

    #[test]
    fn slow_start_then_linear() {
        let mut r = NewReno::new(NewRenoParams {
            init_ssthresh: 8.0,
            ..NewRenoParams::default()
        });
        r.on_flow_start(Time::ZERO);
        r.on_ack(&ack(2)); // 4
        r.on_ack(&ack(4)); // 8 -> leaves slow start
        assert!(!r.in_slow_start());
        let w = r.window();
        r.on_ack(&ack(8)); // one full window acked: +1 segment
        assert!((r.window() - (w + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn halves_on_loss() {
        let mut r = NewReno::new(NewRenoParams::default());
        r.on_flow_start(Time::ZERO);
        for _ in 0..4 {
            r.on_ack(&ack(4));
        }
        let w = r.window();
        r.on_loss(&LossEvent { now: Time::ZERO });
        assert!((r.window() - w / 2.0).abs() < 1e-9);
        assert_eq!(r.loss_events(), 1);
    }

    #[test]
    fn weighted_increase_is_faster() {
        let grow = |inc: f64| {
            let mut r = NewReno::new(NewRenoParams {
                init_ssthresh: 2.0, // start in congestion avoidance
                increase: inc,
                ..NewRenoParams::default()
            });
            r.on_flow_start(Time::ZERO);
            for _ in 0..100 {
                r.on_ack(&ack(2));
            }
            r.window()
        };
        assert!(grow(4.0) > grow(1.0));
    }

    #[test]
    fn rto_back_to_one() {
        let mut r = NewReno::new(NewRenoParams::default());
        r.on_flow_start(Time::ZERO);
        r.on_ack(&ack(2));
        r.on_rto(Time::ZERO);
        assert_eq!(r.window(), 1.0);
    }
}
