//! TCP Cubic (Ha, Rhee & Xu; RFC 8312), with the three knobs the paper
//! tunes from shared knowledge (Table 1/Table 2):
//!
//! * `init_window` — ns-2's `windowInit_`, the initial congestion window;
//! * `init_ssthresh` — ns-2's `initial_ssthresh`, where slow start ends
//!   (RFC 5681 says "arbitrarily high"; the ns-2 default is 65 K segments);
//! * `beta` — the paper's β, where **(1 − β) is the multiplicative
//!   decrease factor** applied on loss (ns-2 default β = 0.2, i.e. the
//!   window shrinks to 80 %). Note this is the complement of RFC 8312's
//!   `beta_cubic`, which *is* the decrease factor.
//!
//! The growth law is the standard cubic function
//! `W(t) = C·(t − K)³ + W_max` with the TCP-friendly region and optional
//! fast convergence.

use phi_sim::time::{Dur, Time};
use serde::{Deserialize, Serialize};

use crate::cc::{AckEvent, CongestionControl, LossEvent};

/// Tunable Cubic parameters (the subject of the paper's §2.2 experiments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CubicParams {
    /// Initial congestion window, segments (`windowInit_`).
    pub init_window: f64,
    /// Initial slow-start threshold, segments (`initial_ssthresh`).
    pub init_ssthresh: f64,
    /// β: the window shrinks to `(1 − β)·cwnd` on loss.
    pub beta: f64,
    /// Cubic scaling constant C (segments/s³). RFC 8312 value 0.4.
    pub c: f64,
    /// Enable fast convergence (release bandwidth to newcomers faster).
    pub fast_convergence: bool,
    /// Enable the TCP-friendly (AIMD-tracking) region.
    pub tcp_friendly: bool,
    /// Pace new data at ~1.25·cwnd/srtt instead of sending ack-clocked
    /// bursts. A small window emitted as one back-to-back burst into a
    /// near-full drop-tail queue tends to lose *every* segment at once
    /// (no duplicate ACKs, only an RTO can recover); spreading the
    /// window over the RTT lets each segment see an independent queue
    /// state. Off by default to preserve classic ack-clocked behaviour.
    pub pace: bool,
}

impl Default for CubicParams {
    /// The ns-2 defaults of Table 1: `initial_ssthresh` = 65 536 segments,
    /// `windowInit_` = 2 segments, β = 0.2.
    fn default() -> Self {
        CubicParams {
            init_window: 2.0,
            init_ssthresh: 65_536.0,
            beta: 0.2,
            c: 0.4,
            fast_convergence: true,
            tcp_friendly: true,
            pace: false,
        }
    }
}

impl CubicParams {
    /// Defaults with the three tuned knobs overridden — the shape Phi's
    /// policy table hands out.
    pub fn tuned(init_window: f64, init_ssthresh: f64, beta: f64) -> Self {
        let p = CubicParams {
            init_window,
            init_ssthresh,
            beta,
            ..CubicParams::default()
        };
        p.validate();
        p
    }

    /// The same parameters with pacing enabled.
    pub fn paced(mut self) -> Self {
        self.pace = true;
        self
    }

    fn validate(&self) {
        assert!(self.init_window >= 1.0, "init_window must be >= 1 segment");
        assert!(
            self.init_ssthresh >= 2.0,
            "init_ssthresh must be >= 2 segments"
        );
        assert!(
            self.beta > 0.0 && self.beta < 1.0,
            "beta must be in (0, 1); got {}",
            self.beta
        );
        assert!(self.c > 0.0, "C must be positive");
    }
}

/// Long-run average Cubic throughput under a steady loss rate, in
/// bits/second — the CC-aware per-flow rate cap for the fluid solver
/// (`phi_sim::fluid`).
///
/// Derivation, in this crate's β convention (the window shrinks to
/// `(1 − β)·W` on loss, so the sawtooth runs from `(1 − β)·W_max` back
/// to `W_max`):
///
/// - One congestion epoch lasts `K = ((β·W_max)/C)^(1/3)` seconds and
///   carries `∫ W(t) dt = W_max·K − C·K⁴/4 = W_max·K·(4 − β)/4`
///   segments·s, i.e. an average window `W_avg = W_max·(4 − β)/4`.
/// - The epoch delivers `W_avg·K/τ` segments at RTT `τ` and ends in one
///   loss event, so the per-segment loss probability is
///   `p = τ / (W_avg·K)`. Substituting and solving for `W_max`:
///   `W_max = (4·τ·C^(1/3) / ((4 − β)·β^(1/3)·p))^(3/4)`.
/// - With `tcp_friendly`, the AIMD-tracking region puts a floor of
///   `sqrt(3/(2p))` segments under the average window (the classic
///   `1/sqrt(p)` law; the β-dependence cancels exactly for RFC 8312's
///   equivalent-AIMD gain `3β/(2 − β)`).
///
/// This is a *model*, not a measurement: it ignores slow start,
/// timeouts, and delayed ACKs, which is exactly the regime the fluid
/// solver targets (long-running or steady-state shares). `loss` is the
/// reference loss probability per segment in `(0, 1)`; `rtt_secs` the
/// round-trip time; `mss_bytes` the segment payload.
pub fn steady_state_rate_bps(
    params: &CubicParams,
    rtt_secs: f64,
    loss: f64,
    mss_bytes: f64,
) -> f64 {
    params.validate();
    assert!(
        rtt_secs > 0.0 && rtt_secs.is_finite(),
        "rtt must be positive and finite, got {rtt_secs}"
    );
    assert!(
        loss > 0.0 && loss < 1.0,
        "loss probability must be in (0, 1), got {loss}"
    );
    assert!(mss_bytes > 0.0, "mss must be positive, got {mss_bytes}");
    let beta = params.beta;
    let w_max = (4.0 * rtt_secs * params.c.cbrt() / ((4.0 - beta) * beta.cbrt() * loss)).powf(0.75);
    let mut w_avg = w_max * (4.0 - beta) / 4.0;
    if params.tcp_friendly {
        w_avg = w_avg.max((1.5 / loss).sqrt());
    }
    w_avg * mss_bytes * 8.0 / rtt_secs
}

/// TCP Cubic congestion control.
#[derive(Debug, Clone)]
pub struct Cubic {
    params: CubicParams,
    cwnd: f64,
    ssthresh: f64,
    /// W_max: window size at the last loss.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<Time>,
    /// K: time for the cubic to return to W_max, seconds.
    k: f64,
    /// Window at the start of the epoch (origin of the cubic curve).
    w_epoch: f64,
    /// AIMD estimate for the TCP-friendly region, segments.
    w_est: f64,
    /// Smoothed RTT estimate for the friendly region, seconds.
    srtt: f64,
    /// Count of loss events (for reporting).
    losses: u64,
}

impl Cubic {
    /// A Cubic controller with the given parameters.
    pub fn new(params: CubicParams) -> Self {
        params.validate();
        Cubic {
            params,
            cwnd: params.init_window,
            ssthresh: params.init_ssthresh,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_epoch: 0.0,
            w_est: 0.0,
            srtt: 0.1,
            losses: 0,
        }
    }

    /// The parameters this controller runs with.
    pub fn params(&self) -> &CubicParams {
        &self.params
    }

    /// Current slow-start threshold, segments.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Loss events seen on the current flow.
    pub fn loss_events(&self) -> u64 {
        self.losses
    }

    fn enter_epoch(&mut self, now: Time) {
        self.epoch_start = Some(now);
        if self.cwnd < self.w_max {
            // K: time to grow back to w_max from the current window.
            self.k = ((self.w_max - self.cwnd) / self.params.c).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.cwnd;
        }
        self.w_epoch = self.cwnd;
        self.w_est = self.cwnd;
    }

    fn cubic_target(&self, t: f64) -> f64 {
        self.params.c * (t - self.k).powi(3) + self.w_max
    }

    fn reduce(&mut self, _now: Time) {
        self.losses += 1;
        let decrease = 1.0 - self.params.beta;
        if self.params.fast_convergence && self.cwnd < self.w_max {
            // The flow is shrinking: release the slot faster.
            self.w_max = self.cwnd * (2.0 - self.params.beta) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.ssthresh = (self.cwnd * decrease).max(2.0);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
    }
}

impl CongestionControl for Cubic {
    fn on_flow_start(&mut self, _now: Time) {
        let p = self.params;
        *self = Cubic::new(p);
    }

    fn window(&self) -> f64 {
        self.cwnd.max(1.0)
    }

    fn intersend(&self) -> Option<Dur> {
        if !self.params.pace {
            return None;
        }
        // Linux-style pacing gains: 2x in slow start (the window doubles
        // per RTT, so a slower pace would become the limiting clock) and
        // 1.25x in congestion avoidance.
        let gain = if self.in_slow_start() { 2.0 } else { 1.25 };
        let rate = gain * self.window() / self.srtt.max(1e-6);
        Some(Dur::from_secs_f64(1.0 / rate))
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if let Some(rtt) = ev.rtt {
            let s = rtt.as_secs_f64();
            self.srtt = 0.875 * self.srtt + 0.125 * s;
        }
        let acked = ev.newly_acked as f64;
        if self.in_slow_start() {
            // Slow start: one segment per acked segment, up to ssthresh.
            self.cwnd = (self.cwnd + acked).min(self.ssthresh.max(self.cwnd));
            if !self.in_slow_start() {
                self.epoch_start = None; // transition to CA next ack
            }
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(ev.now);
        }
        let t = (ev.now - self.epoch_start.expect("set above")).as_secs_f64();
        // Target one RTT ahead, per RFC 8312 §4.1.
        let target = self.cubic_target(t + self.srtt);
        if target > self.cwnd {
            // Approach the target over roughly one window of ACKs.
            self.cwnd += (target - self.cwnd) / self.cwnd * acked;
        } else {
            // Max-probing plateau: crawl forward.
            self.cwnd += 0.01 * acked / self.cwnd;
        }
        if self.params.tcp_friendly {
            // AIMD estimate W_est with equivalent loss response: grows by
            // 3β/(2−β) per RTT (RFC 8312 §4.2 with β = 1 − beta_cubic).
            let aimd_gain = 3.0 * self.params.beta / (2.0 - self.params.beta);
            self.w_est += aimd_gain * acked / self.cwnd;
            if self.w_est > self.cwnd {
                self.cwnd = self.w_est;
            }
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        self.reduce(ev.now);
    }

    fn on_rto(&mut self, _now: Time) {
        self.losses += 1;
        let decrease = 1.0 - self.params.beta;
        self.ssthresh = (self.cwnd * decrease).max(2.0);
        self.w_max = self.cwnd;
        // RFC 5681: the loss window is one segment.
        self.cwnd = 1.0;
        self.epoch_start = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_sim::time::Dur;

    fn ack(now_ms: u64, newly: u64) -> AckEvent {
        AckEvent {
            now: Time::from_millis(now_ms),
            rtt: Some(Dur::from_millis(100)),
            min_rtt: Some(Dur::from_millis(100)),
            newly_acked: newly,
            sent_at: Time::ZERO,
            shared_util: None,
            ece: false,
        }
    }

    #[test]
    fn defaults_match_table1() {
        let p = CubicParams::default();
        assert_eq!(p.init_window, 2.0);
        assert_eq!(p.init_ssthresh, 65_536.0);
        assert_eq!(p.beta, 0.2);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Cubic::new(CubicParams::default());
        c.on_flow_start(Time::ZERO);
        assert_eq!(c.window(), 2.0);
        // Acking a full window in slow start doubles it.
        c.on_ack(&ack(100, 2));
        assert_eq!(c.window(), 4.0);
        c.on_ack(&ack(200, 4));
        assert_eq!(c.window(), 8.0);
        assert!(c.in_slow_start());
    }

    #[test]
    fn small_ssthresh_caps_slow_start() {
        let mut c = Cubic::new(CubicParams::tuned(2.0, 8.0, 0.2));
        c.on_flow_start(Time::ZERO);
        c.on_ack(&ack(100, 2)); // 4
        c.on_ack(&ack(200, 4)); // 8 = ssthresh: slow start over
        assert_eq!(c.window(), 8.0);
        assert!(!c.in_slow_start());
        // Further acks use cubic growth, far slower than doubling.
        c.on_ack(&ack(300, 8));
        assert!(c.window() < 16.0);
        assert!(c.window() >= 8.0);
    }

    #[test]
    fn loss_multiplies_window_by_one_minus_beta() {
        let mut c = Cubic::new(CubicParams::tuned(2.0, 16.0, 0.3));
        c.on_flow_start(Time::ZERO);
        c.on_ack(&ack(100, 2));
        c.on_ack(&ack(200, 4));
        c.on_ack(&ack(300, 8));
        let before = c.window();
        c.on_loss(&LossEvent {
            now: Time::from_millis(400),
        });
        let after = c.window();
        assert!((after - before * 0.7).abs() < 1e-9, "{before} -> {after}");
        assert_eq!(c.loss_events(), 1);
    }

    #[test]
    fn larger_beta_backs_off_harder() {
        let run = |beta: f64| {
            let mut c = Cubic::new(CubicParams::tuned(2.0, 64.0, beta));
            c.on_flow_start(Time::ZERO);
            for i in 1..=6 {
                c.on_ack(&ack(i * 100, 1 << i.min(5)));
            }
            c.on_loss(&LossEvent {
                now: Time::from_secs(1),
            });
            c.window()
        };
        assert!(run(0.8) < run(0.2));
    }

    #[test]
    fn cubic_growth_is_concave_then_convex() {
        // After a loss, growth should decelerate approaching w_max (concave)
        // and accelerate past it (convex).
        let mut c = Cubic::new(CubicParams {
            tcp_friendly: false,
            ..CubicParams::tuned(2.0, 4.0, 0.3)
        });
        c.on_flow_start(Time::ZERO);
        // Leave slow start quickly, grow a while, then lose.
        c.on_ack(&ack(100, 2));
        for i in 2..40 {
            c.on_ack(&ack(i * 100, 4));
        }
        c.on_loss(&LossEvent {
            now: Time::from_secs(4),
        });
        let w_max = c.w_max;
        let w_loss = c.window();
        // Sample the window every 100 ms for 8 s after the loss.
        let mut samples = Vec::new();
        for i in 0..80u64 {
            c.on_ack(&ack(4_000 + (i + 1) * 100, 4));
            samples.push(c.window());
        }
        // Concave approach: growth over the first second beats growth over
        // the second-to-last second *below* w_max.
        let below: Vec<usize> = (0..80).filter(|&i| samples[i] < w_max).collect();
        assert!(below.len() > 20, "should spend a while below w_max");
        let last_below = *below.last().unwrap();
        let early_growth = samples[9] - samples[0];
        let late_growth = samples[last_below] - samples[last_below - 9];
        assert!(
            early_growth > late_growth,
            "concave region: early {early_growth} vs late {late_growth}"
        );
        // Convex region: once past w_max, growth accelerates again.
        if last_below + 20 < samples.len() {
            let just_after = samples[last_below + 10] - samples[last_below + 1];
            let further = samples[last_below + 19] - samples[last_below + 10];
            assert!(
                further > just_after,
                "convex region: {further} vs {just_after}"
            );
        }
        // The window eventually exceeds its post-loss value substantially.
        assert!(samples.last().unwrap() > &w_loss);
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut c = Cubic::new(CubicParams::default());
        c.on_flow_start(Time::ZERO);
        c.on_ack(&ack(100, 2));
        c.on_ack(&ack(200, 4));
        c.on_rto(Time::from_millis(300));
        assert_eq!(c.window(), 1.0);
        assert!((c.ssthresh() - 8.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn flow_start_resets_state() {
        let mut c = Cubic::new(CubicParams::tuned(4.0, 32.0, 0.2));
        c.on_flow_start(Time::ZERO);
        c.on_ack(&ack(100, 4));
        c.on_loss(&LossEvent {
            now: Time::from_millis(200),
        });
        c.on_flow_start(Time::from_secs(10));
        assert_eq!(c.window(), 4.0);
        assert_eq!(c.ssthresh(), 32.0);
        assert_eq!(c.loss_events(), 0);
        assert!(c.in_slow_start());
    }

    #[test]
    fn fast_convergence_lowers_wmax_when_shrinking() {
        let mk = |fast| {
            let mut c = Cubic::new(CubicParams {
                fast_convergence: fast,
                tcp_friendly: false,
                ..CubicParams::tuned(2.0, 4.0, 0.2)
            });
            c.on_flow_start(Time::ZERO);
            c.on_ack(&ack(100, 2));
            c.on_ack(&ack(200, 2)); // leaves slow start at 4
                                    // First loss establishes w_max = 4.
            c.on_loss(&LossEvent {
                now: Time::from_millis(300),
            });
            // Second loss while still below the old w_max.
            c.on_loss(&LossEvent {
                now: Time::from_millis(400),
            });
            c.w_max
        };
        assert!(mk(true) < mk(false));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn params_validated() {
        Cubic::new(CubicParams::tuned(2.0, 64.0, 1.5));
    }

    #[test]
    fn steady_state_rate_decreases_with_loss_and_rtt() {
        let p = CubicParams::default();
        let r = |rtt: f64, loss: f64| steady_state_rate_bps(&p, rtt, loss, 1448.0);
        assert!(r(0.06, 1e-4) > r(0.06, 1e-3));
        assert!(r(0.06, 1e-3) > r(0.06, 1e-2));
        // Cubic's rate scales as tau^(-1/4): shorter RTT, faster flow.
        assert!(r(0.03, 1e-4) > r(0.06, 1e-4));
        assert!(r(0.06, 1e-4).is_finite() && r(0.06, 1e-4) > 0.0);
    }

    #[test]
    fn steady_state_rate_matches_the_closed_form() {
        // Spot-check the W_max algebra at beta = 0.2, C = 0.4, without
        // the friendly floor: p small enough that cubic dominates.
        let p = CubicParams {
            tcp_friendly: false,
            ..CubicParams::default()
        };
        let (tau, loss, mss) = (0.06, 1e-4, 1448.0);
        let w_max = (4.0 * tau * 0.4f64.cbrt() / (3.8 * 0.2f64.cbrt() * loss)).powf(0.75);
        let expect = w_max * 3.8 / 4.0 * mss * 8.0 / tau;
        let got = steady_state_rate_bps(&p, tau, loss, mss);
        assert!((got - expect).abs() < 1e-6 * expect, "{got} vs {expect}");
    }

    #[test]
    fn friendly_region_floors_the_rate_at_high_loss() {
        // At heavy loss the AIMD floor sqrt(3/(2p)) beats the cubic
        // window, so the friendly variant must report a higher rate.
        let base = CubicParams::default();
        let unfriendly = CubicParams {
            tcp_friendly: false,
            ..base
        };
        let (tau, loss, mss) = (0.1, 0.05, 1448.0);
        let with = steady_state_rate_bps(&base, tau, loss, mss);
        let without = steady_state_rate_bps(&unfriendly, tau, loss, mss);
        assert!(with >= without);
        let floor = (1.5f64 / loss).sqrt() * mss * 8.0 / tau;
        assert!((with - floor).abs() < 1e-6 * floor);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn steady_state_rate_rejects_zero_loss() {
        steady_state_rate_bps(&CubicParams::default(), 0.06, 0.0, 1448.0);
    }
}
