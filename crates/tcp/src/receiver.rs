//! The receiving endpoint: cumulative acknowledgments with duplicate-ACK
//! generation on gaps, per classic TCP. One receiver agent serves the
//! (possibly many, sequential) flows of one sender.

use std::any::Any;
use std::collections::{BTreeSet, HashMap};

use phi_sim::engine::{Agent, Ctx};
use phi_sim::packet::{wire, Flags, FlowId, Packet, SackBlocks};
use phi_sim::time::Time;

/// Per-flow receive state.
#[derive(Debug, Default)]
struct RecvFlow {
    /// Next expected segment (cumulative ack value).
    expect: u64,
    /// Out-of-order segments held for reassembly.
    ooo: BTreeSet<u64>,
    /// Segments received in total (including duplicates).
    received: u64,
    /// Duplicate data segments seen (spurious retransmissions).
    dup_data: u64,
    /// Sequence number of the FIN-marked final segment, once seen (the
    /// flag must survive out-of-order arrival and reassembly).
    fin_seq: Option<u64>,
    /// True once the FIN-marked final segment has been consumed in order.
    finished: bool,
}

impl RecvFlow {
    fn refresh_finished(&mut self) {
        if let Some(f) = self.fin_seq {
            if self.expect > f {
                self.finished = true;
            }
        }
    }
}

/// A TCP-like receiver: acknowledges every arriving data segment with the
/// current cumulative ack, echoing the segment's send timestamp (and its
/// retransmission bit, so the sender can apply Karn's rule).
pub struct TcpReceiver {
    flows: HashMap<FlowId, RecvFlow>,
    acks_sent: u64,
    ce_received: u64,
}

impl TcpReceiver {
    /// A fresh receiver.
    pub fn new() -> Self {
        TcpReceiver {
            flows: HashMap::new(),
            acks_sent: 0,
            ce_received: 0,
        }
    }

    /// Acks sent so far (diagnostics).
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Data segments that arrived carrying a Congestion Experienced mark
    /// (each one was echoed back as an ECE-flagged ACK).
    pub fn ce_received(&self) -> u64 {
        self.ce_received
    }

    /// Segments received in order for `flow` (the cumulative ack point).
    pub fn progress(&self, flow: FlowId) -> u64 {
        self.flows.get(&flow).map(|f| f.expect).unwrap_or(0)
    }

    /// True once `flow`'s FIN has been consumed in order.
    pub fn finished(&self, flow: FlowId) -> bool {
        self.flows.get(&flow).map(|f| f.finished).unwrap_or(false)
    }

    /// Duplicate (already-delivered) data segments observed on `flow`.
    pub fn dup_data(&self, flow: FlowId) -> u64 {
        self.flows.get(&flow).map(|f| f.dup_data).unwrap_or(0)
    }
}

impl Default for TcpReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Agent for TcpReceiver {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.is_ack() {
            // We are a pure sink; stray ACKs are ignored.
            return;
        }
        let state = self.flows.entry(pkt.flow).or_default();
        state.received += 1;
        if pkt.is_fin() {
            state.fin_seq = Some(pkt.seq);
        }

        if pkt.seq == state.expect {
            state.expect += 1;
            // Drain any contiguous out-of-order segments.
            while state.ooo.remove(&state.expect) {
                state.expect += 1;
            }
            state.refresh_finished();
        } else if pkt.seq > state.expect {
            state.ooo.insert(pkt.seq);
        } else {
            state.dup_data += 1;
        }

        // Acknowledge immediately (no delayed ACKs: ns-2's Cubic experiments
        // run with per-segment acking, and delayed acks would only rescale
        // window growth uniformly across all schemes under test).
        let mut flags = Flags::ACK;
        if pkt.is_retx() {
            flags = flags.union(Flags::RETX);
        }
        // ECN: echo a switch's Congestion Experienced mark back to the
        // sender (per-packet, DCTCP-style — no latched ECE state, so the
        // sender sees the exact marked fraction).
        if pkt.is_ce() {
            self.ce_received += 1;
            flags = flags.union(Flags::ECE);
        }
        // SACK: report up to three contiguous out-of-order ranges above the
        // cumulative ack, lowest first (the holes the sender should fill
        // first come ahead of them).
        let mut sack = SackBlocks::EMPTY;
        let mut run_start: Option<u64> = None;
        let mut prev = 0u64;
        for &seq in state.ooo.iter() {
            match run_start {
                None => {
                    run_start = Some(seq);
                    prev = seq;
                }
                Some(start) => {
                    if seq == prev + 1 {
                        prev = seq;
                    } else {
                        if !sack.push(start, prev + 1) {
                            run_start = None;
                            break;
                        }
                        run_start = Some(seq);
                        prev = seq;
                    }
                }
            }
        }
        if let Some(start) = run_start {
            sack.push(start, prev + 1);
        }
        let ack = Packet {
            id: 0,
            flow: pkt.flow,
            src: ctx.node(),
            dst: pkt.src,
            src_port: pkt.dst_port,
            dst_port: pkt.src_port,
            seq: pkt.seq,
            ack: state.expect,
            flags,
            size: wire::ACK_BYTES,
            sent_at: Time::ZERO, // stamped by the engine
            echo: pkt.sent_at,
            sack,
        };
        self.acks_sent += 1;
        ctx.send(ack);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_sim::engine::Simulator;
    use phi_sim::packet::NodeId;
    use phi_sim::queue::Capacity;
    use phi_sim::time::Dur;
    use phi_sim::topology::TopologyBuilder;

    /// Sends a scripted sequence of (seq, fin) data segments, recording acks.
    struct Script {
        peer: NodeId,
        sends: Vec<(u64, bool, bool)>, // (seq, fin, retx)
        acks: Vec<(u64, bool)>,        // (cumulative ack, echo-retx)
        next: usize,
    }

    impl Agent for Script {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::ZERO, 0);
        }
        fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
            if self.next < self.sends.len() {
                let (seq, fin, retx) = self.sends[self.next];
                self.next += 1;
                let mut flags = Flags::empty();
                if fin {
                    flags = flags.union(Flags::FIN);
                }
                if retx {
                    flags = flags.union(Flags::RETX);
                }
                let mut p = phi_sim::engine::packet_to(self.peer, 80, 10, FlowId(1), 1500);
                p.seq = seq;
                p.flags = flags;
                ctx.send(p);
                ctx.set_timer_after(Dur::from_millis(1), 0);
            }
        }
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.acks.push((pkt.ack, pkt.is_retx()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn run_script(sends: Vec<(u64, bool, bool)>) -> (Vec<(u64, bool)>, TcpReceiver) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_duplex(
            a,
            z,
            1_000_000_000,
            Dur::from_micros(10),
            Capacity::Packets(1000),
        );
        let mut sim = Simulator::new(b.build());
        let script = sim.add_agent(
            a,
            10,
            Box::new(Script {
                peer: z,
                sends,
                acks: Vec::new(),
                next: 0,
            }),
        );
        let recv = sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
        sim.run_to_completion();
        let acks = sim.agent_as::<Script>(script).unwrap().acks.clone();
        // Extract the receiver by value-ish: clone its observable state.
        let r = sim.agent_as::<TcpReceiver>(recv).unwrap();
        let copy = TcpReceiver {
            flows: HashMap::new(),
            acks_sent: r.acks_sent,
            ce_received: r.ce_received,
        };
        let fin = r.finished(FlowId(1));
        let progress = r.progress(FlowId(1));
        let dups = r.dup_data(FlowId(1));
        // Re-materialize the bits we assert on.
        let mut rr = copy;
        rr.flows.insert(
            FlowId(1),
            RecvFlow {
                expect: progress,
                ooo: BTreeSet::new(),
                received: 0,
                dup_data: dups,
                fin_seq: None,
                finished: fin,
            },
        );
        (acks, rr)
    }

    #[test]
    fn in_order_delivery_acks_cumulatively() {
        let (acks, r) = run_script(vec![(0, false, false), (1, false, false), (2, true, false)]);
        assert_eq!(acks.iter().map(|a| a.0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(r.finished(FlowId(1)));
        assert_eq!(r.progress(FlowId(1)), 3);
    }

    #[test]
    fn gap_generates_duplicate_acks_then_jumps() {
        // Segment 1 lost: 0, 2, 3 arrive, then 1 retransmitted.
        let (acks, _) = run_script(vec![
            (0, false, false),
            (2, false, false),
            (3, true, false),
            (1, false, true),
        ]);
        // Acks: 1, then dup 1, dup 1, then jump to 4.
        assert_eq!(
            acks.iter().map(|a| a.0).collect::<Vec<_>>(),
            vec![1, 1, 1, 4]
        );
        // The ack for the retransmitted segment echoes the RETX bit.
        assert!(acks[3].1);
        assert!(!acks[0].1);
    }

    #[test]
    fn spurious_retransmission_counted() {
        let (acks, r) = run_script(vec![
            (0, false, false),
            (0, false, true), // duplicate of an already-delivered segment
            (1, true, false),
        ]);
        assert_eq!(acks.iter().map(|a| a.0).collect::<Vec<_>>(), vec![1, 1, 2]);
        assert_eq!(r.dup_data(FlowId(1)), 1);
    }

    #[test]
    fn flows_are_isolated() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.progress(FlowId(9)), 0);
        assert!(!r.finished(FlowId(9)));
        r.flows.entry(FlowId(9)).or_default().expect = 5;
        assert_eq!(r.progress(FlowId(9)), 5);
        assert_eq!(r.progress(FlowId(10)), 0);
    }
}
