//! The sending endpoint: connection lifecycle, loss recovery, and the
//! on/off workload loop.
//!
//! A [`TcpSender`] drives a sequence of connections (the paper's on/off
//! model: each on-period is a *fresh* connection with reset congestion
//! state). For each connection it:
//!
//! 1. asks its [`SessionHook`] for the shared congestion context (a Phi
//!    lookup, or nothing for unmodified senders),
//! 2. builds a congestion controller from its factory — which is where
//!    Phi-tuned parameters enter,
//! 3. transfers the planned bytes with SACK-based loss recovery
//!    (RFC 6675-style scoreboard and pipe accounting, which is what the
//!    paper's ns-2 Linux-TCP senders run): fast retransmit after
//!    `dupack_threshold` duplicate ACKs, hole-by-hole retransmission
//!    bounded by the congestion window, and a Jacobson/Karels RTO with
//!    exponential backoff and go-back-N restart as the last resort,
//! 4. reports the completed flow back through the hook (a Phi report).
//!
//! Pacing: if the controller supplies [`CongestionControl::intersend`],
//! sends are additionally spaced by that gap (Remy's rate dimension).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use phi_sim::engine::{packet_to, Agent, Ctx, TimerHandle};
use phi_sim::packet::{wire, Flags, FlowId, NodeId, Packet};
use phi_sim::time::{Dur, Time};
use phi_workload::FlowSource;

use crate::cc::{AckEvent, CongestionControl, LossEvent};
use crate::hook::{ContextSnapshot, SessionHook};
use crate::report::FlowReport;

/// Builds a congestion controller for a new connection, optionally using
/// the shared context returned by the session hook's lookup.
pub type CcFactory = Box<dyn FnMut(Option<&ContextSnapshot>) -> Box<dyn CongestionControl> + Send>;

/// Static configuration of one sender.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Peer (receiver) node.
    pub dst: NodeId,
    /// Peer port.
    pub dst_port: u16,
    /// Local port.
    pub src_port: u16,
    /// Duplicate ACKs that trigger fast retransmit (classically 3;
    /// §3.2's informed adaptation tunes this when reordering is common).
    pub dupack_threshold: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Dur,
    /// Upper bound on the retransmission timeout.
    pub max_rto: Dur,
    /// Abort the flow after this many *consecutive* RTO expirations with
    /// no forward progress (`None` = retry forever, classic behavior).
    /// With backoff capped at `max_rto`, a permanently blackholed path
    /// otherwise spins silently; the cap makes the flow die loudly with
    /// an `aborted` verdict in its [`FlowReport`].
    pub max_consecutive_rtos: Option<u32>,
    /// Stop after this many completed flows (`None` = run forever).
    pub max_flows: Option<u64>,
    /// Base for flow ids; successive flows get base, base+1, …
    pub flow_id_base: u64,
}

impl SenderConfig {
    /// Sensible defaults for a sender talking to `dst`/`dst_port`.
    pub fn new(dst: NodeId, dst_port: u16, src_port: u16) -> Self {
        SenderConfig {
            dst,
            dst_port,
            src_port,
            dupack_threshold: 3,
            min_rto: Dur::from_millis(200),
            max_rto: Dur::from_secs(60),
            max_consecutive_rtos: None,
            max_flows: None,
            flow_id_base: 0,
        }
    }
}

// Timer tokens. Staleness is handled by the engine: timers are cancelled
// (or superseded) through their [`TimerHandle`] and skipped at pop time,
// so tokens no longer need to carry generation counters.
const TIMER_START: u64 = 0;
const TIMER_RTO: u64 = 1;
const TIMER_PACE: u64 = 2;

/// State of the in-progress connection.
struct Conn {
    flow: FlowId,
    cc: Box<dyn CongestionControl>,
    /// Total segments to transfer.
    total: u64,
    /// Application bytes to transfer.
    bytes: u64,
    /// Payload bytes of the final segment.
    last_payload: u32,
    /// Next new segment to send.
    next_seq: u64,
    /// One past the highest segment currently counted in the pipe.
    /// Reset to the cumulative ack on timeout (go-back-N declares
    /// everything beyond it lost).
    pipe_end: u64,
    /// One past the highest segment *ever* transmitted (monotone; used to
    /// mark re-sends with the RETX flag for Karn's rule).
    ever_sent: u64,
    /// Cumulative acknowledgment (next expected by receiver).
    highest_acked: u64,
    dup_acks: u32,
    /// Recovery point: in recovery until the cumulative ack exceeds it.
    recovery: Option<u64>,
    /// SACK scoreboard: segments above `highest_acked` the receiver holds.
    sacked: BTreeSet<u64>,
    /// Holes retransmitted during the current recovery episode, mapped to
    /// the send frontier (`ever_sent`) at retransmit time. If the
    /// receiver later SACKs anything at or above that frontier while the
    /// hole is still open, the retransmission itself was lost and the
    /// hole is re-offered (lost-retransmission detection, as in RFC
    /// 6675/RACK) instead of stalling until the RTO.
    retx_sent: BTreeMap<u64, u64>,
    /// Retransmissions in flight (sent, not yet cumulatively or
    /// selectively acked).
    retx_unacked: BTreeSet<u64>,
    /// Scan pointer for the next unexamined hole in recovery.
    hole_scan: u64,
    // RTT estimation (Jacobson/Karels).
    srtt: Option<Dur>,
    rttvar: Dur,
    rto: Dur,
    min_rtt: Option<Dur>,
    rtt_sum_ms: f64,
    rtt_samples: u64,
    // Accounting.
    start: Time,
    retransmits: u64,
    timeouts: u64,
    recoveries: u64,
    /// RTO expirations since the last cumulative advance; compared
    /// against `SenderConfig::max_consecutive_rtos` for the abort verdict
    /// and reset to zero whenever the flow makes forward progress.
    consecutive_rtos: u32,
    /// Recoveries from an RTO-backoff spiral: the path healed and an ACK
    /// advanced the flow after >= 2 consecutive timeouts.
    idle_restarts: u64,
    // Pacing.
    pace_next: Time,
    pace_pending: bool,
    pace_handle: Option<TimerHandle>,
}

impl Conn {
    fn outstanding(&self) -> bool {
        self.pipe_end > self.highest_acked || self.next_seq < self.total
    }

    /// RFC 6675-style pipe estimate: segments believed in flight.
    ///
    /// Outstanding segments, minus those the receiver selectively holds,
    /// minus the holes "known lost" (below the highest SACKed segment),
    /// plus retransmissions currently in flight. Without SACK information
    /// it degrades to the classic duplicate-ACK inflation.
    fn pipe(&self) -> u64 {
        let outstanding = self.pipe_end.saturating_sub(self.highest_acked);
        let departed = if self.sacked.is_empty() {
            u64::from(self.dup_acks)
        } else {
            let sacked = self.sacked.len() as u64;
            let lost = match self.sacked.iter().next_back() {
                Some(&hs) => {
                    // Non-SACKed seqs in [highest_acked, hs) are presumed lost.
                    let span = hs - self.highest_acked;
                    span.saturating_sub(sacked - 1)
                }
                None => 0,
            };
            sacked + lost
        };
        outstanding.saturating_sub(departed) + self.retx_unacked.len() as u64
    }

    /// The lowest "known lost" hole not yet retransmitted this episode,
    /// if recovery is active. A hole is known lost when some higher
    /// segment has been SACKed.
    fn next_hole(&mut self) -> Option<u64> {
        self.recovery?;
        let &highest_sacked = self.sacked.iter().next_back()?;
        if self.hole_scan < self.highest_acked {
            self.hole_scan = self.highest_acked;
        }
        while self.hole_scan < highest_sacked {
            let seq = self.hole_scan;
            self.hole_scan += 1;
            if !self.sacked.contains(&seq) && !self.retx_sent.contains_key(&seq) {
                return Some(seq);
            }
        }
        None
    }

    /// Lost-retransmission detection (the RFC 6675 / RACK idea): if the
    /// receiver SACKs a segment first sent *after* a hole was
    /// retransmitted while the hole is still open, that retransmission
    /// was itself dropped. Re-open the hole so recovery retransmits it
    /// again instead of stalling until the RTO — with several drop-tail
    /// bottlenecks on the path, lost retransmissions are common and every
    /// one would otherwise cost a full timeout plus a window collapse.
    fn detect_lost_retx(&mut self) {
        let Some(&highest_sacked) = self.sacked.iter().next_back() else {
            return;
        };
        let lost: Vec<u64> = self
            .retx_sent
            .iter()
            .filter(|&(&h, &frontier)| highest_sacked >= frontier && !self.sacked.contains(&h))
            .map(|(&h, _)| h)
            .collect();
        for h in lost {
            self.retx_sent.remove(&h);
            self.retx_unacked.remove(&h);
            if self.hole_scan > h {
                self.hole_scan = h;
            }
        }
    }

    /// Fold an ACK's SACK blocks into the scoreboard.
    fn absorb_sack(&mut self, pkt: &Packet) {
        for (s, e) in pkt.sack.iter() {
            let lo = s.max(self.highest_acked);
            let hi = e.min(self.ever_sent);
            for seq in lo..hi {
                if self.sacked.insert(seq) {
                    // A retransmission that arrived no longer occupies
                    // the pipe.
                    self.retx_unacked.remove(&seq);
                    // Newly SACKed ground below the scan point may expose
                    // nothing, but a *fresh* highest block means earlier
                    // holes may now count as lost; the scan pointer already
                    // covers them, so no rewind is needed.
                }
            }
        }
    }

    /// Drop scoreboard state below the new cumulative ack.
    fn advance_cumack(&mut self, ack: u64) {
        self.sacked = self.sacked.split_off(&ack);
        self.retx_sent = self.retx_sent.split_off(&ack);
        self.retx_unacked = self.retx_unacked.split_off(&ack);
        if self.hole_scan < ack {
            self.hole_scan = ack;
        }
        // Late ACKs (e.g. for pre-timeout packets still in flight) can
        // advance past a go-back-N reset point; keep the send pointers
        // from regressing below delivered data.
        if self.pipe_end < ack {
            self.pipe_end = ack;
        }
        if self.next_seq < ack {
            self.next_seq = ack;
        }
    }

    fn take_rtt_sample(&mut self, sample: Dur) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let err = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                self.rttvar = Dur::from_nanos(
                    (3 * self.rttvar.as_nanos() / 4).saturating_add(err.as_nanos() / 4),
                );
                self.srtt = Some(Dur::from_nanos(
                    (7 * srtt.as_nanos() / 8).saturating_add(sample.as_nanos() / 8),
                ));
            }
        }
        self.min_rtt = Some(match self.min_rtt {
            None => sample,
            Some(m) => m.min(sample),
        });
        self.rtt_sum_ms += sample.as_millis_f64();
        self.rtt_samples += 1;
    }

    fn computed_rto(&self, min_rto: Dur, max_rto: Dur) -> Dur {
        match self.srtt {
            None => Dur::from_secs(1),
            Some(srtt) => (srtt + (self.rttvar * 4).max(Dur::from_millis(1)))
                .max(min_rto)
                .min(max_rto),
        }
    }
}

/// A TCP-like sender agent driving an on/off connection sequence.
pub struct TcpSender {
    cfg: SenderConfig,
    source: FlowSource,
    cc_factory: CcFactory,
    hook: Box<dyn SessionHook>,
    conn: Option<Conn>,
    /// Completed-flow reports, in completion order.
    reports: Vec<FlowReport>,
    flows_started: u64,
    /// Bytes planned for the flow whose start timer is pending.
    pending_bytes: u64,
    /// The single armed RTO timer (handle and its fire time), if any.
    ///
    /// Classic senders push a fresh RTO timer on every ACK, leaving a
    /// trail of dead events in the engine queue. Instead we keep at most
    /// one armed timer plus the *logical* deadline below: extending the
    /// deadline is a field write, and when the armed timer fires early
    /// (`now < rto_deadline`) it simply re-arms at the stored deadline —
    /// roughly one queue event per RTO period instead of one per ACK,
    /// with the real timeout firing at exactly the same instant.
    rto_armed: Option<(TimerHandle, Time)>,
    /// When the retransmission timeout is actually due.
    rto_deadline: Time,
    done: bool,
}

impl TcpSender {
    /// A sender with the given workload source (anything convertible to a
    /// [`FlowSource`], e.g. an on/off or incast generator), controller
    /// factory, and session hook.
    pub fn new(
        cfg: SenderConfig,
        source: impl Into<FlowSource>,
        cc_factory: CcFactory,
        hook: Box<dyn SessionHook>,
    ) -> Self {
        TcpSender {
            cfg,
            source: source.into(),
            cc_factory,
            hook,
            conn: None,
            reports: Vec::new(),
            flows_started: 0,
            pending_bytes: 0,
            rto_armed: None,
            rto_deadline: Time::ZERO,
            done: false,
        }
    }

    /// Completed-flow reports so far.
    pub fn reports(&self) -> &[FlowReport] {
        &self.reports
    }

    /// Number of flows started.
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// True once `max_flows` have completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// A synthesized report for the *in-progress* connection, if any,
    /// covering what it has delivered up to `now`. Long-running flows
    /// (Figure 2c) never complete, yet their throughput during on-time is
    /// exactly what the paper measures — this is how the harness sees it.
    pub fn partial_report(&self, now: Time) -> Option<FlowReport> {
        let conn = self.conn.as_ref()?;
        if conn.highest_acked == 0 {
            return None; // nothing delivered yet
        }
        let acked_bytes = if conn.highest_acked >= conn.total {
            conn.bytes
        } else {
            conn.highest_acked * u64::from(wire::MSS)
        };
        Some(FlowReport {
            flow: conn.flow,
            bytes: acked_bytes.min(conn.bytes),
            segments: conn.highest_acked,
            start: conn.start,
            end: now.max(conn.start),
            min_rtt: conn.min_rtt,
            mean_rtt_ms: if conn.rtt_samples > 0 {
                conn.rtt_sum_ms / conn.rtt_samples as f64
            } else {
                0.0
            },
            rtt_samples: conn.rtt_samples,
            retransmits: conn.retransmits,
            timeouts: conn.timeouts,
            recoveries: conn.recoveries,
            aborted: false,
            idle_restarts: conn.idle_restarts,
        })
    }

    /// The in-progress connection's current RTO, if a flow is active.
    /// Under a persistent blackhole this exposes the exponential backoff
    /// saturating at [`SenderConfig::max_rto`].
    pub fn current_rto(&self) -> Option<Dur> {
        self.conn.as_ref().map(|c| c.rto)
    }

    /// Consecutive RTO expirations without forward progress on the
    /// in-progress connection (zero when idle or progressing).
    pub fn consecutive_rtos(&self) -> u32 {
        self.conn.as_ref().map_or(0, |c| c.consecutive_rtos)
    }

    fn schedule_next_flow(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(max) = self.cfg.max_flows {
            if self.flows_started >= max {
                self.done = true;
                return;
            }
        }
        let plan = self.source.next_flow();
        self.pending_bytes = plan.bytes;
        ctx.set_timer_after(Dur::from_nanos(plan.off_ns), TIMER_START);
    }

    fn begin_flow(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let snapshot = self.hook.lookup(now, ctx);
        let mut cc = (self.cc_factory)(snapshot.as_ref());
        cc.on_flow_start(now);

        let bytes = self.pending_bytes.max(1);
        let total = bytes.div_ceil(u64::from(wire::MSS));
        let last_payload = (bytes - (total - 1) * u64::from(wire::MSS)) as u32;
        let flow = FlowId(self.cfg.flow_id_base + self.flows_started);
        self.flows_started += 1;

        self.conn = Some(Conn {
            flow,
            cc,
            total,
            bytes,
            last_payload,
            next_seq: 0,
            pipe_end: 0,
            ever_sent: 0,
            highest_acked: 0,
            dup_acks: 0,
            recovery: None,
            sacked: BTreeSet::new(),
            retx_sent: BTreeMap::new(),
            retx_unacked: BTreeSet::new(),
            hole_scan: 0,
            srtt: None,
            rttvar: Dur::ZERO,
            rto: Dur::from_secs(1),
            min_rtt: None,
            rtt_sum_ms: 0.0,
            rtt_samples: 0,
            start: now,
            retransmits: 0,
            timeouts: 0,
            recoveries: 0,
            consecutive_rtos: 0,
            idle_restarts: 0,
            pace_next: now,
            pace_pending: false,
            pace_handle: None,
        });
        self.try_send(ctx);
        self.restart_rto(ctx);
    }

    fn finish_flow(&mut self, ctx: &mut Ctx<'_>) {
        let conn = self.conn.take().expect("finish_flow with no connection");
        if let Some((h, _)) = self.rto_armed.take() {
            ctx.cancel_timer(h);
        }
        if let Some(h) = conn.pace_handle {
            ctx.cancel_timer(h);
        }
        let report = FlowReport {
            flow: conn.flow,
            bytes: conn.bytes,
            segments: conn.total,
            start: conn.start,
            end: ctx.now(),
            min_rtt: conn.min_rtt,
            mean_rtt_ms: if conn.rtt_samples > 0 {
                conn.rtt_sum_ms / conn.rtt_samples as f64
            } else {
                0.0
            },
            rtt_samples: conn.rtt_samples,
            retransmits: conn.retransmits,
            timeouts: conn.timeouts,
            recoveries: conn.recoveries,
            aborted: false,
            idle_restarts: conn.idle_restarts,
        };
        self.hook.report(&report, ctx);
        self.reports.push(report);
        self.schedule_next_flow(ctx);
    }

    /// Give up on the in-progress flow: the consecutive-RTO cap was hit,
    /// so the path is treated as unreachable. The flow dies loudly — an
    /// `aborted` report carrying the bytes delivered before the failure —
    /// and the sender moves on to its next scheduled flow, which doubles
    /// as the retry path once the network heals.
    fn abort_flow(&mut self, ctx: &mut Ctx<'_>) {
        let conn = self.conn.take().expect("abort_flow with no connection");
        if let Some((h, _)) = self.rto_armed.take() {
            ctx.cancel_timer(h);
        }
        if let Some(h) = conn.pace_handle {
            ctx.cancel_timer(h);
        }
        let acked_bytes = if conn.highest_acked >= conn.total {
            conn.bytes
        } else {
            (conn.highest_acked * u64::from(wire::MSS)).min(conn.bytes)
        };
        let report = FlowReport {
            flow: conn.flow,
            bytes: acked_bytes,
            segments: conn.highest_acked,
            start: conn.start,
            end: ctx.now(),
            min_rtt: conn.min_rtt,
            mean_rtt_ms: if conn.rtt_samples > 0 {
                conn.rtt_sum_ms / conn.rtt_samples as f64
            } else {
                0.0
            },
            rtt_samples: conn.rtt_samples,
            retransmits: conn.retransmits,
            timeouts: conn.timeouts,
            recoveries: conn.recoveries,
            aborted: true,
            idle_restarts: conn.idle_restarts,
        };
        self.hook.report(&report, ctx);
        self.reports.push(report);
        self.schedule_next_flow(ctx);
    }

    fn segment(&self, conn: &Conn, seq: u64, retx: bool) -> Packet {
        let payload = if seq + 1 == conn.total {
            conn.last_payload
        } else {
            wire::MSS
        };
        let mut pkt = packet_to(
            self.cfg.dst,
            self.cfg.dst_port,
            self.cfg.src_port,
            conn.flow,
            payload + wire::HEADER_BYTES,
        );
        pkt.seq = seq;
        let mut flags = Flags::empty();
        if seq + 1 == conn.total {
            flags = flags.union(Flags::FIN);
        }
        if retx {
            flags = flags.union(Flags::RETX);
        }
        // ECN negotiation is a sender-side property here: an ECN-capable
        // controller (DCTCP) marks its data ECT, so switches mark instead
        // of dropping where configured.
        if conn.cc.ecn_capable() {
            flags = flags.union(Flags::ECT);
        }
        pkt.flags = flags;
        pkt
    }

    /// Retransmit a known-lost hole: marks the scoreboard and sends
    /// immediately (bypasses pacing; counted in the pipe).
    fn retransmit_hole(&mut self, seq: u64, ctx: &mut Ctx<'_>) {
        let pkt = {
            let conn = self.conn.as_mut().expect("retransmit without connection");
            conn.retransmits += 1;
            let frontier = conn.ever_sent;
            conn.retx_sent.insert(seq, frontier);
            conn.retx_unacked.insert(seq);
            let conn = self.conn.as_ref().expect("just updated");
            self.segment(conn, seq, true)
        };
        ctx.send(pkt);
    }

    /// Send retransmissions and new data as the window, the SACK
    /// scoreboard, and pacing allow.
    fn try_send(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        loop {
            let Some(conn) = self.conn.as_ref() else {
                return;
            };
            let window = conn.cc.window().floor().max(1.0) as u64;
            // Limited transmit (RFC 3042): on the first two duplicate ACKs
            // send one new segment each beyond cwnd. The extra segments
            // keep the ACK clock alive, so a small-window flow can still
            // accumulate enough duplicate ACKs to fast-retransmit instead
            // of stalling into a timeout.
            let limited = if conn.recovery.is_none() {
                u64::from(conn.dup_acks.min(2))
            } else {
                0
            };
            if conn.pipe() >= window + limited {
                return;
            }
            // Priority 1: fill known-lost holes during recovery.
            let hole = {
                let conn = self.conn.as_mut().expect("checked above");
                conn.next_hole()
            };
            if let Some(seq) = hole {
                self.retransmit_hole(seq, ctx);
                continue;
            }
            // Priority 2: new data.
            let conn = self.conn.as_ref().expect("checked above");
            if conn.next_seq >= conn.total {
                return;
            }
            // Pacing gate applies to new data.
            if let Some(gap) = conn.cc.intersend() {
                if conn.pace_next > now {
                    let at = conn.pace_next;
                    let pending = conn.pace_pending;
                    let conn = self.conn.as_mut().expect("checked above");
                    if !pending {
                        conn.pace_pending = true;
                        conn.pace_handle = Some(ctx.set_timer_at(at, TIMER_PACE));
                    }
                    return;
                }
                let conn = self.conn.as_mut().expect("checked above");
                conn.pace_next = now + gap;
            }
            let conn = self.conn.as_mut().expect("checked above");
            // Skip segments the receiver already holds (SACKed survivors
            // of a go-back-N restart).
            while conn.next_seq < conn.total && conn.sacked.contains(&conn.next_seq) {
                conn.next_seq += 1;
                conn.pipe_end = conn.pipe_end.max(conn.next_seq);
            }
            if conn.next_seq >= conn.total {
                return;
            }
            let seq = conn.next_seq;
            let retx = seq < conn.ever_sent;
            conn.next_seq += 1;
            conn.pipe_end = conn.pipe_end.max(conn.next_seq);
            conn.ever_sent = conn.ever_sent.max(conn.next_seq);
            if retx {
                conn.retransmits += 1;
            }
            let pkt = {
                let conn = self.conn.as_ref().expect("checked above");
                self.segment(conn, seq, retx)
            };
            ctx.send(pkt);
        }
    }

    fn restart_rto(&mut self, ctx: &mut Ctx<'_>) {
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        if !conn.outstanding() {
            return;
        }
        conn.rto = conn.computed_rto(self.cfg.min_rto, self.cfg.max_rto);
        let deadline = ctx.now() + conn.rto;
        self.rto_deadline = deadline;
        match self.rto_armed {
            // A timer due no later than the new deadline is already armed;
            // let it fire early and re-arm itself (the per-ACK hot path is
            // just the deadline write above).
            Some((_, at)) if at <= deadline => {}
            stale => {
                // Deadline moved *earlier* (e.g. first RTT sample shrinks
                // the initial 1 s RTO), or nothing armed.
                if let Some((h, _)) = stale {
                    ctx.cancel_timer(h);
                }
                let h = ctx.set_timer_at(deadline, TIMER_RTO);
                self.rto_armed = Some((h, deadline));
            }
        }
    }

    fn on_ack(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let live_util = self.hook.live_util(ctx);
        let Some(conn) = self.conn.as_mut() else {
            return; // stale ack from a finished flow
        };
        if pkt.flow != conn.flow {
            return; // stale ack from a previous flow
        }

        conn.absorb_sack(&pkt);
        conn.detect_lost_retx();

        if pkt.ack > conn.highest_acked {
            let newly = pkt.ack - conn.highest_acked;
            conn.highest_acked = pkt.ack;
            conn.dup_acks = 0;
            // Forward progress ends any RTO-backoff spiral. Two or more
            // consecutive timeouts mean the path was dead for a while and
            // healed: count an idle restart (the window was already
            // collapsed by `on_rto`, and `restart_rto` below re-derives
            // the RTO from the surviving RTT state instead of the
            // backed-off value).
            if conn.consecutive_rtos >= 2 {
                conn.idle_restarts += 1;
            }
            conn.consecutive_rtos = 0;
            conn.advance_cumack(pkt.ack);

            // Karn's rule: only sample RTT for segments never retransmitted.
            let rtt = if !pkt.is_retx() && pkt.echo <= now && pkt.echo > Time::ZERO {
                let sample = now - pkt.echo;
                conn.take_rtt_sample(sample);
                Some(sample)
            } else {
                None
            };

            // Recovery exit check.
            if let Some(recover) = conn.recovery {
                if conn.highest_acked > recover {
                    conn.recovery = None;
                    conn.retx_sent.clear();
                    conn.retx_unacked.clear();
                }
            }

            let ev = AckEvent {
                now,
                rtt,
                min_rtt: conn.min_rtt,
                newly_acked: newly,
                sent_at: pkt.echo,
                shared_util: live_util,
                ece: pkt.flags.contains(Flags::ECE),
            };
            conn.cc.on_ack(&ev);

            if conn.highest_acked >= conn.total {
                self.finish_flow(ctx);
                return;
            }
            self.restart_rto(ctx);
        } else if pkt.ack == conn.highest_acked && conn.outstanding() {
            conn.dup_acks += 1;
            // Early retransmit (RFC 5827): with fewer segments outstanding
            // than `dupack_threshold + 1` the full duplicate-ACK count can
            // never arrive, so a squeezed flow (cwnd of 2–4 segments)
            // would convert every loss into a timeout. Lower the trigger
            // to outstanding − 1 in that regime.
            let ownd = conn.pipe_end.saturating_sub(conn.highest_acked);
            let threshold = if ownd < u64::from(self.cfg.dupack_threshold) + 1 {
                ownd.saturating_sub(1).max(1) as u32
            } else {
                self.cfg.dupack_threshold
            };
            // RFC 6675 counts SACKed segments above the hole as the loss
            // signal, not just contiguous duplicate ACKs: partial
            // cumulative advances reset `dup_acks`, but a scoreboard with
            // `threshold` segments above the hole is proof enough.
            let signal = conn
                .dup_acks
                .max(conn.sacked.len().min(u32::MAX as usize) as u32);
            if conn.recovery.is_none() && signal >= threshold {
                conn.recoveries += 1;
                conn.recovery = Some(conn.pipe_end.saturating_sub(1));
                conn.hole_scan = conn.highest_acked;
                conn.cc.on_loss(&LossEvent { now });
                // Fast retransmit of the first hole, unconditionally.
                let hole = conn.highest_acked;
                let already = conn.retx_sent.contains_key(&hole);
                if !already {
                    self.retransmit_hole(hole, ctx);
                }
                self.restart_rto(ctx);
            }
        }
        self.try_send(ctx);
    }

    /// The armed RTO timer fired. If the logical deadline has moved past
    /// the fire time (ACKs arrived since arming), this is a deferred
    /// re-arm, not a timeout.
    fn on_rto_fire(&mut self, ctx: &mut Ctx<'_>) {
        self.rto_armed = None; // the firing timer is consumed
        let now = ctx.now();
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        if !conn.outstanding() {
            return;
        }
        if now < self.rto_deadline {
            let deadline = self.rto_deadline;
            let h = ctx.set_timer_at(deadline, TIMER_RTO);
            self.rto_armed = Some((h, deadline));
            return;
        }
        conn.timeouts += 1;
        conn.consecutive_rtos += 1;
        // The abort verdict: N consecutive timeouts with zero progress
        // while backoff sits at max_rto means the path is unreachable.
        if self
            .cfg
            .max_consecutive_rtos
            .is_some_and(|cap| conn.consecutive_rtos >= cap)
        {
            self.abort_flow(ctx);
            return;
        }
        conn.cc.on_rto(now);
        conn.dup_acks = 0;
        conn.recovery = None;
        // Keep `sacked`: the receiver still holds those segments, so the
        // go-back-N resend below skips them instead of wasting the pipe.
        conn.retx_sent.clear();
        conn.retx_unacked.clear();
        conn.hole_scan = conn.highest_acked;
        // Go-back-N: everything beyond the cumulative ack is presumed
        // lost; drain the pipe and resume from the ack point.
        conn.next_seq = conn.highest_acked;
        conn.pipe_end = conn.highest_acked;
        // Exponential backoff until the next valid RTT sample.
        conn.rto = (conn.rto * 2).min(self.cfg.max_rto);
        let deadline = now + conn.rto;
        self.rto_deadline = deadline;
        let h = ctx.set_timer_at(deadline, TIMER_RTO);
        self.rto_armed = Some((h, deadline));
        self.try_send(ctx);
    }
}

impl Agent for TcpSender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.schedule_next_flow(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.is_ack() {
            self.on_ack(pkt, ctx);
        }
    }

    fn on_timer(&mut self, tok: u64, ctx: &mut Ctx<'_>) {
        match tok {
            TIMER_START => {
                if self.conn.is_none() && !self.done {
                    self.begin_flow(ctx);
                }
            }
            TIMER_RTO => self.on_rto_fire(ctx),
            // Stale pace timers are cancelled at flow end, so a firing one
            // always belongs to the current connection.
            TIMER_PACE => {
                if let Some(conn) = self.conn.as_mut() {
                    conn.pace_pending = false;
                    conn.pace_handle = None;
                }
                self.try_send(ctx);
            }
            _ => unreachable!("unknown timer token {tok}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedWindow;
    use crate::cubic::{Cubic, CubicParams};
    use crate::hook::NoHook;
    use crate::receiver::TcpReceiver;
    use phi_sim::engine::Simulator;
    use phi_sim::queue::Capacity;
    use phi_sim::topology::TopologyBuilder;
    use phi_workload::{OnOffConfig, OnOffSource, SeedRng};

    /// One sender/receiver pair over a configurable single link.
    fn pair_sim(
        rate_bps: u64,
        delay: Dur,
        cap: Capacity,
        bytes: f64,
        flows: u64,
        factory: CcFactory,
    ) -> (Simulator, phi_sim::packet::AgentId, phi_sim::packet::LinkId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        let (fwd, _rev) = b.add_duplex(a, z, rate_bps, delay, cap);
        let mut sim = Simulator::new(b.build());
        let mut cfg = SenderConfig::new(z, 80, 10);
        cfg.max_flows = Some(flows);
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: bytes,
                mean_off_secs: 0.05,
                deterministic: true,
            },
            SeedRng::new(1),
        );
        let s = sim.add_agent(
            a,
            10,
            Box::new(TcpSender::new(cfg, source, factory, Box::new(NoHook))),
        );
        sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
        (sim, s, fwd)
    }

    #[test]
    fn clean_transfer_completes_without_retransmits() {
        let (mut sim, s, _l) = pair_sim(
            10_000_000,
            Dur::from_millis(10),
            Capacity::Packets(1000),
            100_000.0,
            1,
            Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
        );
        sim.run_until(Time::from_secs(30));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(sender.is_done());
        assert_eq!(sender.reports().len(), 1);
        let r = &sender.reports()[0];
        assert_eq!(r.bytes, 100_000);
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.timeouts, 0);
        assert!(r.rtt_samples > 0);
        // Base RTT 20ms + serialization; min RTT should be close to that.
        let min = r.min_rtt.unwrap();
        assert!(min >= Dur::from_millis(20), "min rtt {min}");
        assert!(min < Dur::from_millis(30), "min rtt {min}");
    }

    #[test]
    fn lossy_bottleneck_recovers_and_completes() {
        // Tiny queue forces drops during slow start with the huge default
        // ssthresh; the transfer must still complete via fast retransmit.
        let (mut sim, s, l) = pair_sim(
            2_000_000,
            Dur::from_millis(20),
            Capacity::Packets(10),
            400_000.0,
            1,
            Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
        );
        sim.run_until(Time::from_secs(60));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(sender.is_done(), "transfer did not complete");
        let r = &sender.reports()[0];
        assert!(r.retransmits > 0, "expected retransmissions");
        assert!(r.recoveries > 0, "expected fast recovery episodes");
        assert!(sim.link_stats(l).dropped > 0);
        assert_eq!(r.bytes, 400_000);
    }

    #[test]
    fn sack_recovery_fills_many_holes_quickly() {
        // Cubic's default huge ssthresh overshoots a 20-packet queue during
        // slow start, dropping a burst of segments at once. With the SACK
        // scoreboard, recovery repairs many holes per RTT, so the 400 KB
        // transfer finishes promptly; one-hole-per-RTT recovery would need
        // retransmits x RTT ≈ several seconds.
        let (mut sim, s, _l) = pair_sim(
            20_000_000,
            Dur::from_millis(12), // 24 ms base RTT
            Capacity::Packets(20),
            400_000.0,
            1,
            Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
        );
        sim.run_until(Time::from_secs(30));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(sender.is_done(), "transfer did not complete");
        let r = &sender.reports()[0];
        assert!(r.retransmits > 10, "mass loss expected: {}", r.retransmits);
        let dur = r.duration();
        let one_per_rtt = Dur::from_millis(24 * r.retransmits);
        assert!(
            dur < Dur::from_millis(1500) && dur < one_per_rtt / 2,
            "SACK recovery too slow: {dur} for {} retx",
            r.retransmits
        );
    }

    #[test]
    fn sequential_flows_reset_congestion_state() {
        let (mut sim, s, _l) = pair_sim(
            10_000_000,
            Dur::from_millis(10),
            Capacity::Packets(1000),
            50_000.0,
            3,
            Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
        );
        sim.run_until(Time::from_secs(60));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert_eq!(sender.reports().len(), 3);
        // Flow ids are sequential.
        let ids: Vec<u64> = sender.reports().iter().map(|r| r.flow.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Flows don't overlap in time.
        for w in sender.reports().windows(2) {
            assert!(w[1].start >= w[0].end);
        }
    }

    #[test]
    fn fixed_window_saturates_link() {
        // Window far above the BDP and more data than fits in the run:
        // the link should stay busy nearly the whole time.
        let (mut sim, _s, l) = pair_sim(
            5_000_000,
            Dur::from_millis(10),
            Capacity::Bytes(200_000),
            100_000_000.0, // never finishes within the deadline
            1,
            Box::new(|_| Box::new(FixedWindow::new(100.0))),
        );
        let end = sim.run_until(Time::from_secs(10));
        let elapsed = end.saturating_since(Time::ZERO);
        let util = sim.link_stats(l).utilization(elapsed);
        assert!(util > 0.9, "utilization {util}");
    }

    #[test]
    fn extreme_queue_still_completes() {
        let (mut sim, s, _l) = pair_sim(
            500_000,
            Dur::from_millis(50),
            Capacity::Packets(1),
            200_000.0,
            1,
            Box::new(|_| Box::new(FixedWindow::new(64.0))),
        );
        sim.run_until(Time::from_secs(300));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(sender.is_done(), "transfer did not complete");
        let r = &sender.reports()[0];
        assert!(
            r.timeouts > 0 || r.recoveries > 0,
            "expected loss recovery (retransmits {})",
            r.retransmits
        );
    }

    #[test]
    fn partial_report_tracks_in_progress_flow() {
        let (mut sim, s, _l) = pair_sim(
            5_000_000,
            Dur::from_millis(10),
            Capacity::Packets(1000),
            100_000_000.0, // will not finish
            1,
            Box::new(|_| Box::new(FixedWindow::new(50.0))),
        );
        sim.run_until(Time::from_secs(5));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(!sender.is_done());
        assert!(sender.reports().is_empty());
        let p = sender.partial_report(Time::from_secs(5)).unwrap();
        assert!(p.bytes > 1_000_000, "partial bytes {}", p.bytes);
        assert!(p.bytes < 100_000_000);
        assert!(p.rtt_samples > 0);
        // Roughly link rate over the window.
        let mbps = p.throughput_bps() / 1e6;
        assert!(mbps > 3.0 && mbps <= 5.2, "partial throughput {mbps}");
    }

    /// Like `pair_sim`, but with an impairment plan installed on the
    /// forward (data) link and a consecutive-RTO abort cap on the sender.
    fn faulty_pair(
        plan: phi_sim::faults::ImpairmentPlan,
        max_consecutive_rtos: Option<u32>,
        max_rto: Dur,
        bytes: f64,
    ) -> (Simulator, phi_sim::packet::AgentId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        let (fwd, _rev) = b.add_duplex(
            a,
            z,
            2_000_000,
            Dur::from_millis(20),
            Capacity::Packets(100),
        );
        let mut sim = Simulator::new(b.build());
        sim.install_impairments(fwd, plan, &SeedRng::new(77));
        let mut cfg = SenderConfig::new(z, 80, 10);
        cfg.max_flows = Some(1);
        cfg.max_rto = max_rto;
        cfg.max_consecutive_rtos = max_consecutive_rtos;
        let source = OnOffSource::new(
            OnOffConfig {
                mean_on_bytes: bytes,
                mean_off_secs: 0.01,
                deterministic: true,
            },
            SeedRng::new(1),
        );
        let s = sim.add_agent(
            a,
            10,
            Box::new(TcpSender::new(
                cfg,
                source,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
                Box::new(NoHook),
            )),
        );
        sim.add_agent(z, 80, Box::new(TcpReceiver::new()));
        (sim, s)
    }

    /// A permanent blackhole in mid-transfer.
    fn blackhole_plan() -> phi_sim::faults::ImpairmentPlan {
        phi_sim::faults::ImpairmentPlan::new()
            .outage(Time::from_millis(100), Time::from_secs(100_000))
    }

    #[test]
    fn permanent_blackhole_pins_rto_at_max_then_aborts() {
        let max_rto = Dur::from_secs(2);
        let (mut sim, s) = faulty_pair(blackhole_plan(), Some(6), max_rto, 500_000.0);
        // Mid-spiral: backoff must have saturated at max_rto with several
        // consecutive timeouts on the books, flow still alive.
        sim.run_until(Time::from_secs(4));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(
            sender.consecutive_rtos() >= 3,
            "expected an RTO spiral, got {}",
            sender.consecutive_rtos()
        );
        assert_eq!(
            sender.current_rto(),
            Some(max_rto),
            "backoff must pin at max_rto"
        );
        assert!(sender.reports().is_empty(), "no verdict before the cap");

        sim.run_until(Time::from_secs(60));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert_eq!(sender.reports().len(), 1, "the flow must die loudly");
        let r = &sender.reports()[0];
        assert!(r.aborted, "verdict must be an abort: {r:?}");
        assert_eq!(r.timeouts, 6, "abort exactly at the cap");
        assert_eq!(r.idle_restarts, 0);
        assert!(r.bytes > 0, "pre-outage progress is reported");
        assert!(r.bytes < 500_000, "the transfer cannot have finished");
        assert!(sender.is_done());
        assert!(sender.current_rto().is_none(), "no connection after abort");
    }

    #[test]
    fn abort_is_deterministic() {
        let run = || {
            let (mut sim, s) = faulty_pair(blackhole_plan(), Some(5), Dur::from_secs(1), 500_000.0);
            sim.run_until(Time::from_secs(60));
            let sender = sim.agent_as::<TcpSender>(s).unwrap();
            let r = &sender.reports()[0];
            (r.end, r.bytes, r.timeouts, sim.events_processed())
        };
        let first = run();
        assert_eq!(run(), first);
        assert_eq!(first.2, 5);
    }

    #[test]
    fn heal_before_cap_triggers_idle_restart_and_completion() {
        // Outage 100 ms..2 s, cap of 10: the spiral reaches 3-4 timeouts,
        // then the healed link lets the pending go-back-N retransmission
        // through and the transfer completes normally.
        let plan = phi_sim::faults::ImpairmentPlan::new()
            .outage(Time::from_millis(100), Time::from_secs(2));
        let (mut sim, s) = faulty_pair(plan, Some(10), Dur::from_secs(2), 200_000.0);
        sim.run_until(Time::from_secs(120));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(sender.is_done(), "transfer must complete after the heal");
        let r = &sender.reports()[0];
        assert!(!r.aborted, "heal must beat the abort cap: {r:?}");
        assert_eq!(r.bytes, 200_000);
        assert!(r.timeouts >= 2, "the outage must have cost timeouts: {r:?}");
        assert!(
            r.idle_restarts >= 1,
            "recovery after >= 2 consecutive RTOs is an idle restart: {r:?}"
        );
    }

    #[test]
    fn no_cap_means_classic_spin_forever() {
        // Without the cap the sender never gives up: same blackhole, no
        // report, connection still alive with rto pinned at max.
        let (mut sim, s) = faulty_pair(blackhole_plan(), None, Dur::from_secs(1), 500_000.0);
        sim.run_until(Time::from_secs(60));
        let sender = sim.agent_as::<TcpSender>(s).unwrap();
        assert!(sender.reports().is_empty());
        assert!(!sender.is_done());
        assert_eq!(sender.current_rto(), Some(Dur::from_secs(1)));
        assert!(sender.consecutive_rtos() > 10);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let (mut sim, s, l) = pair_sim(
                2_000_000,
                Dur::from_millis(20),
                Capacity::Packets(20),
                300_000.0,
                2,
                Box::new(|_| Box::new(Cubic::new(CubicParams::default()))),
            );
            sim.run_until(Time::from_secs(120));
            let sender = sim.agent_as::<TcpSender>(s).unwrap();
            let ends: Vec<Time> = sender.reports().iter().map(|r| r.end).collect();
            (ends, sim.link_stats(l).dropped, sim.events_processed())
        };
        assert_eq!(run(), run());
    }
}
