//! # phi-tcp — transport endpoints for phi-sim
//!
//! A window-based TCP-like transport with pluggable congestion control,
//! faithful to what the paper's ns-2 experiments exercise:
//!
//! * [`cubic::Cubic`] — TCP Cubic with the paper's three tunables
//!   (`windowInit_`, `initial_ssthresh`, β; Tables 1–2),
//! * [`newreno::NewReno`] — the AIMD baseline (with a weighted-increase
//!   knob used by Phi's cross-flow prioritizer),
//! * [`dctcp::Dctcp`] — ECN-proportional datacenter congestion control
//!   (g-EWMA of the marked fraction, one proportional cut per RTT),
//! * [`sender::TcpSender`] / [`receiver::TcpReceiver`] — connection
//!   lifecycle over the paper's on/off workload, fast retransmit after a
//!   configurable duplicate-ACK threshold, NewReno partial-ACK recovery,
//!   Jacobson/Karels RTO with exponential backoff and go-back-N restart,
//! * [`hook::SessionHook`] — the lookup-at-start / report-at-end contact
//!   points where Phi's context server plugs in (§2.2.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod cubic;
pub mod dctcp;
pub mod hook;
pub mod newreno;
pub mod receiver;
pub mod report;
pub mod sender;

pub use cc::{AckEvent, CongestionControl, FixedWindow, LossEvent};
pub use cubic::{Cubic, CubicParams};
pub use dctcp::{Dctcp, DctcpParams};
pub use hook::{ContextSnapshot, NoHook, SessionHook};
pub use newreno::{NewReno, NewRenoParams};
pub use receiver::TcpReceiver;
pub use report::{FlowReport, RunMetrics};
pub use sender::{CcFactory, SenderConfig, TcpSender};
