//! The congestion-control interface.
//!
//! A [`CongestionControl`] owns the sending policy of one connection: a
//! window (in segments) and optionally a pacing gap (Remy-style schemes
//! control both). The transport machinery in [`crate::sender`] feeds it
//! acknowledgment, loss, and timeout events and obeys the resulting
//! window/pacing; retransmission logic itself is transport business and
//! stays out of this trait.
//!
//! [`AckEvent::shared_util`] is Phi's entry point: when a session hook
//! supplies a shared bottleneck-utilization estimate (from the context
//! server, or from the ideal oracle), it rides along with every ACK so
//! that context-aware controllers like Remy-Phi can react to it.

use phi_sim::time::{Dur, Time};

/// Everything a controller may want to know about an arriving ACK.
#[derive(Debug, Clone)]
pub struct AckEvent {
    /// Current simulated time.
    pub now: Time,
    /// RTT sample for the acked segment, if one was measurable
    /// (Karn's rule: none for retransmitted segments).
    pub rtt: Option<Dur>,
    /// Smallest RTT observed on this connection so far.
    pub min_rtt: Option<Dur>,
    /// Segments newly acknowledged cumulatively by this ACK.
    pub newly_acked: u64,
    /// Time the acked segment was sent (echoed by the receiver).
    pub sent_at: Time,
    /// Shared bottleneck utilization from Phi, when available, in [0, 1].
    pub shared_util: Option<f64>,
    /// True when the ACK carried an ECN Echo: the receiver saw a
    /// Congestion-Experienced mark on the acked segment. Always false
    /// unless the path's switches mark and the controller opted in via
    /// [`CongestionControl::ecn_capable`].
    pub ece: bool,
}

/// A loss detected via duplicate ACKs (entry into fast recovery).
#[derive(Debug, Clone, Copy)]
pub struct LossEvent {
    /// Current simulated time.
    pub now: Time,
}

/// The sending policy of one connection.
/// `Send` because senders (and the congestion controllers they own) ride
/// domain simulators onto parallel-engine worker threads.
pub trait CongestionControl: Send {
    /// A fresh connection is starting at `now`. Controllers reset all
    /// transient state here (each on-period is a fresh connection, §2.2.1).
    fn on_flow_start(&mut self, now: Time);

    /// Current congestion window, in segments (≥ 1).
    fn window(&self) -> f64;

    /// Current pacing gap between sends, if the scheme paces.
    /// `None` means pure window-based clocking.
    fn intersend(&self) -> Option<Dur> {
        None
    }

    /// An ACK advanced the cumulative acknowledgment.
    fn on_ack(&mut self, ev: &AckEvent);

    /// Packet loss inferred from duplicate ACKs; called once per recovery
    /// episode (at most one window reduction per round trip).
    fn on_loss(&mut self, ev: &LossEvent);

    /// The retransmission timer fired.
    fn on_rto(&mut self, now: Time);

    /// Whether the sender should mark outgoing segments ECN-Capable
    /// Transport (ECT), inviting switches to mark instead of drop.
    /// Default false; DCTCP overrides to true.
    fn ecn_capable(&self) -> bool {
        false
    }

    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;
}

/// A fixed-window controller, useful for tests and for generating
/// deterministic load (it never reacts to anything).
#[derive(Debug, Clone)]
pub struct FixedWindow {
    window: f64,
}

impl FixedWindow {
    /// A controller that always reports `window` segments.
    pub fn new(window: f64) -> Self {
        assert!(window >= 1.0, "window must be at least one segment");
        FixedWindow { window }
    }
}

impl CongestionControl for FixedWindow {
    fn on_flow_start(&mut self, _now: Time) {}
    fn window(&self) -> f64 {
        self.window
    }
    fn on_ack(&mut self, _ev: &AckEvent) {}
    fn on_loss(&mut self, _ev: &LossEvent) {}
    fn on_rto(&mut self, _now: Time) {}
    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_window_never_moves() {
        let mut cc = FixedWindow::new(10.0);
        cc.on_flow_start(Time::ZERO);
        assert_eq!(cc.window(), 10.0);
        cc.on_ack(&AckEvent {
            now: Time::from_secs(1),
            rtt: Some(Dur::from_millis(100)),
            min_rtt: Some(Dur::from_millis(100)),
            newly_acked: 5,
            sent_at: Time::ZERO,
            shared_util: None,
            ece: false,
        });
        cc.on_loss(&LossEvent {
            now: Time::from_secs(2),
        });
        cc.on_rto(Time::from_secs(3));
        assert_eq!(cc.window(), 10.0);
        assert_eq!(cc.intersend(), None);
        assert_eq!(cc.name(), "fixed");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn fixed_window_rejects_tiny() {
        FixedWindow::new(0.5);
    }
}
