//! Per-flow reports and per-run aggregate metrics.
//!
//! The paper's figures plot, per run: aggregate **throughput** computed
//! only over on-times (bits transferred / on-time), bottleneck **queueing
//! delay**, and **packet loss rate**. [`FlowReport`] carries what one
//! connection experienced; [`RunMetrics`] aggregates a whole experiment.

use phi_sim::packet::FlowId;
use phi_sim::stats::OnlineStats;
use phi_sim::time::{Dur, Time};
use serde::{Deserialize, Serialize};

/// What one completed connection experienced, as reported by its sender.
/// This is also exactly the record a Phi sender reports to the context
/// server when the connection ends (§2.2.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowReport {
    /// The flow.
    pub flow: FlowId,
    /// Application bytes transferred.
    pub bytes: u64,
    /// Segments transferred (excluding retransmissions).
    pub segments: u64,
    /// Connection start (first send).
    pub start: Time,
    /// Connection end (all data acked).
    pub end: Time,
    /// Smallest RTT sample, if any.
    pub min_rtt: Option<Dur>,
    /// Mean RTT over samples, milliseconds.
    pub mean_rtt_ms: f64,
    /// Number of RTT samples taken.
    pub rtt_samples: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Retransmission-timeout episodes.
    pub timeouts: u64,
    /// Fast-recovery episodes (triple-duplicate-ACK losses).
    pub recoveries: u64,
    /// True if the sender gave up on this flow after hitting its
    /// consecutive-RTO cap (the path was unreachable); `bytes` then
    /// reflects what was delivered before the abort.
    pub aborted: bool,
    /// Times the connection resumed making progress after two or more
    /// consecutive RTO backoffs — i.e. the path healed and the sender
    /// restarted from idle instead of aborting.
    pub idle_restarts: u64,
}

impl FlowReport {
    /// On-time of this connection.
    pub fn duration(&self) -> Dur {
        self.end.saturating_since(self.start)
    }

    /// Goodput in bits/s over the connection's on-time.
    pub fn throughput_bps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / d
        }
    }

    /// Mean queueing delay inferred from RTT inflation over `base_rtt`, ms.
    pub fn rtt_inflation_ms(&self, base_rtt: Dur) -> f64 {
        (self.mean_rtt_ms - base_rtt.as_millis_f64()).max(0.0)
    }
}

/// Aggregate metrics for one experiment run, in the units the paper plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Mean per-connection throughput over on-times, Mbit/s.
    pub throughput_mbps: f64,
    /// Mean queueing delay at the bottleneck, milliseconds.
    pub queueing_delay_ms: f64,
    /// Packet loss rate at the bottleneck, fraction in [0, 1].
    pub loss_rate: f64,
    /// Mean RTT experienced across flows, milliseconds.
    pub mean_rtt_ms: f64,
    /// Bottleneck utilization over the run, fraction in [0, 1].
    pub utilization: f64,
    /// Completed connections (aborted flows are excluded).
    pub flows_completed: u64,
    /// Flows the sender aborted after exhausting its RTO budget.
    pub flows_aborted: u64,
    /// Total bytes delivered by completed connections.
    pub bytes: u64,
}

impl RunMetrics {
    /// Aggregate flow reports plus bottleneck-link observations.
    ///
    /// `queueing_delay_ms`, `loss_rate`, and `utilization` come from the
    /// bottleneck link; throughput is the mean of per-connection on-time
    /// throughputs (the paper's "throughput = bits transferred / ontime").
    pub fn from_reports(
        reports: &[FlowReport],
        queueing_delay_ms: f64,
        loss_rate: f64,
        utilization: f64,
    ) -> RunMetrics {
        let mut tput = OnlineStats::new();
        let mut rtt = OnlineStats::new();
        let mut bytes = 0u64;
        let mut aborted = 0u64;
        for r in reports {
            // Aborted flows died on an unreachable path; their (mostly
            // zero) throughput would poison the mean the paper plots, so
            // they are counted separately and excluded from the averages.
            if r.aborted {
                aborted += 1;
                continue;
            }
            if r.duration().is_zero() {
                continue;
            }
            tput.push(r.throughput_bps() / 1e6);
            if r.rtt_samples > 0 {
                rtt.push(r.mean_rtt_ms);
            }
            bytes += r.bytes;
        }
        RunMetrics {
            throughput_mbps: tput.mean(),
            queueing_delay_ms,
            loss_rate,
            mean_rtt_ms: rtt.mean(),
            utilization,
            flows_completed: reports.len() as u64 - aborted,
            flows_aborted: aborted,
            bytes,
        }
    }

    /// Mean of several runs' metrics (the paper averages across n = 8 runs).
    pub fn mean_of(runs: &[RunMetrics]) -> RunMetrics {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        RunMetrics {
            throughput_mbps: runs.iter().map(|r| r.throughput_mbps).sum::<f64>() / n,
            queueing_delay_ms: runs.iter().map(|r| r.queueing_delay_ms).sum::<f64>() / n,
            loss_rate: runs.iter().map(|r| r.loss_rate).sum::<f64>() / n,
            mean_rtt_ms: runs.iter().map(|r| r.mean_rtt_ms).sum::<f64>() / n,
            utilization: runs.iter().map(|r| r.utilization).sum::<f64>() / n,
            flows_completed: (runs.iter().map(|r| r.flows_completed).sum::<u64>() as f64 / n)
                .round() as u64,
            flows_aborted: (runs.iter().map(|r| r.flows_aborted).sum::<u64>() as f64 / n).round()
                as u64,
            bytes: (runs.iter().map(|r| r.bytes).sum::<u64>() as f64 / n).round() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bytes: u64, secs: u64, mean_rtt_ms: f64) -> FlowReport {
        FlowReport {
            flow: FlowId(1),
            bytes,
            segments: bytes / 1448,
            start: Time::from_secs(1),
            end: Time::from_secs(1 + secs),
            min_rtt: Some(Dur::from_millis(150)),
            mean_rtt_ms,
            rtt_samples: 10,
            retransmits: 0,
            timeouts: 0,
            recoveries: 0,
            aborted: false,
            idle_restarts: 0,
        }
    }

    #[test]
    fn throughput_is_bits_over_ontime() {
        let r = report(1_000_000, 2, 160.0);
        assert!((r.throughput_bps() - 4_000_000.0).abs() < 1.0);
        assert_eq!(r.duration(), Dur::from_secs(2));
    }

    #[test]
    fn rtt_inflation_clamps_at_zero() {
        let r = report(1000, 1, 140.0);
        assert_eq!(r.rtt_inflation_ms(Dur::from_millis(150)), 0.0);
        let r = report(1000, 1, 170.0);
        assert!((r.rtt_inflation_ms(Dur::from_millis(150)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn run_metrics_aggregates() {
        let reports = vec![report(1_000_000, 1, 160.0), report(2_000_000, 1, 180.0)];
        let m = RunMetrics::from_reports(&reports, 12.5, 0.01, 0.6);
        assert!((m.throughput_mbps - 12.0).abs() < 1e-9); // (8 + 16)/2
        assert!((m.mean_rtt_ms - 170.0).abs() < 1e-9);
        assert_eq!(m.flows_completed, 2);
        assert_eq!(m.bytes, 3_000_000);
        assert_eq!(m.queueing_delay_ms, 12.5);
    }

    #[test]
    fn mean_of_runs() {
        let a = RunMetrics {
            throughput_mbps: 1.0,
            queueing_delay_ms: 10.0,
            loss_rate: 0.0,
            mean_rtt_ms: 150.0,
            utilization: 0.4,
            flows_completed: 10,
            flows_aborted: 2,
            bytes: 100,
        };
        let b = RunMetrics {
            throughput_mbps: 3.0,
            queueing_delay_ms: 20.0,
            loss_rate: 0.02,
            mean_rtt_ms: 170.0,
            utilization: 0.6,
            flows_completed: 20,
            flows_aborted: 4,
            bytes: 300,
        };
        let m = RunMetrics::mean_of(&[a, b]);
        assert!((m.throughput_mbps - 2.0).abs() < 1e-12);
        assert!((m.queueing_delay_ms - 15.0).abs() < 1e-12);
        assert!((m.loss_rate - 0.01).abs() < 1e-12);
        assert_eq!(m.flows_completed, 15);
        assert_eq!(m.flows_aborted, 3);
    }

    #[test]
    fn aborted_flows_excluded_from_throughput_mean() {
        let healthy = report(1_000_000, 2, 160.0); // 4 Mbit/s
        let mut dead = report(2_000, 40, 0.0); // crawled, then died
        dead.aborted = true;
        dead.rtt_samples = 0;
        let m = RunMetrics::from_reports(&[healthy, dead], 0.0, 0.0, 0.5);
        assert!((m.throughput_mbps - 4.0).abs() < 1e-9, "{m:?}");
        assert_eq!(m.flows_completed, 1);
        assert_eq!(m.flows_aborted, 1);
        assert_eq!(m.bytes, 1_000_000, "aborted bytes excluded from total");
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn mean_of_empty_panics() {
        RunMetrics::mean_of(&[]);
    }
}
