//! Shared plumbing for the experiment harnesses.
//!
//! Every table and figure of the paper has a bench target under
//! `benches/` (run with `cargo bench`). Each harness prints the paper's
//! rows/series to stdout and writes a machine-readable JSON record to
//! `target/phi-results/<name>.json` so EXPERIMENTS.md can cite exact
//! numbers.
//!
//! Budget control: the default configuration finishes the whole suite in
//! minutes; set `PHI_FULL=1` for the paper-scale grids (Table 2's full
//! 576-point sweep, n = 8 runs, longer simulations). Independent runs fan
//! out over `PHI_JOBS` worker threads (default: all cores) with
//! bit-identical results for any worker count — see
//! [`phi_core::runpool`].

use std::io::Write;
use std::path::PathBuf;

use phi_core::runpool::RunPool;
use serde::Serialize;

/// True when `PHI_FULL=1`: run paper-scale configurations.
pub fn full_mode() -> bool {
    std::env::var("PHI_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Worker threads the harnesses will use (the `PHI_JOBS` knob; unset or
/// `0` means all available cores). Sweeps and repeated runs pick this up
/// themselves via [`RunPool::from_env`]; harnesses call this to report
/// the setting alongside results.
pub fn jobs() -> usize {
    RunPool::from_env().workers()
}

/// Experiment scale knobs derived from the mode.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Repetitions per configuration (paper: n = 8).
    pub runs: usize,
    /// Simulated seconds per run.
    pub sim_secs: u64,
    /// Whether to use the full Table 2 grid.
    pub full_grid: bool,
}

/// The scale for the current mode.
pub fn scale() -> Scale {
    if full_mode() {
        Scale {
            runs: 8,
            sim_secs: 60,
            full_grid: true,
        }
    } else {
        Scale {
            runs: 3,
            sim_secs: 30,
            full_grid: false,
        }
    }
}

/// Where JSON results land: `<workspace>/target/phi-results`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // Benches run with CWD = the bench crate; anchor at the
            // workspace root two levels up from this crate's manifest.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        })
        .join("phi-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Persist a serializable result set for EXPERIMENTS.md provenance.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    f.write_all(json.as_bytes()).expect("write results");
    println!("\n[results written to {}]", path.display());
}

/// Print a section header (with the active worker-thread count, so runs
/// are attributable to their parallelism setting).
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}  [PHI_JOBS={}]", jobs());
    println!("{}", "=".repeat(74));
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_sane_in_both_modes() {
        let s = scale();
        assert!(s.runs >= 2 || !s.full_grid);
        assert!(s.sim_secs >= 10);
    }

    #[test]
    fn jobs_is_positive() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(pct(0.0), "0.00%");
    }

    #[test]
    fn write_json_roundtrips() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        write_json("selftest", &T { x: 7 });
        let path = results_dir().join("selftest.json");
        let back = std::fs::read_to_string(path).unwrap();
        assert!(back.contains("\"x\": 7"));
    }
}
