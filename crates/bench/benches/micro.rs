//! MB — Criterion micro-benchmarks of the hot paths.
//!
//! These measure the implementation itself (not the paper's results):
//! the simulator's event throughput, the context-server codec, the
//! quantile sketch, and the whisker-tree lookup — the operations that
//! bound how large an experiment or how busy a context server can get.
//!
//! The `engine` module is the perf trajectory for the event engine: it
//! runs a fixed multihop blast scenario plus an end-to-end Cubic
//! experiment, prints events/sec and ns/event, and (in full mode) writes
//! `BENCH_engine.json` at the repo root so successive PRs can compare
//! against each other. `--test` runs a reduced-scale smoke pass for CI.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use std::rc::Rc;

use phi_core::context::{ContextStore, FlowSummary, PathKey, StoreConfig};
use phi_core::harness::{provision_cubic, run_experiment, ExperimentSpec};
use phi_core::wire::{encode, Decoder, Message};
use phi_predict::LogHistogram;
use phi_remy::{Action, WhiskerTree};
use phi_sim::time::Dur;
use phi_tcp::CubicParams;
use phi_workload::{OnOffConfig, SeedRng};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("dumbbell_4x5s_cubic", |b| {
        b.iter(|| {
            let spec = ExperimentSpec::new(
                4,
                OnOffConfig {
                    mean_on_bytes: 200_000.0,
                    mean_off_secs: 0.5,
                    deterministic: false,
                },
                Dur::from_secs(5),
                42,
            );
            let r = run_experiment(&spec, provision_cubic(CubicParams::default()));
            criterion::black_box(r.events)
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let report = Message::Report {
        path: PathKey(42),
        summary: FlowSummary {
            bytes: 1_000_000,
            duration_ns: 2_000_000_000,
            mean_rtt_ms: 163.0,
            min_rtt_ms: 150.0,
            retransmits: 2,
            timeouts: 0,
        },
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_report", |b| {
        b.iter(|| criterion::black_box(encode(&report)))
    });
    let frame = encode(&report);
    g.bench_function("decode_report", |b| {
        b.iter_batched(
            Decoder::new,
            |mut d| {
                d.extend(&frame);
                criterion::black_box(d.next().expect("decode"))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_store");
    g.bench_function("lookup_report_cycle", |b| {
        let mut store = ContextStore::new(StoreConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            store.lookup(PathKey(1), t);
            store.report(
                PathKey(1),
                t + 500_000,
                &FlowSummary {
                    bytes: 500_000,
                    duration_ns: 400_000,
                    mean_rtt_ms: 160.0,
                    min_rtt_ms: 150.0,
                    retransmits: 0,
                    timeouts: 0,
                },
            );
        })
    });
    g.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.throughput(Throughput::Elements(1));
    g.bench_function("log_histogram_record", |b| {
        let mut h = LogHistogram::for_latency_ms();
        let mut rng = SeedRng::new(7);
        b.iter(|| h.record(criterion::black_box(rng.range_f64(0.5, 5_000.0))))
    });
    g.bench_function("log_histogram_quantile", |b| {
        let mut h = LogHistogram::for_latency_ms();
        let mut rng = SeedRng::new(7);
        for _ in 0..100_000 {
            h.record(rng.range_f64(0.5, 5_000.0));
        }
        b.iter(|| criterion::black_box(h.quantile(0.95)))
    });
    g.finish();
}

fn bench_whiskers(c: &mut Criterion) {
    let mut g = c.benchmark_group("whisker_tree");
    let mut tree = WhiskerTree::single(Action::initial());
    for _ in 0..5 {
        // Split the first whisker repeatedly to build a 6-rule tree.
        tree.split(0);
    }
    let tree = Rc::new(tree);
    let mut rng = SeedRng::new(9);
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup_6_rules", |b| {
        b.iter(|| {
            let p = [rng.unit(), rng.unit(), rng.unit(), rng.unit()];
            criterion::black_box(tree.index_of(&p))
        })
    });
    g.finish();
}

/// Engine perf trajectory: fixed scenarios timed wall-clock, with the
/// results persisted to `BENCH_engine.json` for cross-PR comparison.
mod engine {
    use std::any::Any;
    use std::time::Instant;

    use phi_core::harness::{provision_cubic, run_experiment, ExperimentSpec};
    use phi_sim::engine::{packet_to, Agent, Ctx, SchedStats, Simulator};
    use phi_sim::packet::{FlowId, NodeId, Packet};
    use phi_sim::par::ParallelSimulator;
    use phi_sim::queue::Capacity;
    use phi_sim::time::Dur;
    use phi_sim::topology::{parking_lot, ParkingLotSpec};
    use phi_tcp::CubicParams;
    use phi_workload::OnOffConfig;

    /// Fires a timer every `gap`, sending one packet per firing — the
    /// TxEnd/Deliver/Timer mix the engine sees from any paced source.
    struct Pump {
        peer: NodeId,
        peer_port: u16,
        port: u16,
        remaining: u32,
        size: u32,
        gap: Dur,
        flow: FlowId,
    }

    impl Agent for Pump {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Dur::ZERO, 0);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                let mut p = packet_to(self.peer, self.peer_port, self.port, self.flow, self.size);
                p.seq = u64::from(self.remaining);
                ctx.send(p);
                ctx.set_timer_after(self.gap, 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts deliveries.
    #[derive(Default)]
    struct Drain {
        received: u64,
    }

    impl Agent for Drain {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.received += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn blast_spec() -> ParkingLotSpec {
        ParkingLotSpec {
            hops: 4,
            backbone_bps: 50_000_000,
            hop_delay: Dur::from_millis(1),
            capacity: Capacity::Packets(100),
            access_bps: 1_000_000_000,
        }
    }

    fn blast_pump(i: usize, dst: NodeId, packets_per_source: u32) -> Box<Pump> {
        Box::new(Pump {
            peer: dst,
            peer_port: 80,
            port: 10,
            remaining: packets_per_source,
            size: 1000,
            gap: Dur::from_micros(20),
            flow: FlowId(i as u64),
        })
    }

    /// Multihop blast: a 4-hop parking lot with the long-path pair plus
    /// every cross pair pumping packets through the backbone. Exercises
    /// scheduling, multihop forwarding, port dispatch, drop-tail
    /// queueing, and timers — engine cost, not transport cost.
    fn blast(packets_per_source: u32) -> (u64, f64, SchedStats) {
        let lot = parking_lot(&blast_spec());
        let mut sim = Simulator::new(lot.topology.clone());
        let mut pairs = vec![lot.long_path];
        pairs.extend(lot.cross.iter().copied());
        for (i, (src, dst)) in pairs.iter().enumerate() {
            sim.add_agent(*src, 10, blast_pump(i, *dst, packets_per_source));
            sim.add_agent(*dst, 80, Box::<Drain>::default());
        }
        let t0 = Instant::now();
        sim.run_to_completion();
        let wall = t0.elapsed().as_secs_f64();
        (sim.events_processed(), wall, sim.sched_stats())
    }

    /// One `parallel_multihop` measurement: the blast scenario through
    /// the conservative parallel engine at `k` domains.
    struct ParBlast {
        domains: u32,
        events: u64,
        wall: f64,
        barrier_rounds: u64,
        cross_domain: u64,
        /// Cut crossings per event processed — how much of the workload
        /// actually rides the barrier protocol.
        cross_fraction: f64,
    }

    /// The same blast scenario, partitioned. At `k == 1` this measures
    /// pure partitioned-path overhead (no cut, no worker threads); at
    /// `k > 1` it measures windowed-execution throughput.
    fn par_blast(packets_per_source: u32, k: u32) -> ParBlast {
        let lot = parking_lot(&blast_spec());
        let mut sim = ParallelSimulator::new(lot.topology.clone(), k);
        let mut pairs = vec![lot.long_path];
        pairs.extend(lot.cross.iter().copied());
        for (i, (src, dst)) in pairs.iter().enumerate() {
            sim.add_agent(*src, 10, blast_pump(i, *dst, packets_per_source));
            sim.add_agent(*dst, 80, Box::<Drain>::default());
        }
        let t0 = Instant::now();
        sim.run_to_completion();
        let wall = t0.elapsed().as_secs_f64();
        let events = sim.events_processed();
        ParBlast {
            domains: k,
            events,
            wall,
            barrier_rounds: sim.barrier_rounds(),
            cross_domain: sim.cross_domain_messages(),
            cross_fraction: sim.cross_domain_messages() as f64 / events.max(1) as f64,
        }
    }

    /// The serial blast with a run budget installed but set far out of
    /// reach: every event goes through the budgeted pop loop's checks
    /// without any cap ever firing, so (this row ÷ the un-budgeted row)
    /// is exactly the supervision overhead a budget-capped sweep pays.
    fn budgeted_blast(packets_per_source: u32) -> (u64, f64) {
        use phi_sim::engine::RunBudget;
        let lot = parking_lot(&blast_spec());
        let mut sim = Simulator::new(lot.topology.clone());
        let mut pairs = vec![lot.long_path];
        pairs.extend(lot.cross.iter().copied());
        for (i, (src, dst)) in pairs.iter().enumerate() {
            sim.add_agent(*src, 10, blast_pump(i, *dst, packets_per_source));
            sim.add_agent(*dst, 80, Box::<Drain>::default());
        }
        let mut budget = RunBudget::events(u64::MAX);
        budget.max_wall_ms = Some(u64::MAX);
        sim.set_budget(budget);
        let t0 = Instant::now();
        sim.run_to_completion();
        let wall = t0.elapsed().as_secs_f64();
        assert!(sim.termination().is_none(), "out-of-reach budget fired");
        (sim.events_processed(), wall)
    }

    /// End-to-end run: the full Cubic dumbbell experiment (workload, TCP
    /// with SACK recovery, context hooks) — where timer-flood reduction
    /// and dispatch cost show up at application level.
    fn e2e_cubic(duration: Dur) -> (u64, f64, SchedStats) {
        let spec = ExperimentSpec::new(
            4,
            OnOffConfig {
                mean_on_bytes: 200_000.0,
                mean_off_secs: 0.5,
                deterministic: false,
            },
            duration,
            42,
        );
        let t0 = Instant::now();
        let r = run_experiment(&spec, provision_cubic(CubicParams::default()));
        let wall = t0.elapsed().as_secs_f64();
        (r.events, wall, r.sched)
    }

    /// The same scenarios measured on `main` immediately before the
    /// tiered-scheduler engine landed (this container, release build,
    /// best of 5). The speedup columns compare against these.
    const BASELINE_BLAST_EPS: f64 = 7.751e6;
    const BASELINE_E2E_EPS: f64 = 6.106e6;

    pub fn run(quick: bool) {
        let (blast_packets, e2e_secs, iters) = if quick {
            (2_000, Dur::from_secs(1), 1)
        } else {
            (25_000, Dur::from_secs(5), 5)
        };

        let mut best_blast: Option<(u64, f64, SchedStats)> = None;
        for _ in 0..iters {
            let (events, wall, stats) = blast(blast_packets);
            if best_blast.is_none() || wall < best_blast.as_ref().unwrap().1 {
                best_blast = Some((events, wall, stats));
            }
        }
        let (blast_events, blast_wall, sched) = best_blast.unwrap();
        let eps = blast_events as f64 / blast_wall;
        let stale_ratio = sched.skipped_stale as f64 / sched.scheduled.max(1) as f64;
        println!(
            "engine/blast_multihop                    events: {blast_events}  wall: {:.1} ms  \
             thrpt: {:.3e} events/s  ({:.1} ns/event)  speedup vs main: {:.2}x",
            blast_wall * 1e3,
            eps,
            1e9 / eps,
            eps / BASELINE_BLAST_EPS,
        );
        println!(
            "engine/blast_multihop sched              peak pending: {}  overflowed: {}  \
             stale skipped: {} ({:.2}% of scheduled)",
            sched.peak_pending,
            sched.overflowed,
            sched.skipped_stale,
            stale_ratio * 100.0,
        );

        // Supervision overhead: identical workload, budgeted pop loop.
        let mut best_budgeted: Option<(u64, f64)> = None;
        for _ in 0..iters {
            let (events, wall) = budgeted_blast(blast_packets);
            if best_budgeted.is_none() || wall < best_budgeted.as_ref().unwrap().1 {
                best_budgeted = Some((events, wall));
            }
        }
        let (budgeted_events, budgeted_wall) = best_budgeted.unwrap();
        let budgeted_eps = budgeted_events as f64 / budgeted_wall;
        println!(
            "engine/blast_multihop budgeted           events: {budgeted_events}  wall: {:.1} ms  \
             thrpt: {:.3e} events/s  overhead vs un-budgeted: {:.1}%",
            budgeted_wall * 1e3,
            budgeted_eps,
            (eps / budgeted_eps - 1.0) * 100.0,
        );
        assert_eq!(
            budgeted_events, blast_events,
            "an out-of-reach budget must not change what runs"
        );

        // Parallel engine trajectory: the same blast through the
        // domain-partitioned path at 1, 2, and 4 domains. K=1 vs the
        // serial row above is the partitioned-path overhead bound.
        let mut par_rows: Vec<ParBlast> = Vec::new();
        for k in [1u32, 2, 4] {
            let mut best: Option<ParBlast> = None;
            for _ in 0..iters {
                let row = par_blast(blast_packets, k);
                if best.is_none() || row.wall < best.as_ref().unwrap().wall {
                    best = Some(row);
                }
            }
            let row = best.unwrap();
            let row_eps = row.events as f64 / row.wall;
            println!(
                "engine/parallel_multihop k={}            events: {}  wall: {:.1} ms  \
                 thrpt: {:.3e} events/s  barriers: {}  cross-domain: {} ({:.2}% of events)",
                row.domains,
                row.events,
                row.wall * 1e3,
                row_eps,
                row.barrier_rounds,
                row.cross_domain,
                row.cross_fraction * 100.0,
            );
            par_rows.push(row);
        }

        let mut best_e2e: Option<(u64, f64, SchedStats)> = None;
        for _ in 0..iters {
            let (events, wall, stats) = e2e_cubic(e2e_secs);
            if best_e2e.is_none() || wall < best_e2e.as_ref().unwrap().1 {
                best_e2e = Some((events, wall, stats));
            }
        }
        let (e2e_events, e2e_wall, e2e_sched) = best_e2e.unwrap();
        let e2e_eps = e2e_events as f64 / e2e_wall;
        let e2e_stale_ratio = e2e_sched.skipped_stale as f64 / e2e_sched.scheduled.max(1) as f64;
        println!(
            "engine/e2e_dumbbell_cubic                events: {e2e_events}  wall: {:.1} ms  \
             thrpt: {:.3e} events/s  ({:.1} ns/event)  speedup vs main: {:.2}x",
            e2e_wall * 1e3,
            e2e_eps,
            1e9 / e2e_eps,
            e2e_eps / BASELINE_E2E_EPS,
        );
        println!(
            "engine/e2e_dumbbell_cubic sched          peak pending: {}  overflowed: {}  \
             stale skipped: {} ({:.2}% of scheduled)",
            e2e_sched.peak_pending,
            e2e_sched.overflowed,
            e2e_sched.skipped_stale,
            e2e_stale_ratio * 100.0,
        );

        if !quick {
            // Ratios print in scientific notation (`{:e}` — valid JSON):
            // fixed 5-decimal formatting used to round small nonzero
            // ratios down to a misleading literal `0.00000`.
            let par_json: String = par_rows
                .iter()
                .map(|r| {
                    format!(
                        "    {{\n      \"domains\": {},\n      \"events\": {},\n      \
                         \"wall_ms\": {:.3},\n      \"events_per_sec\": {:.1},\n      \
                         \"barrier_rounds\": {},\n      \"cross_domain_messages\": {},\n      \
                         \"cross_domain_fraction\": {:e}\n    }}",
                        r.domains,
                        r.events,
                        r.wall * 1e3,
                        r.events as f64 / r.wall,
                        r.barrier_rounds,
                        r.cross_domain,
                        r.cross_fraction,
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            let json = format!(
                "{{\n  \"blast_multihop\": {{\n    \"events\": {blast_events},\n    \
                 \"wall_ms\": {:.3},\n    \"events_per_sec\": {eps:.1},\n    \
                 \"ns_per_event\": {:.2},\n    \"speedup_vs_main\": {:.3},\n    \
                 \"peak_pending\": {},\n    \"overflowed\": {},\n    \
                 \"stale_skip_ratio\": {stale_ratio:e}\n  }},\n  \
                 \"budgeted_blast_multihop\": {{\n    \"events\": {budgeted_events},\n    \
                 \"wall_ms\": {:.3},\n    \"events_per_sec\": {budgeted_eps:.1},\n    \
                 \"overhead_vs_unbudgeted\": {:e}\n  }},\n  \
                 \"parallel_multihop\": [\n{par_json}\n  ],\n  \
                 \"e2e_dumbbell_cubic\": {{\n    \"events\": {e2e_events},\n    \
                 \"wall_ms\": {:.3},\n    \"events_per_sec\": {e2e_eps:.1},\n    \
                 \"ns_per_event\": {:.2},\n    \"speedup_vs_main\": {:.3},\n    \
                 \"peak_pending\": {},\n    \"overflowed\": {},\n    \
                 \"stale_skip_ratio\": {e2e_stale_ratio:e}\n  }},\n  \
                 \"baseline_main\": {{\n    \"blast_events_per_sec\": {BASELINE_BLAST_EPS:.1},\n    \
                 \"e2e_events_per_sec\": {BASELINE_E2E_EPS:.1}\n  }}\n}}\n",
                blast_wall * 1e3,
                1e9 / eps,
                eps / BASELINE_BLAST_EPS,
                sched.peak_pending,
                sched.overflowed,
                budgeted_wall * 1e3,
                eps / budgeted_eps - 1.0,
                e2e_wall * 1e3,
                1e9 / e2e_eps,
                e2e_eps / BASELINE_E2E_EPS,
                e2e_sched.peak_pending,
                e2e_sched.overflowed,
            );
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
            match std::fs::write(path, json) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
    }
}

criterion_group!(
    benches,
    bench_simulator,
    bench_wire,
    bench_store,
    bench_sketch,
    bench_whiskers
);

fn main() {
    // Cargo passes `--bench`; CI's smoke step passes `--test` for a
    // reduced-scale pass that still executes every engine scenario.
    let quick = std::env::args().any(|a| a == "--test");
    engine::run(quick);
    if !quick {
        benches();
    }
}
