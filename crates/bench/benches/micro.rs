//! MB — Criterion micro-benchmarks of the hot paths.
//!
//! These measure the implementation itself (not the paper's results):
//! the simulator's event throughput, the context-server codec, the
//! quantile sketch, and the whisker-tree lookup — the operations that
//! bound how large an experiment or how busy a context server can get.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::rc::Rc;

use phi_core::context::{ContextStore, FlowSummary, PathKey, StoreConfig};
use phi_core::harness::{provision_cubic, run_experiment, ExperimentSpec};
use phi_core::wire::{encode, Decoder, Message};
use phi_predict::LogHistogram;
use phi_remy::{Action, WhiskerTree};
use phi_sim::time::Dur;
use phi_tcp::CubicParams;
use phi_workload::{OnOffConfig, SeedRng};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("dumbbell_4x5s_cubic", |b| {
        b.iter(|| {
            let spec = ExperimentSpec::new(
                4,
                OnOffConfig {
                    mean_on_bytes: 200_000.0,
                    mean_off_secs: 0.5,
                    deterministic: false,
                },
                Dur::from_secs(5),
                42,
            );
            let r = run_experiment(&spec, provision_cubic(CubicParams::default()));
            criterion::black_box(r.events)
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let report = Message::Report {
        path: PathKey(42),
        summary: FlowSummary {
            bytes: 1_000_000,
            duration_ns: 2_000_000_000,
            mean_rtt_ms: 163.0,
            min_rtt_ms: 150.0,
            retransmits: 2,
            timeouts: 0,
        },
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_report", |b| {
        b.iter(|| criterion::black_box(encode(&report)))
    });
    let frame = encode(&report);
    g.bench_function("decode_report", |b| {
        b.iter_batched(
            Decoder::new,
            |mut d| {
                d.extend(&frame);
                criterion::black_box(d.next().expect("decode"))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_store");
    g.bench_function("lookup_report_cycle", |b| {
        let mut store = ContextStore::new(StoreConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            store.lookup(PathKey(1), t);
            store.report(
                PathKey(1),
                t + 500_000,
                &FlowSummary {
                    bytes: 500_000,
                    duration_ns: 400_000,
                    mean_rtt_ms: 160.0,
                    min_rtt_ms: 150.0,
                    retransmits: 0,
                    timeouts: 0,
                },
            );
        })
    });
    g.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.throughput(Throughput::Elements(1));
    g.bench_function("log_histogram_record", |b| {
        let mut h = LogHistogram::for_latency_ms();
        let mut rng = SeedRng::new(7);
        b.iter(|| h.record(criterion::black_box(rng.range_f64(0.5, 5_000.0))))
    });
    g.bench_function("log_histogram_quantile", |b| {
        let mut h = LogHistogram::for_latency_ms();
        let mut rng = SeedRng::new(7);
        for _ in 0..100_000 {
            h.record(rng.range_f64(0.5, 5_000.0));
        }
        b.iter(|| criterion::black_box(h.quantile(0.95)))
    });
    g.finish();
}

fn bench_whiskers(c: &mut Criterion) {
    let mut g = c.benchmark_group("whisker_tree");
    let mut tree = WhiskerTree::single(Action::initial());
    for _ in 0..5 {
        // Split the first whisker repeatedly to build a 6-rule tree.
        tree.split(0);
    }
    let tree = Rc::new(tree);
    let mut rng = SeedRng::new(9);
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup_6_rules", |b| {
        b.iter(|| {
            let p = [rng.unit(), rng.unit(), rng.unit(), rng.unit()];
            criterion::black_box(tree.index_of(&p))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_wire,
    bench_store,
    bench_sketch,
    bench_whiskers
);
criterion_main!(benches);
