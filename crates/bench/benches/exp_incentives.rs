//! A3 — §3.1: incentives for adoption, quantified.
//!
//! The paper argues FIFO queueing makes the network *not incentive
//! compatible* (citing Godfrey et al.): a defector that ignores the
//! coordinated parameters can privately gain while the system loses.
//! This harness measures exactly that:
//!
//! * a cooperating population running Phi-optimal parameters,
//! * the same population with one **defector** running maximally
//!   aggressive parameters (huge initial window *and* huge ssthresh,
//!   timid β),
//! * both under the paper's drop-tail FIFO and under RED AQM — the
//!   queueing-discipline ablation DESIGN.md calls out: early random
//!   drops take back much of what the defector grabs from the queue.

use phi_bench::{banner, pct, scale, write_json};
use phi_core::harness::{run_repeated, BottleneckQueue, ExperimentSpec, Provisioned};
use phi_core::{score, Objective};
use phi_sim::time::Dur;
use phi_tcp::cubic::{Cubic, CubicParams};
use phi_tcp::hook::NoHook;
use phi_tcp::report::RunMetrics;
use phi_workload::OnOffConfig;
use serde::Serialize;

const DEFECTOR: usize = 0;

fn cooperative_params() -> CubicParams {
    CubicParams::tuned(16.0, 64.0, 0.2)
}

fn defector_params() -> CubicParams {
    CubicParams::tuned(128.0, 65_536.0, 0.1)
}

#[derive(Serialize)]
struct Outcome {
    queue: String,
    defector_present: bool,
    defector_tput: f64,
    cooperator_tput: f64,
    total_power: f64,
    queueing_delay_ms: f64,
    loss: f64,
}

fn run_arm(queue: BottleneckQueue, with_defector: bool, runs: usize, secs: u64) -> Outcome {
    let mut spec = ExperimentSpec::new(10, OnOffConfig::fig2(), Dur::from_secs(secs), 3131);
    spec.queue = queue;
    let results = run_repeated(&spec, runs, move |ctx| {
        let params = if with_defector && ctx.index == DEFECTOR {
            defector_params()
        } else {
            cooperative_params()
        };
        Provisioned {
            factory: Box::new(move |_| Box::new(Cubic::new(params))),
            hook: Box::new(NoHook),
        }
    });
    let base = spec.base_rtt_ms();
    let defector = RunMetrics::mean_of(
        &results
            .iter()
            .map(|r| r.metrics_for(|i| i == DEFECTOR))
            .collect::<Vec<_>>(),
    );
    let cooperators = RunMetrics::mean_of(
        &results
            .iter()
            .map(|r| r.metrics_for(|i| i != DEFECTOR))
            .collect::<Vec<_>>(),
    );
    let total = RunMetrics::mean_of(
        &results
            .iter()
            .map(|r| r.metrics.clone())
            .collect::<Vec<_>>(),
    );
    Outcome {
        queue: format!("{queue:?}"),
        defector_present: with_defector,
        defector_tput: defector.throughput_mbps,
        cooperator_tput: cooperators.throughput_mbps,
        total_power: score(Objective::PowerLoss, &total, base),
        queueing_delay_ms: total.queueing_delay_ms,
        loss: total.loss_rate,
    }
}

fn main() {
    let sc = scale();
    banner("Incentives (§3.1): what does one defector gain, and who pays?");

    let mut outs = Vec::new();
    println!(
        "{:<10} {:<10} {:>14} {:>16} {:>12} {:>11} {:>8}",
        "queue", "defector", "defector tput", "cooperator tput", "total P_l", "queue(ms)", "loss"
    );
    for queue in [BottleneckQueue::DropTail, BottleneckQueue::Red] {
        for with_defector in [false, true] {
            let o = run_arm(queue, with_defector, sc.runs, sc.sim_secs);
            println!(
                "{:<10} {:<10} {:>14.2} {:>16.2} {:>12.4} {:>11.2} {:>8}",
                o.queue,
                if o.defector_present { "yes" } else { "no" },
                o.defector_tput,
                o.cooperator_tput,
                o.total_power,
                o.queueing_delay_ms,
                pct(o.loss)
            );
            outs.push(o);
        }
    }

    let g = |queue: &str, def: bool| {
        outs.iter()
            .find(|o| o.queue == queue && o.defector_present == def)
            .expect("arm")
    };
    let dt_coop = g("DropTail", false);
    let dt_def = g("DropTail", true);
    let red_coop = g("Red", false);
    let red_def = g("Red", true);

    let dt_private_gain = dt_def.defector_tput / dt_coop.defector_tput;
    let red_private_gain = red_def.defector_tput / red_coop.defector_tput;
    println!("\ndrop-tail: the defector multiplies its own throughput by {dt_private_gain:.2}x...");
    println!(
        "...while each cooperator's throughput falls {:.2} -> {:.2} Mbit/s and everyone's \
         queueing rises {:.1} -> {:.1} ms: the gain is private, the cost is shared \
         (FIFO is not incentive compatible, per §3.1).",
        dt_coop.cooperator_tput,
        dt_def.cooperator_tput,
        dt_coop.queueing_delay_ms,
        dt_def.queueing_delay_ms,
    );
    println!(
        "\nRED: the same defection yields {red_private_gain:.2}x (vs {dt_private_gain:.2}x) \
         at lower shared queueing ({:.1} vs {:.1} ms) — early random drops reclaim part of \
         the stolen queue.",
        red_def.queueing_delay_ms, dt_def.queueing_delay_ms,
    );

    assert!(
        dt_private_gain > 1.1,
        "under drop-tail FIFO, defection must pay privately ({dt_private_gain:.2}x)"
    );
    assert!(
        dt_def.queueing_delay_ms > dt_coop.queueing_delay_ms,
        "the defector's queue must hurt everyone"
    );
    assert!(
        dt_def.cooperator_tput < dt_coop.cooperator_tput,
        "cooperators must pay for the defection"
    );

    write_json("incentives", &outs);
}
