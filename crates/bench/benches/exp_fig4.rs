//! F4 — Figure 4: incremental deployment.
//!
//! Half the senders ("modified") adopt the parameters that would be
//! optimal under full cooperation; the other half ("unmodified") keep the
//! Table 1 defaults. The paper's findings at moderate (~60 %) utilization:
//!
//! * modified senders still see better throughput and delay than in the
//!   all-default world;
//! * even unmodified senders improve on the power metric (the shared
//!   queue is shorter), though their queueing delay can be slightly worse
//!   than the modified senders';
//! * unmodified senders fill the queue far more (their huge initial
//!   ssthresh), visible in their loss/retransmit counts.

use phi_bench::{banner, pct, scale, write_json};
use phi_core::{
    is_modified, provision_cubic, provision_mixed, run_repeated, score, sweep_cubic,
    ExperimentSpec, Objective, SweepSpec,
};
use phi_sim::time::Dur;
use phi_tcp::report::RunMetrics;
use phi_workload::OnOffConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Arm {
    name: String,
    throughput_mbps: f64,
    queueing_delay_ms: f64,
    loss_rate: f64,
    mean_rtt_ms: f64,
    power: f64,
}

fn arm(name: &str, m: &RunMetrics, base_rtt: f64) -> Arm {
    Arm {
        name: name.to_string(),
        throughput_mbps: m.throughput_mbps,
        queueing_delay_ms: m.queueing_delay_ms,
        loss_rate: m.loss_rate,
        mean_rtt_ms: m.mean_rtt_ms,
        power: score(Objective::PowerLoss, m, base_rtt),
    }
}

fn print_arm(a: &Arm) {
    println!(
        "{:<34} {:>10.2} {:>10.2} {:>9} {:>9.1} {:>9.4}",
        a.name,
        a.throughput_mbps,
        a.queueing_delay_ms,
        pct(a.loss_rate),
        a.mean_rtt_ms,
        a.power
    );
}

fn main() {
    let sc = scale();
    // Moderate utilization — the paper is explicit that the mixed-
    // deployment benefit exists at ~60% and "diminishes" as utilization
    // goes higher, so the experiment must sit in that regime: 8 on/off
    // senders put the default baseline near 60% here.
    let senders = 8;
    let spec = ExperimentSpec::new(
        senders,
        OnOffConfig::fig2(),
        Dur::from_secs(sc.sim_secs),
        777,
    );
    let base_rtt = spec.base_rtt_ms();

    banner("Figure 4: incremental deployment (half modified, half default)");

    // Find the full-cooperation optimum first (what modified senders use).
    let grid = if sc.full_grid {
        SweepSpec::short_flow()
    } else {
        SweepSpec::quick()
    };
    let sweep = sweep_cubic(&spec, &grid, sc.runs, Objective::PowerLoss);
    let tuned = sweep.best().params;
    println!(
        "full-cooperation optimum: initWnd {}, ssthresh {}, beta {}\n",
        tuned.init_window, tuned.init_ssthresh, tuned.beta
    );

    // Baseline: everyone default.
    let base_runs = run_repeated(
        &spec,
        sc.runs,
        provision_cubic(phi_tcp::CubicParams::default()),
    );
    let all_default = RunMetrics::mean_of(
        &base_runs
            .iter()
            .map(|r| r.metrics.clone())
            .collect::<Vec<_>>(),
    );

    // Mixed deployment.
    let mixed_runs = run_repeated(&spec, sc.runs, provision_mixed(tuned));
    let modified = RunMetrics::mean_of(
        &mixed_runs
            .iter()
            .map(|r| r.metrics_for(is_modified))
            .collect::<Vec<_>>(),
    );
    let unmodified = RunMetrics::mean_of(
        &mixed_runs
            .iter()
            .map(|r| r.metrics_for(|i| !is_modified(i)))
            .collect::<Vec<_>>(),
    );

    // Full deployment for reference.
    let full_runs = run_repeated(&spec, sc.runs, provision_cubic(tuned));
    let all_tuned = RunMetrics::mean_of(
        &full_runs
            .iter()
            .map(|r| r.metrics.clone())
            .collect::<Vec<_>>(),
    );

    println!(
        "{:<34} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "arm", "tput", "queue(ms)", "loss", "rtt(ms)", "P_l"
    );
    let arms = vec![
        arm("all default (baseline)", &all_default, base_rtt),
        arm("mixed: modified half", &modified, base_rtt),
        arm("mixed: unmodified half", &unmodified, base_rtt),
        arm("all modified (full deployment)", &all_tuned, base_rtt),
    ];
    for a in &arms {
        print_arm(a);
    }

    // Queue-filling asymmetry: retransmits per flow in the mixed world.
    let mut retx_modified = 0u64;
    let mut flows_modified = 0u64;
    let mut retx_unmod = 0u64;
    let mut flows_unmod = 0u64;
    for run in &mixed_runs {
        for (i, reports) in run.per_sender.iter().enumerate() {
            let retx: u64 = reports.iter().map(|r| r.retransmits).sum();
            if is_modified(i) {
                retx_modified += retx;
                flows_modified += reports.len() as u64;
            } else {
                retx_unmod += retx;
                flows_unmod += reports.len() as u64;
            }
        }
    }
    println!(
        "\nflows completed: modified {flows_modified} vs unmodified {flows_unmod}; \
         retransmits per flow: modified {:.2} vs unmodified {:.2}",
        retx_modified as f64 / flows_modified.max(1) as f64,
        retx_unmod as f64 / flows_unmod.max(1) as f64
    );

    // The paper's qualitative claims (2% tolerance for seed noise; the
    // paper itself notes the effect shrinks with utilization).
    assert!(
        arms[1].power >= arms[0].power * 0.98,
        "modified senders should not lose to the all-default baseline on P_l: {:.4} vs {:.4}",
        arms[1].power,
        arms[0].power,
    );
    assert!(
        arms[3].power > arms[0].power,
        "full deployment must beat all-default"
    );
    assert!(
        arms[1].mean_rtt_ms < arms[2].mean_rtt_ms,
        "modified senders should see lower RTT than unmodified ones"
    );
    println!(
        "\nmodified vs all-default: P_l {:.4} vs {:.4} ({:+.0}%)",
        arms[1].power,
        arms[0].power,
        (arms[1].power / arms[0].power - 1.0) * 100.0
    );
    println!(
        "unmodified vs all-default: P_l {:.4} vs {:.4} ({:+.0}%)",
        arms[2].power,
        arms[0].power,
        (arms[2].power / arms[0].power - 1.0) * 100.0
    );

    write_json("fig4", &arms);
}
