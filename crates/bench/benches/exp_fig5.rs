//! F5 — Figure 5: an unreachability event localized to an ISP × metro.
//!
//! The paper shows a ~2-hour unreachability event, detected from the
//! cloud side and "localized to an ISP network on a particular metro".
//! We inject exactly that ground truth into synthetic diurnal telemetry
//! and require the pipeline to (a) detect one event, (b) time-bound it to
//! within a few bins of 2 hours, and (c) localize it to the injected
//! (AS, metro) pair.

use phi_bench::{banner, write_json};
use phi_diagnosis::{
    detect, generate, localize, DetectorConfig, Dimension, LocalizerConfig, Outage, SeasonalModel,
    TelemetryConfig,
};
use phi_workload::SeedRng;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    seed: u64,
    injected_asn: u32,
    injected_metro: u32,
    injected_duration_bins: usize,
    detected_events: usize,
    detected_duration_bins: usize,
    detected_deficit_fraction: f64,
    localized_constraints: Vec<(String, u32)>,
    localization_correct: bool,
    deficit_share: f64,
}

fn run_case(seed: u64, severity: f64) -> Out {
    let cfg = TelemetryConfig::default(); // 5-min bins, 4 days, 2x6x4 slices
    let period = cfg.bins_per_day;
    let train_bins = (cfg.days - 1) * period;
    let day4 = (cfg.days - 1) * period;

    let outage = Outage {
        asn: (seed % u64::from(cfg.asns)) as u32,
        metro: ((seed / 7) % u64::from(cfg.metros)) as u32,
        start_bin: day4 + 120,
        end_bin: day4 + 144, // 24 five-minute bins = 2 hours
        severity,
    };

    let telemetry = generate(&cfg, Some(&outage), &mut SeedRng::new(seed));
    let total = telemetry.total();
    let model = SeasonalModel::fit(&total, period, train_bins);
    let events = detect(&total, &model, &DetectorConfig::default());

    let (detected_duration, deficit, loc, correct, share) = if let Some(e) = events.first() {
        let loc = localize(
            &telemetry,
            e,
            period,
            train_bins,
            &LocalizerConfig::default(),
        );
        let (constraints, correct, share) = match &loc {
            Some(l) => {
                let correct = l.constraints.len() == 2
                    && l.constraints.contains(&(Dimension::Asn, outage.asn))
                    && l.constraints.contains(&(Dimension::Metro, outage.metro));
                (
                    l.constraints
                        .iter()
                        .map(|(d, v)| (format!("{d:?}"), *v))
                        .collect(),
                    correct,
                    l.deficit_share,
                )
            }
            None => (Vec::new(), false, 0.0),
        };
        (
            e.duration_bins(),
            e.deficit_fraction,
            constraints,
            correct,
            share,
        )
    } else {
        (0, 0.0, Vec::new(), false, 0.0)
    };

    Out {
        seed,
        injected_asn: outage.asn,
        injected_metro: outage.metro,
        injected_duration_bins: outage.duration_bins(),
        detected_events: events.len(),
        detected_duration_bins: detected_duration,
        detected_deficit_fraction: deficit,
        localized_constraints: loc,
        localization_correct: correct,
        deficit_share: share,
    }
}

fn main() {
    banner("Figure 5: unreachability detection and localization");
    println!(
        "{:<6} {:<14} {:>10} {:>10} {:>9} {:>22} {:>8}",
        "seed", "injected", "inj bins", "det bins", "events", "localized to", "correct"
    );

    let mut outs = Vec::new();
    let mut correct = 0;
    let cases: Vec<(u64, f64)> = (0..8).map(|i| (9000 + i, 0.85)).collect();
    for (seed, severity) in &cases {
        let o = run_case(*seed, *severity);
        println!(
            "{:<6} AS{:<3}x metro{:<2} {:>10} {:>10} {:>9} {:>22} {:>8}",
            o.seed,
            o.injected_asn,
            o.injected_metro,
            o.injected_duration_bins,
            o.detected_duration_bins,
            o.detected_events,
            o.localized_constraints
                .iter()
                .map(|(d, v)| format!("{d}={v}"))
                .collect::<Vec<_>>()
                .join(","),
            o.localization_correct
        );
        if o.localization_correct {
            correct += 1;
        }
        outs.push(o);
    }

    println!(
        "\nlocalization accuracy: {correct}/{} cases; detected durations within ±2 bins of the \
         2-hour ground truth: {}/{}",
        cases.len(),
        outs.iter()
            .filter(
                |o| (o.detected_duration_bins as i64 - o.injected_duration_bins as i64).abs() <= 2
            )
            .count(),
        cases.len()
    );
    assert!(
        correct >= cases.len() - 1,
        "localization should succeed in nearly every case"
    );

    // Negative control: no outage injected — no event may be detected.
    let cfg = TelemetryConfig::default();
    let clean = generate(&cfg, None, &mut SeedRng::new(4242));
    let total = clean.total();
    let model = SeasonalModel::fit(&total, cfg.bins_per_day, (cfg.days - 1) * cfg.bins_per_day);
    let false_events = detect(&total, &model, &DetectorConfig::default());
    println!(
        "negative control (no outage): {} events detected",
        false_events.len()
    );
    assert!(
        false_events.is_empty(),
        "false positives on clean telemetry: {false_events:?}"
    );

    write_json("fig5", &outs);
}
