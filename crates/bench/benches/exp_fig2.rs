//! F2a / F2b / F2c — Figure 2 of the paper.
//!
//! Sweep the Cubic parameters (Table 2 ranges) at three workload levels
//! over the Figure 1 dumbbell and report throughput, queueing delay, and
//! loss for every setting, marking the default (Table 1) and the
//! `P_l`-optimal point:
//!
//! * (a) low link utilization — few on/off senders;
//! * (b) high link utilization — many on/off senders; the paper's
//!   headline here is the loss gap (0.01 % optimal vs 3.92 % default) and
//!   "the optimal case uses a larger initial window but a smaller slow
//!   start threshold than the default";
//! * (c) long-running connections at ~99 % utilization — only β matters,
//!   and a larger β (sharper back-off) yields much lower queueing delay.
//!
//! Default scale sweeps a reduced grid; `PHI_FULL=1` runs the full
//! Table 2 grid with n = 8 runs.

use phi_bench::{banner, pct, scale, write_json};
use phi_core::{score, sweep_cubic, ExperimentSpec, Objective, SweepResult, SweepSpec};
use phi_sim::time::Dur;
use phi_tcp::CubicParams;
use phi_workload::OnOffConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    init_window: f64,
    init_ssthresh: f64,
    beta: f64,
    throughput_mbps: f64,
    queueing_delay_ms: f64,
    loss_rate: f64,
    utilization: f64,
    power: f64,
    is_default: bool,
    is_best: bool,
}

#[derive(Serialize)]
struct Regime {
    name: String,
    senders: usize,
    rows: Vec<Row>,
    gain_over_default: f64,
}

fn print_result(name: &str, res: &SweepResult) -> Regime {
    banner(name);
    println!(
        "{:<8} {:<9} {:<6} {:>11} {:>11} {:>9} {:>7} {:>9}",
        "initWnd", "ssthresh", "beta", "tput(Mbps)", "queue(ms)", "loss", "util", "P_l"
    );
    let best_params = res.best().params;
    let mut rows = Vec::new();
    let mut print_row = |params: CubicParams, o: &phi_core::SweepOutcome, tag: &str| {
        println!(
            "{:<8} {:<9} {:<6} {:>11.2} {:>11.2} {:>9} {:>7.2} {:>9.4} {}",
            params.init_window,
            params.init_ssthresh,
            params.beta,
            o.mean.throughput_mbps,
            o.mean.queueing_delay_ms,
            pct(o.mean.loss_rate),
            o.mean.utilization,
            o.score,
            tag
        );
        rows.push(Row {
            init_window: params.init_window,
            init_ssthresh: params.init_ssthresh,
            beta: params.beta,
            throughput_mbps: o.mean.throughput_mbps,
            queueing_delay_ms: o.mean.queueing_delay_ms,
            loss_rate: o.mean.loss_rate,
            utilization: o.mean.utilization,
            power: o.score,
            is_default: tag.contains("DEFAULT"),
            is_best: tag.contains("OPTIMAL"),
        });
    };

    // Sorted by score, best first, so the figure's story reads top-down.
    let mut order: Vec<usize> = (0..res.outcomes.len()).collect();
    order.sort_by(|&a, &b| res.outcomes[b].score.total_cmp(&res.outcomes[a].score));
    for idx in order {
        let o = &res.outcomes[idx];
        let tag = if o.params == best_params {
            "  <-- OPTIMAL"
        } else {
            ""
        };
        print_row(o.params, o, tag);
    }
    print_row(res.default.params, &res.default, "  <-- DEFAULT (Table 1)");

    let gain = res.gain();
    println!(
        "\noptimal vs default: P_l {:.4} vs {:.4}  ({:.2}x)",
        res.best().score,
        res.default.score,
        gain
    );
    println!(
        "loss: optimal {} vs default {}",
        pct(res.best().mean.loss_rate),
        pct(res.default.mean.loss_rate)
    );
    Regime {
        name: name.to_string(),
        senders: 0,
        rows,
        gain_over_default: gain,
    }
}

fn main() {
    let sc = scale();
    let mut out = Vec::new();

    // --- Figure 2a: low utilization ------------------------------------
    let senders_low = 4;
    let spec = ExperimentSpec::new(
        senders_low,
        OnOffConfig::fig2(),
        Dur::from_secs(sc.sim_secs),
        1001,
    );
    let grid = if sc.full_grid {
        SweepSpec::short_flow()
    } else {
        SweepSpec::quick()
    };
    let res = sweep_cubic(&spec, &grid, sc.runs, Objective::PowerLoss);
    let mut r = print_result(
        &format!("Figure 2a: low link utilization ({senders_low} on/off senders)"),
        &res,
    );
    r.senders = senders_low;
    assert!(
        res.best().score >= res.default.score,
        "sweep must find a point at least as good as the default"
    );
    out.push(r);

    // --- Figure 2b: high utilization -----------------------------------
    let senders_high = 14;
    let spec = ExperimentSpec::new(
        senders_high,
        OnOffConfig::fig2(),
        Dur::from_secs(sc.sim_secs),
        2002,
    );
    let res = sweep_cubic(&spec, &grid, sc.runs, Objective::PowerLoss);
    let mut r = print_result(
        &format!("Figure 2b: high link utilization ({senders_high} on/off senders)"),
        &res,
    );
    r.senders = senders_high;
    let best = res.best();
    println!(
        "\npaper's qualitative checks: optimal initWnd {} > default {}; optimal ssthresh {} << default {}",
        best.params.init_window,
        res.default.params.init_window,
        best.params.init_ssthresh,
        res.default.params.init_ssthresh
    );
    out.push(r);

    // --- Figure 2c: long-running connections ---------------------------
    // The paper uses 100 connections at ~99% utilization; per-flow windows
    // are ~12 segments there, which is the regime where beta matters, so we
    // keep the full 100 senders even at reduced scale.
    let senders_long = 100;
    let spec = ExperimentSpec::new(
        senders_long,
        OnOffConfig::long_running(),
        Dur::from_secs(if sc.full_grid { 120 } else { 90 }),
        3003,
    );
    let res = sweep_cubic(
        &spec,
        &SweepSpec::beta_only(),
        sc.runs.min(2),
        Objective::PowerLoss,
    );
    let r = print_result(
        &format!("Figure 2c: {senders_long} long-running connections (beta sweep)"),
        &res,
    );
    out.push(r);

    // The paper's 2c claim: a beta larger than the 0.2 default (a sharper
    // back-off) yields lower queueing delay in this saturated regime.
    let default_delay = res.default.mean.queueing_delay_ms;
    let best = res.best();
    println!(
        "\nqueueing delay: default beta {} = {:.1} ms vs optimal beta {} = {:.1} ms; \
         optimal loss {} vs default {}",
        res.default.params.beta,
        default_delay,
        best.params.beta,
        best.mean.queueing_delay_ms,
        pct(best.mean.loss_rate),
        pct(res.default.mean.loss_rate),
    );
    assert!(
        best.params.beta > res.default.params.beta,
        "paper's 2c shape: the optimal beta should exceed the 0.2 default"
    );

    // Sanity echo of the cross-regime story.
    banner("Figure 2 summary");
    for r in &out {
        println!("{:<58} gain {:.2}x", r.name, r.gain_over_default);
    }
    write_json("fig2", &out);

    let _ = score(Objective::PowerLoss, &res.default.mean, spec.base_rtt_ms());
}
