//! T1 + T2 — Tables 1 and 2 of the paper.
//!
//! Table 1 lists the ns-2 default settings of the three Cubic parameters;
//! Table 2 the sweep ranges Phi's optimizer explores. This harness prints
//! both tables from the code that the rest of the suite actually uses, so
//! any drift between paper constants and implementation is caught here.

use phi_bench::{banner, write_json};
use phi_core::SweepSpec;
use phi_tcp::CubicParams;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    default_init_ssthresh: f64,
    default_init_window: f64,
    default_beta: f64,
    sweep_init_window: Vec<f64>,
    sweep_init_ssthresh: Vec<f64>,
    sweep_beta: Vec<f64>,
    grid_points: usize,
}

fn main() {
    banner("Table 1: Default settings of the TCP Cubic parameters");
    let d = CubicParams::default();
    println!("{:<22} {:>24}", "Parameter", "Default Value");
    println!(
        "{:<22} {:>24}",
        "initial_ssthresh",
        format!("{} segments (arbitrarily large)", d.init_ssthresh)
    );
    println!(
        "{:<22} {:>24}",
        "windowInit_",
        format!("{} segments", d.init_window)
    );
    println!("{:<22} {:>24}", "beta", format!("{}", d.beta));

    banner("Table 2: Range of parameter sweep in TCP Cubic-Phi");
    let g = SweepSpec::paper();
    println!("{:<22} {:<28} {:<10}", "Parameter", "Range", "Increment");
    println!(
        "{:<22} {:<28} {:<10}",
        "initial_ssthresh",
        format!(
            "{} - {} segments",
            g.init_ssthresh.first().unwrap(),
            g.init_ssthresh.last().unwrap()
        ),
        "x 2"
    );
    println!(
        "{:<22} {:<28} {:<10}",
        "windowInit_",
        format!(
            "{} - {} segments",
            g.init_window.first().unwrap(),
            g.init_window.last().unwrap()
        ),
        "x 2"
    );
    println!(
        "{:<22} {:<28} {:<10}",
        "beta",
        format!("{} - {}", g.beta.first().unwrap(), g.beta.last().unwrap()),
        "+ 0.1"
    );
    println!("\ntotal grid points: {}", g.combos().len());

    write_json(
        "table1_table2",
        &Out {
            default_init_ssthresh: d.init_ssthresh,
            default_init_window: d.init_window,
            default_beta: d.beta,
            sweep_init_window: g.init_window.clone(),
            sweep_init_ssthresh: g.init_ssthresh.clone(),
            sweep_beta: g.beta.clone(),
            grid_points: g.combos().len(),
        },
    );
}
