//! T3 — Table 3: Remy vs Remy-Phi vs Cubic on the paper's dumbbell.
//!
//! Topology and workload straight from the table caption: single
//! bottleneck, 15 Mbit/s, 150 ms RTT, 8 senders alternating exponential
//! 100 KB transfers with exponential 0.5 s off times.
//!
//! Arms:
//! * **Cubic** — unmodified defaults (Table 1);
//! * **Remy** — rule table trained *without* shared information;
//! * **Remy-Phi-practical** — util-extended table; utilization fetched at
//!   connection start and frozen (the §2.2.2 lookup/report discipline);
//! * **Remy-Phi-ideal** — same table; every ACK carries up-to-the-minute
//!   bottleneck utilization from the oracle.
//!
//! The paper's shape to reproduce: on the `log(P)` objective,
//! ideal ≥ practical > plain Remy > Cubic, with Cubic's queueing delay
//! far above the Remy variants'.

use phi_bench::{banner, scale, write_json};
use phi_core::harness::{provision_cubic, run_repeated, ExperimentSpec};
use phi_core::power::log_power;
use phi_remy::{provision_remy_owned, Trainer, TrainerConfig, UtilFeed, WhiskerTree};
use phi_sim::time::Dur;
use phi_tcp::CubicParams;
use phi_workload::OnOffConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    median_throughput_mbps: f64,
    median_queueing_delay_ms: f64,
    median_objective: f64,
    flows: usize,
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Per-sender medians across runs, in the table's units.
fn evaluate(
    spec: &ExperimentSpec,
    runs: usize,
    name: &str,
    provision: impl Fn(phi_core::ProvisionCtx<'_>) -> phi_core::Provisioned + Sync,
) -> Row {
    let results = run_repeated(spec, runs, provision);
    let base = spec.base_rtt_ms();
    let mut tputs = Vec::new();
    let mut delays = Vec::new();
    let mut objectives = Vec::new();
    let mut flows = 0usize;
    for r in &results {
        for reports in &r.per_sender {
            if reports.is_empty() {
                continue;
            }
            let mut t = 0.0;
            let mut d = 0.0;
            let mut n = 0.0;
            for rep in reports {
                t += rep.throughput_bps() / 1e6;
                d += if rep.rtt_samples > 0 {
                    rep.mean_rtt_ms
                } else {
                    base
                };
                n += 1.0;
                flows += 1;
            }
            let tput = t / n;
            let rtt = d / n;
            tputs.push(tput);
            delays.push((rtt - base).max(0.0));
            objectives.push(log_power(tput, rtt));
        }
    }
    Row {
        algorithm: name.to_string(),
        median_throughput_mbps: median(tputs),
        median_queueing_delay_ms: median(delays),
        median_objective: median(objectives),
        flows,
    }
}

fn main() {
    let sc = scale();
    // The Table 3 configuration.
    let spec = ExperimentSpec::new(8, OnOffConfig::table3(), Dur::from_secs(sc.sim_secs), 5005);

    banner("Table 3 setup: training Remy rule tables");
    let train_spec = {
        let mut s = spec.clone();
        s.duration = Dur::from_secs(if sc.full_grid { 30 } else { 15 });
        s
    };
    let trainer_cfg = |feed| {
        if sc.full_grid {
            TrainerConfig::table3(vec![train_spec.clone()], feed)
        } else {
            TrainerConfig::quick(train_spec.clone(), feed)
        }
    };

    // Plain Remy: no shared-utilization feed during training.
    let mut t0 = Trainer::new(trainer_cfg(UtilFeed::None));
    let (tree_plain, obj_plain) = t0.train(WhiskerTree::initial());
    println!(
        "plain Remy tree: {} whiskers, training objective {:.3} ({} improvement steps)",
        tree_plain.len(),
        obj_plain,
        t0.history.len()
    );

    // Remy-Phi: "we extend the context ... with an additional dimension
    // corresponding to the bottleneck link utilization and then retrain"
    // — warm-start from the learned plain policy, split every rule on the
    // new utilization dimension, and continue training with the
    // up-to-the-minute feed (as in the paper's training setup).
    let mut seeded = tree_plain.clone();
    for idx in 0..tree_plain.len() {
        seeded.split_along(idx, 3);
    }
    let mut t1 = Trainer::new(trainer_cfg(UtilFeed::Ideal));
    let (tree_util, obj_util) = t1.train(seeded);
    println!(
        "Remy-Phi tree:   {} whiskers, training objective {:.3} ({} improvement steps)",
        tree_util.len(),
        obj_util,
        t1.history.len()
    );
    println!("\nlearned Remy-Phi rules:\n{}", tree_util.describe());

    banner("Table 3: single-bottleneck dumbbell, 15 Mbit/s, 150 ms RTT, 8 senders");

    let rows = vec![
        evaluate(
            &spec,
            sc.runs,
            "Remy-Phi-practical",
            provision_remy_owned(tree_util.clone(), UtilFeed::Practical),
        ),
        evaluate(
            &spec,
            sc.runs,
            "Remy-Phi-ideal",
            provision_remy_owned(tree_util.clone(), UtilFeed::Ideal),
        ),
        evaluate(
            &spec,
            sc.runs,
            "Remy",
            provision_remy_owned(tree_plain.clone(), UtilFeed::None),
        ),
        evaluate(
            &spec,
            sc.runs,
            "Cubic",
            provision_cubic(CubicParams::default()),
        ),
    ];

    println!(
        "{:<22} {:>18} {:>22} {:>18}",
        "Algorithm", "Median tput (Mbps)", "Median queue delay(ms)", "Median objective"
    );
    for r in &rows {
        println!(
            "{:<22} {:>18.2} {:>22.1} {:>18.3}",
            r.algorithm, r.median_throughput_mbps, r.median_queueing_delay_ms, r.median_objective
        );
    }

    let get = |name: &str| rows.iter().find(|r| r.algorithm == name).expect("row");
    let ideal = get("Remy-Phi-ideal");
    let practical = get("Remy-Phi-practical");
    let remy = get("Remy");
    let cubic = get("Cubic");

    println!("\npaper's shape checks:");
    println!(
        "  ideal ≥ practical on objective: {:.3} vs {:.3}  [{}]",
        ideal.median_objective,
        practical.median_objective,
        ideal.median_objective >= practical.median_objective - 0.05
    );
    println!(
        "  Phi variants ≥ plain Remy:      {:.3}/{:.3} vs {:.3}  [{}]",
        ideal.median_objective,
        practical.median_objective,
        remy.median_objective,
        ideal.median_objective >= remy.median_objective - 0.05
    );
    println!(
        "  every Remy variant > Cubic:     min {:.3} vs {:.3}  [{}]",
        remy.median_objective
            .min(ideal.median_objective)
            .min(practical.median_objective),
        cubic.median_objective,
        remy.median_objective > cubic.median_objective
    );
    println!(
        "  queueing delay (ms): Cubic {:.1}, Remy {:.1}, practical {:.1}, ideal {:.1} \
         (the paper's Remy paces more tightly; see EXPERIMENTS.md)",
        cubic.median_queueing_delay_ms,
        remy.median_queueing_delay_ms,
        practical.median_queueing_delay_ms,
        ideal.median_queueing_delay_ms,
    );

    write_json("table3", &rows);
}
