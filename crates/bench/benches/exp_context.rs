//! Context-plane scale bench: reports/sec and query latency of the live
//! `ContextServer` as sender count and shard count grow.
//!
//! The paper's provider-run context plane must absorb end-of-connection
//! reports from millions of senders and answer lookups at connection
//! setup. This bench drives a real server over loopback TCP with a grid
//! of (senders × shards) and measures, per cell:
//!
//! - single-frame reports/sec (one `Report` frame per report — the
//!   pre-batch protocol),
//! - batched reports/sec (`BatchReport` frames carrying 64 reports — the
//!   write-behind flush path),
//! - p50/p99 single-query latency against the loaded store.
//!
//! Full mode writes `BENCH_context.json` at the repo root for cross-PR
//! comparison (same convention as `BENCH_engine.json`); `--test` runs a
//! reduced grid for CI smoke.

use std::net::SocketAddr;
use std::time::Instant;

use phi_core::context::{FlowSummary, PathKey, StoreConfig};
use phi_core::server::{ContextClient, ContextServer, ServerConfig};
use serde::Serialize;

/// Reports shipped per batch frame in the batched phase — the default
/// write-behind `max_items`.
const BATCH: usize = 64;

/// Client threads driving each phase. The container is small, so a few
/// threads saturate the server; the *senders* axis scales the keyspace
/// and per-path state, not the thread count.
const THREADS: usize = 4;

fn summary(i: u64) -> FlowSummary {
    FlowSummary {
        bytes: 200_000 + i * 1_000,
        duration_ns: 1_500_000_000,
        mean_rtt_ms: 165.0,
        min_rtt_ms: 150.0,
        retransmits: i.is_multiple_of(7) as u32,
        timeouts: 0,
    }
}

/// Pre-connected clients, each owning a contiguous slice of the sender
/// index space. Connection setup stays *outside* every timed region —
/// the plane's steady state serves long-lived connections, so a cell's
/// number must not be dominated by accept/handshake cost.
fn connect_workers(addr: SocketAddr, senders: usize) -> Vec<(ContextClient, usize, usize)> {
    let per = senders.div_ceil(THREADS);
    (0..THREADS)
        .map(|t| (t * per, ((t + 1) * per).min(senders)))
        .filter(|(lo, hi)| lo < hi)
        .map(|(lo, hi)| (ContextClient::connect(addr).expect("connect"), lo, hi))
        .collect()
}

/// Ship `reports_per_sender` reports for every sender, one wire frame
/// per report. Returns reports/sec.
fn drive_single(addr: SocketAddr, senders: usize, reports_per_sender: usize) -> f64 {
    let workers = connect_workers(addr, senders);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (mut c, lo, hi) in workers {
            scope.spawn(move || {
                for r in 0..reports_per_sender {
                    for s in lo..hi {
                        c.report(PathKey(s as u64), summary(r as u64))
                            .expect("report");
                    }
                }
            });
        }
    });
    (senders * reports_per_sender) as f64 / t0.elapsed().as_secs_f64()
}

/// Ship the same reports through `BatchReport` frames of `BATCH` items
/// (the write-behind flush path). Returns reports/sec.
fn drive_batched(addr: SocketAddr, senders: usize, reports_per_sender: usize) -> f64 {
    let workers = connect_workers(addr, senders);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (mut c, lo, hi) in workers {
            scope.spawn(move || {
                let mut buf: Vec<(PathKey, FlowSummary)> = Vec::with_capacity(BATCH);
                for r in 0..reports_per_sender {
                    for s in lo..hi {
                        buf.push((PathKey(s as u64), summary(r as u64)));
                        if buf.len() == BATCH {
                            c.report_batch(&buf).expect("batch report");
                            buf.clear();
                        }
                    }
                }
                if !buf.is_empty() {
                    c.report_batch(&buf).expect("batch report");
                }
            });
        }
    });
    (senders * reports_per_sender) as f64 / t0.elapsed().as_secs_f64()
}

/// `queries` single lookups round-robin over the keyspace, measured
/// individually. Returns (p50_ms, p99_ms).
fn drive_queries(addr: SocketAddr, senders: usize, queries: usize) -> (f64, f64) {
    let mut c = ContextClient::connect(addr).expect("connect");
    let mut lat_ms: Vec<f64> = Vec::with_capacity(queries);
    for q in 0..queries {
        let path = PathKey((q % senders) as u64);
        let t0 = Instant::now();
        c.lookup(path).expect("lookup");
        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    let pick =
        |p: f64| lat_ms[((lat_ms.len() as f64 * p).ceil() as usize - 1).min(lat_ms.len() - 1)];
    (pick(0.50), pick(0.99))
}

#[derive(Serialize)]
struct Cell {
    senders: usize,
    shards: usize,
    single_reports_per_sec: f64,
    batch_reports_per_sec: f64,
    batch_speedup: f64,
    query_p50_ms: f64,
    query_p99_ms: f64,
}

#[derive(Serialize)]
struct BenchReport {
    batch_items: usize,
    client_threads: usize,
    reports_per_sender: usize,
    queries: usize,
    grid: Vec<Cell>,
}

/// One grid cell: a fresh sharded server per phase so the single and
/// batched paths load identical (empty) stores. Each phase is the best
/// of `iters` passes — the box is small and shared, so a single pass
/// can eat an arbitrary scheduling stall.
fn run_cell(
    senders: usize,
    shards: usize,
    reports_per_sender: usize,
    queries: usize,
    iters: usize,
) -> Cell {
    let fresh = || {
        ContextServer::start_sharded(
            "127.0.0.1:0",
            StoreConfig::default(),
            ServerConfig::default(),
            shards,
        )
        .expect("bind")
    };
    let best = |f: &dyn Fn(SocketAddr) -> f64| {
        let server = fresh();
        let rate = (0..iters).map(|_| f(server.addr())).fold(0.0f64, f64::max);
        server.shutdown();
        rate
    };

    let single_rps = best(&|addr| drive_single(addr, senders, reports_per_sender));
    let batch_rps = best(&|addr| drive_batched(addr, senders, reports_per_sender));

    // Queries run against a batch-loaded server: every path has state.
    let server = fresh();
    drive_batched(server.addr(), senders, reports_per_sender);
    let (p50_ms, p99_ms) = drive_queries(server.addr(), senders, queries);
    server.shutdown();

    let round = |v: f64, places: f64| (v * places).round() / places;
    Cell {
        senders,
        shards,
        single_reports_per_sec: round(single_rps, 10.0),
        batch_reports_per_sec: round(batch_rps, 10.0),
        batch_speedup: round(batch_rps / single_rps, 100.0),
        query_p50_ms: round(p50_ms, 1000.0),
        query_p99_ms: round(p99_ms, 1000.0),
    }
}

fn main() {
    // Cargo passes `--bench`; CI's smoke step passes `--test` for a
    // reduced grid that still exercises every phase end to end.
    let quick = std::env::args().any(|a| a == "--test");
    let (sender_grid, shard_grid, reports_per_sender, queries, iters) = if quick {
        (vec![16, 64], vec![1, 4], 2, 200, 1)
    } else {
        (vec![64, 256, 1024], vec![1, 8], 8, 2_000, 5)
    };

    let mut cells: Vec<Cell> = Vec::new();
    for &shards in &shard_grid {
        for &senders in &sender_grid {
            let cell = run_cell(senders, shards, reports_per_sender, queries, iters);
            println!(
                "context/{shards}shard_{senders}senders          single: {:.3e} rep/s  \
                 batch({BATCH}): {:.3e} rep/s  ({:.1}x)  query p50: {:.3} ms  p99: {:.3} ms",
                cell.single_reports_per_sec,
                cell.batch_reports_per_sec,
                cell.batch_speedup,
                cell.query_p50_ms,
                cell.query_p99_ms,
            );
            cells.push(cell);
        }
    }

    // The tentpole claim, checked where it matters most: at the largest
    // sender count the batch path must amortize codec + syscall cost to
    // at least 2x the single-frame path. Enforced in full mode only —
    // the CI smoke grid is too small for a stable ratio.
    let largest = *sender_grid.iter().max().expect("non-empty grid");
    for cell in cells.iter().filter(|c| c.senders == largest) {
        let speedup = cell.batch_speedup;
        println!(
            "context/claim {}shard_{}senders            batch speedup {speedup:.1}x (need >= 2x)",
            cell.shards, cell.senders,
        );
        assert!(
            quick || speedup >= 2.0,
            "batch path only {speedup:.2}x single at {} senders / {} shards",
            cell.senders,
            cell.shards
        );
    }

    if !quick {
        let report = BenchReport {
            batch_items: BATCH,
            client_threads: THREADS,
            reports_per_sender,
            queries,
            grid: cells,
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize") + "\n";
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_context.json");
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
