//! Datacenter incast bench: Cubic vs DCTCP through the shared-buffer
//! switch, across fan-in sizes.
//!
//! The backpressure-plane counterpart of the WAN figure benches: a
//! synchronized fan-in of `workers` senders pushes one 64 KB block each
//! through a shallow shared-pool switch (DT admission, DCTCP-style step
//! ECN). Cubic overflows the pool, strands flow tails in 200 ms-floor
//! retransmission timeouts, and collapses; DCTCP rides the ECN marks
//! and finishes near line rate. Reported per cell:
//!
//! - **goodput** — total bytes over the fan-in's makespan (first start
//!   to last completion), the quantity that collapses in the classic
//!   incast figure;
//! - **p99 FCT** — tail flow-completion time, the straggler's story;
//! - switch counters (pool rejections, ECN marks) and sender timeouts.
//!
//! Full mode sweeps fan-in ∈ {8, 16, 32} for both controllers and
//! writes `BENCH_dctcp.json` at the repo root for cross-PR comparison
//! (same convention as `BENCH_fluid.json`); `--test` runs one reduced
//! cell per controller for CI smoke. The sweep reproduces both halves
//! of the incast literature: DCTCP holds ≥2× Cubic's goodput while its
//! own synchronized slow-start burst fits the pool (fan-in 8, 16), and
//! once the cohort's first window alone overflows the buffer (fan-in
//! 32) DCTCP degrades too — it delays collapse rather than abolishing
//! it.

use std::time::Instant;

use phi_core::harness::{
    provision_cubic, provision_dctcp, run_experiment, ExperimentSpec, ProvisionCtx, Provisioned,
};
use phi_sim::switch::{EcnSpec, SwitchSpec};
use phi_sim::time::Dur;
use phi_tcp::cubic::CubicParams;
use phi_tcp::dctcp::DctcpParams;
use phi_workload::{IncastConfig, OnOffConfig};
use serde::Serialize;

/// One synchronized 64 KB-per-worker burst through a 48 KB shared pool
/// (DT α = 8, step ECN at 9 KB) on a 50 Mbit/s, 2 ms-RTT dumbbell — the
/// same collapse point `tests/e2e_incast.rs` pins.
fn incast_spec(workers: u32) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        workers as usize,
        // Placeholder on/off config; the incast source replaces it.
        OnOffConfig::fig2(),
        Dur::from_secs(10),
        0xDC_7C_B0 + u64::from(workers),
    );
    spec.dumbbell.bottleneck_bps = 50_000_000;
    spec.dumbbell.access_bps = 400_000_000;
    spec.dumbbell.rtt = Dur::from_millis(2);
    let incast = IncastConfig {
        workers,
        bytes_per_worker: 64 * 1024,
        rounds: 1,
        round_gap_secs: 0.0,
        jitter_secs: 0.0,
    };
    spec.with_switch(
        SwitchSpec::shared(48_000)
            .with_alpha(8.0)
            .with_ecn(EcnSpec::step(9_000)),
    )
    .with_incast(incast)
}

#[derive(Serialize)]
struct Row {
    cc: &'static str,
    workers: u32,
    bytes_per_worker: u64,
    flows: u64,
    goodput_mbps: f64,
    mean_fct_ms: f64,
    p99_fct_ms: f64,
    timeouts: u64,
    shared_drops: u64,
    ecn_marked: u64,
    wall_secs: f64,
}

fn drive(
    cc: &'static str,
    workers: u32,
    provision: impl FnMut(ProvisionCtx<'_>) -> Provisioned,
) -> Row {
    let spec = incast_spec(workers);
    let t0 = Instant::now();
    let r = run_experiment(&spec, provision);
    let wall = t0.elapsed().as_secs_f64();

    let reports: Vec<_> = r.per_sender.iter().flatten().collect();
    assert!(!reports.is_empty(), "{cc}/{workers}: no flows completed");
    let bytes: u64 = reports.iter().map(|f| f.bytes).sum();
    let t_first = reports.iter().map(|f| f.start).min().expect("flows ran");
    let t_last = reports.iter().map(|f| f.end).max().expect("flows ran");
    let goodput_mbps = bytes as f64 * 8.0 / (t_last - t_first).as_secs_f64() / 1e6;

    let mut fct_ms: Vec<f64> = reports
        .iter()
        .map(|f| f.duration().as_secs_f64() * 1e3)
        .collect();
    fct_ms.sort_by(|a, b| a.partial_cmp(b).expect("FCTs are finite"));
    let p99_fct_ms = fct_ms[((fct_ms.len() - 1) as f64 * 0.99).round() as usize];
    let mean_fct_ms = fct_ms.iter().sum::<f64>() / fct_ms.len() as f64;

    let timeouts: u64 = reports.iter().map(|f| f.timeouts).sum();
    let [left, right] = r.switch_stats.expect("switch installed");
    let round3 = |v: f64| (v * 1e3).round() / 1e3;
    let row = Row {
        cc,
        workers,
        bytes_per_worker: 64 * 1024,
        flows: reports.len() as u64,
        goodput_mbps: round3(goodput_mbps),
        mean_fct_ms: round3(mean_fct_ms),
        p99_fct_ms: round3(p99_fct_ms),
        timeouts,
        shared_drops: left.shared_drops + right.shared_drops,
        ecn_marked: left.ecn_marked + right.ecn_marked,
        wall_secs: (wall * 1e4).round() / 1e4,
    };
    println!(
        "dctcp/{cc}_{workers}x64KB          goodput: {:.3} Mbit/s  p99 FCT: {:.1} ms  \
         timeouts: {timeouts}  pool drops: {}  marks: {}  wall: {:.3} s",
        row.goodput_mbps, row.p99_fct_ms, row.shared_drops, row.ecn_marked, row.wall_secs,
    );
    row
}

fn main() {
    // Cargo passes `--bench`; CI's smoke step passes `--test` for one
    // reduced cell per controller.
    let quick = std::env::args().any(|a| a == "--test");
    let fan_ins: &[u32] = if quick { &[8] } else { &[8, 16, 32] };

    let mut rows = Vec::new();
    for &workers in fan_ins {
        let cubic = drive("cubic", workers, provision_cubic(CubicParams::default()));
        let dctcp = drive("dctcp", workers, provision_dctcp(DctcpParams::default()));
        println!(
            "dctcp/claim_{workers} dctcp {:.3} Mbit/s vs cubic {:.3} Mbit/s ({:.2}x)",
            dctcp.goodput_mbps,
            cubic.goodput_mbps,
            dctcp.goodput_mbps / cubic.goodput_mbps,
        );
        // The e2e acceptance margin, re-checked across the sweep: 2x
        // while DCTCP's own synchronized slow-start burst (workers x 2
        // segments) still fits the pool. Past that point (32 x ~2.9 KB
        // > 48 KB) even marked traffic takes pool rejections, so DCTCP
        // merely *delays* collapse — it must still beat Cubic, but the
        // margin narrows (observed 1.71x).
        let floor = if u64::from(workers) * 2 * 1_448 <= 48_000 {
            2.0
        } else {
            1.3
        };
        assert!(
            quick || dctcp.goodput_mbps >= floor * cubic.goodput_mbps,
            "DCTCP lost its {floor}x margin at fan-in {workers}: {:.3} vs {:.3}",
            dctcp.goodput_mbps,
            cubic.goodput_mbps,
        );
        rows.push(cubic);
        rows.push(dctcp);
    }

    if !quick {
        let json = serde_json::to_string_pretty(&rows).expect("serialize") + "\n";
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dctcp.json");
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
