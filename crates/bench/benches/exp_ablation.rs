//! A1 / A2 — ablations of Phi design choices called out in DESIGN.md.
//!
//! **A1 — context freshness (§2.2.2's trade-off):** the practical design
//! refreshes shared knowledge only at connection boundaries. We compare
//! Cubic-Phi policy selection under three context feeds: none (always
//! default parameters), practical (lookup at flow start), and an ideal
//! oracle (fresh utilization at every flow start, straight from the
//! link). The gap practical↔ideal is the price of staleness; the gap
//! none↔practical is what minimal sharing already buys.
//!
//! **A2 — the loss term in the power metric:** the paper extends power
//! `P = r/d` to `P_l = r(1−l)/d`. Optimizing the plain metric can pick
//! lossier settings; this ablation reruns the Figure 2b sweep under both
//! objectives and reports the loss rate of each argmax.

use phi_bench::{banner, pct, scale, write_json};
use phi_core::harness::{run_repeated, ExperimentSpec, Provisioned};
use phi_core::hooks::{IdealOracleHook, PracticalHook};
use phi_core::{
    provision_cubic, provision_cubic_phi, score, sweep_cubic, Objective, PolicyTable, SweepSpec,
};
use phi_sim::time::Dur;
use phi_tcp::cubic::{Cubic, CubicParams};
use phi_tcp::report::RunMetrics;
use phi_workload::OnOffConfig;
use serde::Serialize;

#[derive(Serialize)]
struct FreshnessRow {
    feed: String,
    throughput_mbps: f64,
    queueing_delay_ms: f64,
    loss_rate: f64,
    power: f64,
}

#[derive(Serialize)]
struct ObjectiveRow {
    objective: String,
    best_init_window: f64,
    best_init_ssthresh: f64,
    best_loss_rate: f64,
    best_queue_ms: f64,
    best_power_loss_score: f64,
}

fn main() {
    let sc = scale();

    // ---------------- A1: context freshness ----------------------------
    banner("Ablation A1: context freshness (none vs practical vs ideal oracle)");
    let spec = ExperimentSpec::new(10, OnOffConfig::fig2(), Dur::from_secs(sc.sim_secs), 6006);
    let base = spec.base_rtt_ms();
    let policy = PolicyTable::reference();

    let mean = |runs: Vec<phi_core::RunResult>| {
        RunMetrics::mean_of(&runs.iter().map(|r| r.metrics.clone()).collect::<Vec<_>>())
    };

    let none = mean(run_repeated(
        &spec,
        sc.runs,
        provision_cubic(CubicParams::default()),
    ));
    let practical = mean(run_repeated(
        &spec,
        sc.runs,
        provision_cubic_phi(policy.clone()),
    ));
    let ideal = {
        let policy = policy.clone();
        mean(run_repeated(&spec, sc.runs, move |ctx| {
            let policy = policy.clone();
            let rate = ctx.net.topology.link(ctx.net.bottleneck).rate_bps;
            let oracle =
                IdealOracleHook::new(ctx.net.bottleneck, rate, ctx.net.senders.len() as u32);
            Provisioned {
                factory: Box::new(move |snap| {
                    let params = match snap {
                        Some(s) => policy.params_for(s),
                        None => CubicParams::default(),
                    };
                    Box::new(Cubic::new(params))
                }),
                hook: Box::new(oracle),
            }
        }))
    };
    // A practical arm whose store is *never* updated mid-run would be the
    // worst case; our practical hook reports at every flow end, so the gap
    // to the ideal oracle quantifies exactly the §2.2.2 staleness.
    let _ = PracticalHook::new; // (referenced for the doc trail)

    let mut rows = Vec::new();
    println!(
        "{:<26} {:>10} {:>11} {:>9} {:>9}",
        "context feed", "tput", "queue(ms)", "loss", "P_l"
    );
    for (name, m) in [
        ("none (always defaults)", &none),
        ("practical (flow-boundary)", &practical),
        ("ideal (fresh oracle)", &ideal),
    ] {
        let p = score(Objective::PowerLoss, m, base);
        println!(
            "{:<26} {:>10.2} {:>11.2} {:>9} {:>9.4}",
            name,
            m.throughput_mbps,
            m.queueing_delay_ms,
            pct(m.loss_rate),
            p
        );
        rows.push(FreshnessRow {
            feed: name.to_string(),
            throughput_mbps: m.throughput_mbps,
            queueing_delay_ms: m.queueing_delay_ms,
            loss_rate: m.loss_rate,
            power: p,
        });
    }
    println!(
        "\nsharing gain (practical/none): {:.2}x; staleness cost (ideal/practical): {:.2}x",
        rows[1].power / rows[0].power,
        rows[2].power / rows[1].power
    );
    assert!(
        rows[1].power >= rows[0].power * 0.95,
        "practical sharing should not lose to no sharing"
    );

    // ---------------- A2: the loss term in the objective ---------------
    banner("Ablation A2: optimizing P = r/d vs P_l = r(1-l)/d");
    // A *shallow* buffer is where the metrics diverge: aggressive settings
    // then buy throughput with loss rather than with queueing delay, so
    // the plain power metric cannot see the damage.
    let mut spec = ExperimentSpec::new(
        14,
        OnOffConfig::fig2(),
        Dur::from_secs(sc.sim_secs),
        2002, // the Figure 2b workload
    );
    spec.dumbbell.buffer_bdp_multiple = 0.25;
    let grid = if sc.full_grid {
        SweepSpec::short_flow()
    } else {
        SweepSpec::quick()
    };
    let mut obj_rows = Vec::new();
    for (name, obj) in [
        ("P = r/d", Objective::Power),
        ("P_l = r(1-l)/d", Objective::PowerLoss),
    ] {
        let res = sweep_cubic(&spec, &grid, sc.runs, obj);
        let best = res.best();
        // Score both argmaxes on the loss-aware metric for comparability.
        let pl = score(Objective::PowerLoss, &best.mean, spec.base_rtt_ms());
        println!(
            "argmax under {name}: initWnd {}, ssthresh {}, loss {}, queue {:.1} ms, P_l {:.4}",
            best.params.init_window,
            best.params.init_ssthresh,
            pct(best.mean.loss_rate),
            best.mean.queueing_delay_ms,
            pl
        );
        obj_rows.push(ObjectiveRow {
            objective: name.to_string(),
            best_init_window: best.params.init_window,
            best_init_ssthresh: best.params.init_ssthresh,
            best_loss_rate: best.mean.loss_rate,
            best_queue_ms: best.mean.queueing_delay_ms,
            best_power_loss_score: pl,
        });
    }
    println!(
        "\nloss of the P-argmax vs P_l-argmax: {} vs {} — the loss term steers \
         the optimizer away from buffer-filling settings",
        pct(obj_rows[0].best_loss_rate),
        pct(obj_rows[1].best_loss_rate)
    );
    assert!(
        obj_rows[1].best_loss_rate <= obj_rows[0].best_loss_rate + 1e-9,
        "the loss-aware objective must not pick a lossier argmax"
    );
    if obj_rows[0].best_loss_rate <= obj_rows[1].best_loss_rate + 1e-9 {
        println!(
            "(both objectives picked equally clean settings in this grid — \
             the loss term is a guard rail, not always binding)"
        );
    }

    write_json("ablation", &(rows, obj_rows));
}
