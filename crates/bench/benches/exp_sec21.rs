//! S21 — §2.1: the opportunity for sharing.
//!
//! The paper samples 1-in-4096 packets of a large provider's egress,
//! buckets flows by (destination /24, minute), and reports: "50% of the
//! flows share the WAN path with at least 5 other flows while 12% share
//! it with at least 100 other flows. The actual sharing (without the
//! sub-sampling) is likely to be much higher."
//!
//! We run synthetic CDN-style egress (Zipf destination popularity, Pareto
//! flow sizes) through the identical sampler → collector → CDF pipeline,
//! print the CCDF series, and also quantify the paper's last sentence by
//! computing the *unsampled* sharing alongside.

use phi_bench::{banner, full_mode, pct, write_json};
use phi_telemetry::{
    generate_flows, Collector, EgressConfig, Mode, Sampler, SharingCdf, PAPER_RATE,
};
use phi_workload::SeedRng;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    flows: usize,
    packets_observed: u64,
    packets_sampled: u64,
    sampled_p_ge_5: f64,
    sampled_p_ge_100: f64,
    sampled_ccdf: Vec<(u64, f64)>,
    unsampled_p_ge_5: f64,
    unsampled_p_ge_100: f64,
    median_sharing_sampled: u64,
    median_sharing_unsampled: u64,
}

fn main() {
    let mut cfg = EgressConfig::default();
    if full_mode() {
        cfg.flows = 600_000;
        cfg.minutes = 15;
    }
    banner(&format!(
        "Section 2.1: path-sharing from sampled IPFIX ({} flows, {} /24s, {} min, 1/{} sampling)",
        cfg.flows, cfg.subnets, cfg.minutes, PAPER_RATE
    ));

    let mut rng = SeedRng::new(21);
    let flows = generate_flows(&cfg, &mut rng);

    // Sampled pipeline (what the paper's collector sees).
    let mut sampler = Sampler::new(PAPER_RATE, Mode::Deterministic, rng.fork("sampler"));
    let mut sampled_collector = Collector::new();
    // Unsampled ground truth (what the paper says is "likely much higher").
    let mut full_collector = Collector::new();

    for flow in &flows {
        let mut any = false;
        for ts in flow.packet_times() {
            if let Some(rec) = sampler.observe(flow.key, ts, 1500) {
                sampled_collector.ingest(&rec);
            }
            if !any {
                // One record per (flow, minute of first packet) is enough
                // for distinct-flow counting in the ground-truth collector;
                // record each minute the flow touches.
                any = true;
            }
        }
        // Ground truth: the flow is present in every minute it spans.
        let first_min = flow.start_ms / 60_000;
        let last_ms = flow.start_ms + (flow.packets as f64 * flow.gap_ms) as u64;
        let last_min = last_ms / 60_000;
        for minute in first_min..=last_min {
            full_collector.ingest(&phi_telemetry::IpfixRecord {
                key: flow.key,
                ts_ms: minute * 60_000,
                bytes: 0,
                packets: 1,
            });
        }
    }

    let (observed, taken) = sampler.counters();
    println!("packets: {observed} observed, {taken} sampled");

    let sampled = SharingCdf::from_collector(&sampled_collector);
    let unsampled = SharingCdf::from_collector(&full_collector);

    let ks = [1u64, 2, 5, 10, 20, 50, 100, 200, 500];
    println!("\nsampled sharing CCDF (paper's measurement):");
    for (k, f) in sampled.ccdf_series(&ks) {
        println!("  >= {k:>3} co-flows: {:>7}", pct(f));
    }
    let (s5, s100) = sampled.paper_rows();
    let (u5, u100) = unsampled.paper_rows();
    println!(
        "\nheadline rows (sampled):   P[>=5] = {}, P[>=100] = {}",
        pct(s5),
        pct(s100)
    );
    println!("paper's production values: P[>=5] = 50%, P[>=100] = 12%");
    println!(
        "ground truth (unsampled):  P[>=5] = {}, P[>=100] = {}  — \"likely much higher\": {}",
        pct(u5),
        pct(u100),
        u5 > s5
    );

    assert!(s5 > 0.2, "sampled sharing should be substantial");
    assert!(u5 >= s5, "unsampled sharing must dominate sampled");

    write_json(
        "sec21",
        &Out {
            flows: cfg.flows,
            packets_observed: observed,
            packets_sampled: taken,
            sampled_p_ge_5: s5,
            sampled_p_ge_100: s100,
            sampled_ccdf: sampled.ccdf_series(&ks),
            unsampled_p_ge_5: u5,
            unsampled_p_ge_100: u100,
            median_sharing_sampled: sampled.quantile(0.5).unwrap_or(0),
            median_sharing_unsampled: unsampled.quantile(0.5).unwrap_or(0),
        },
    );
}
