//! F3 — Figure 3: stability (leave-one-out) analysis.
//!
//! "Is the improved performance merely a statistical fluke?" For each of
//! the n runs of a workload, take the parameter setting that was optimal
//! for that run alone and evaluate it on the other n − 1 runs. The paper's
//! finding: the transferred ("common") setting retains almost all of the
//! gain of each run's own optimum — the optimal settings are stable
//! properties of the workload, not of the noise.

use phi_bench::{banner, scale, write_json};
use phi_core::{leave_one_out, sweep_cubic, ExperimentSpec, Objective, SweepSpec};
use phi_sim::time::Dur;
use phi_workload::OnOffConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    workload: String,
    rows: Vec<RowOut>,
    mean_default: f64,
    mean_transferred: f64,
    mean_oracle: f64,
    retained_gain_fraction: f64,
}

#[derive(Serialize)]
struct RowOut {
    run: usize,
    default_score: f64,
    transferred_score: f64,
    oracle_score: f64,
}

fn main() {
    let sc = scale();
    let runs = sc.runs.max(4); // leave-one-out needs several runs
    let mut outs = Vec::new();

    for (name, senders) in [("low utilization", 4usize), ("high utilization", 12)] {
        let spec = ExperimentSpec::new(
            senders,
            OnOffConfig::fig2(),
            Dur::from_secs(sc.sim_secs),
            4100 + senders as u64,
        );
        let grid = if sc.full_grid {
            SweepSpec::short_flow()
        } else {
            SweepSpec::quick()
        };
        let res = sweep_cubic(&spec, &grid, runs, Objective::PowerLoss);
        let rows = leave_one_out(&res);

        banner(&format!(
            "Figure 3: leave-one-out over {runs} runs — {name} ({senders} senders)"
        ));
        println!(
            "{:<6} {:>12} {:>14} {:>12}",
            "run", "default P_l", "transferred", "oracle"
        );
        for r in &rows {
            println!(
                "{:<6} {:>12.4} {:>14.4} {:>12.4}",
                r.run, r.default_score, r.transferred_score, r.oracle_score
            );
        }
        let n = rows.len() as f64;
        let mean_default = rows.iter().map(|r| r.default_score).sum::<f64>() / n;
        let mean_transferred = rows.iter().map(|r| r.transferred_score).sum::<f64>() / n;
        let mean_oracle = rows.iter().map(|r| r.oracle_score).sum::<f64>() / n;
        // How much of the (oracle − default) gain the transferred setting
        // keeps — the paper's "almost equal to the gains from the optimal".
        let retained = if mean_oracle > mean_default {
            (mean_transferred - mean_default) / (mean_oracle - mean_default)
        } else {
            1.0
        };
        println!(
            "\nmeans: default {:.4}, transferred {:.4}, oracle {:.4}",
            mean_default, mean_transferred, mean_oracle
        );
        println!(
            "transferred setting retains {:.0}% of the oracle gain over default",
            retained * 100.0
        );
        assert!(
            mean_transferred >= mean_default * 0.95,
            "transferring one run's optimum should not lose to the default"
        );

        outs.push(Out {
            workload: name.to_string(),
            rows: rows
                .iter()
                .map(|r| RowOut {
                    run: r.run,
                    default_score: r.default_score,
                    transferred_score: r.transferred_score,
                    oracle_score: r.oracle_score,
                })
                .collect(),
            mean_default,
            mean_transferred,
            mean_oracle,
            retained_gain_fraction: retained,
        });
    }

    write_json("fig3", &outs);
}
