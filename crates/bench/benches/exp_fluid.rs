//! Fluid fast-path scale bench: how many flows the flow-level solver
//! simulates per wall-clock second, and the end-to-end harness demo of
//! a ≥10⁵-flow run.
//!
//! The packet engine costs ~74 ns/event and a short flow is hundreds of
//! events, which caps a run near 10⁴ flows; the fluid solver schedules
//! only flow arrivals and departures (two events per flow), so the same
//! budget covers 10⁵–10⁶ flows. This bench measures both layers:
//!
//! - **harness**: a full `run_experiment` with `ExperimentSpec::fluid`
//!   set — reports, metrics, utilization, the works — sized so a single
//!   run completes well over 10⁵ flows (the ISSUE 7 acceptance bar).
//! - **solver**: a bare `FluidSim` driven at ~10⁶ flows to measure the
//!   solver's raw event rate without report-building overhead.
//!
//! Full mode writes `BENCH_fluid.json` at the repo root for cross-PR
//! comparison (same convention as `BENCH_engine.json`); `--test` runs a
//! reduced sweep for CI smoke.

use std::time::Instant;

use phi_core::harness::{provision_cubic, run_experiment, ExperimentSpec};
use phi_sim::prelude::*;
use phi_tcp::cubic::{steady_state_rate_bps, CubicParams};
use phi_workload::{OnOffConfig, OnOffSource, SeedRng};
use serde::Serialize;

/// The scale workload: many short flows with brief think times, the
/// regime where packet-level simulation is hopeless and flow-level
/// approximation shines (mean 25 KB on, 100 ms off, both exponential).
fn scale_workload() -> OnOffConfig {
    OnOffConfig {
        mean_on_bytes: 25_000.0,
        mean_off_secs: 0.1,
        deterministic: false,
    }
}

/// A provider-scale dumbbell: per-pair access links far below the
/// aggregate bottleneck, 20 ms RTT.
fn scale_dumbbell(pairs: usize) -> DumbbellSpec {
    DumbbellSpec {
        pairs,
        bottleneck_bps: 1_000_000 * pairs as u64, // contended but not starved
        rtt: Dur::from_millis(20),
        buffer_bdp_multiple: 5.0,
        access_bps: 50_000_000,
    }
}

#[derive(Serialize)]
struct Row {
    mode: &'static str,
    senders: usize,
    duration_secs: f64,
    flows: u64,
    events: u64,
    wall_secs: f64,
    flows_per_sec: f64,
    events_per_sec: f64,
}

fn row(
    mode: &'static str,
    senders: usize,
    duration_secs: f64,
    flows: u64,
    events: u64,
    wall_secs: f64,
) -> Row {
    let round = |v: f64| (v * 10.0).round() / 10.0;
    let row = Row {
        mode,
        senders,
        duration_secs,
        flows,
        events,
        wall_secs: (wall_secs * 1e4).round() / 1e4,
        flows_per_sec: round(flows as f64 / wall_secs),
        events_per_sec: round(events as f64 / wall_secs),
    };
    println!(
        "fluid/{mode}_{senders}x{duration_secs}s          flows: {flows}  events: {events}  \
         wall: {:.3} s  ({:.3e} flows/s, {:.3e} events/s)",
        row.wall_secs, row.flows_per_sec, row.events_per_sec,
    );
    row
}

/// End-to-end harness run through `run_experiment` with the fluid path
/// enabled. Returns (completed flows, events, wall seconds).
fn drive_harness(pairs: usize, secs: u64) -> Row {
    let mut spec =
        ExperimentSpec::new(pairs, scale_workload(), Dur::from_secs(secs), 0xF1_07).with_fluid();
    spec.dumbbell = scale_dumbbell(pairs);
    let t0 = Instant::now();
    let result = run_experiment(&spec, provision_cubic(CubicParams::default()));
    let wall = t0.elapsed().as_secs_f64();
    row(
        "harness",
        pairs,
        secs as f64,
        result.metrics.flows_completed as u64,
        result.events,
        wall,
    )
}

/// Bare solver run: same topology shape and workload, no report
/// building, no slow-start model — the solver's raw event rate.
fn drive_solver(senders: usize, secs: u64) -> Row {
    let spec = scale_dumbbell(senders);
    let payload_frac = f64::from(wire::MSS) / f64::from(wire::FULL_SEGMENT);
    let mut fsim = FluidSim::new();
    let bottleneck = fsim.add_link(spec.bottleneck_bps as f64 * payload_frac);
    let cubic_cap = steady_state_rate_bps(
        &CubicParams::default(),
        spec.rtt.as_secs_f64(),
        1e-4,
        f64::from(wire::MSS),
    );
    let class = fsim.add_class(
        vec![bottleneck],
        (spec.access_bps as f64 * payload_frac).min(cubic_cap),
    );
    let root = SeedRng::new(0xF1_05);
    let workload = scale_workload();
    for i in 0..senders {
        let mut source = OnOffSource::new(workload, root.fork_indexed("sender", i as u64));
        fsim.add_sender(
            class,
            Box::new(move || {
                let plan = source.next_flow();
                FluidFlowPlan {
                    bytes: plan.bytes.max(1),
                    off_ns: plan.off_ns,
                }
            }),
        );
    }

    let t0 = Instant::now();
    fsim.run_until(Time::ZERO + Dur::from_secs(secs));
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        fsim.census().conserved(1e-6),
        "fluid byte-conservation violated at scale: {:?}",
        fsim.census()
    );
    row(
        "solver",
        senders,
        secs as f64,
        fsim.records().len() as u64,
        fsim.events(),
        wall,
    )
}

fn main() {
    // Cargo passes `--bench`; CI's smoke step passes `--test` for a
    // reduced sweep that still exercises both layers end to end.
    let quick = std::env::args().any(|a| a == "--test");
    let (harness_pairs, harness_secs, solver_senders, solver_secs) = if quick {
        (40, 5, 100, 5)
    } else {
        (400, 100, 2_000, 120)
    };

    let harness = drive_harness(harness_pairs, harness_secs);
    let solver = drive_solver(solver_senders, solver_secs);

    // The tentpole claims, checked in full mode only (the smoke sweep is
    // sized for CI wall-clock, not for the flow-count bar): the harness
    // path must clear 10⁵ flows in one run, and the bare solver must
    // reach the 10⁶-flow regime.
    println!(
        "fluid/claim harness {} flows (need >= 1e5), solver {} flows (need >= 1e6)",
        harness.flows, solver.flows,
    );
    assert!(
        quick || harness.flows >= 100_000,
        "harness fluid run completed only {} flows",
        harness.flows
    );
    assert!(
        quick || solver.flows >= 1_000_000,
        "solver fluid run completed only {} flows",
        solver.flows
    );

    if !quick {
        let report = vec![harness, solver];
        let json = serde_json::to_string_pretty(&report).expect("serialize") + "\n";
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fluid.json");
        match std::fs::write(path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
