//! Coarse localization of a detected event (the Figure 5 punchline:
//! "an unreachability event … localized to an ISP network in a metro").
//!
//! Given a detected window, we measure each slice's *deficit* (expected
//! minus actual volume) and search for the simplest dimensional
//! description that explains the bulk of it: first single dimension
//! values (all of AS 7922 down?), then pairs (AS 7922 × Seattle?), then
//! full slices. A candidate qualifies when it captures most of the total
//! deficit *and* its own traffic dropped substantially — the second
//! condition rejects "big but healthy" slices that dominate volume.

use serde::{Deserialize, Serialize};

use crate::detect::AnomalyEvent;
use crate::model::SeasonalModel;
use crate::series::{Dimension, SliceKey, SlicedSeries};

/// A dimensional description of the affected population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Localization {
    /// The constrained dimensions, e.g. `[(Asn, 7922), (Metro, 3)]`.
    pub constraints: Vec<(Dimension, u32)>,
    /// Fraction of the total deficit this description captures.
    pub deficit_share: f64,
    /// Relative drop within the described population, in [0, 1].
    pub drop_fraction: f64,
}

impl Localization {
    /// True if `key` matches this description.
    pub fn matches(&self, key: &SliceKey) -> bool {
        self.constraints.iter().all(|&(d, v)| key.get(d) == v)
    }
}

/// Localizer configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalizerConfig {
    /// Minimum share of the total deficit a description must capture.
    pub min_deficit_share: f64,
    /// Minimum relative drop within the described population.
    pub min_drop_fraction: f64,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        LocalizerConfig {
            min_deficit_share: 0.8,
            min_drop_fraction: 0.5,
        }
    }
}

/// Localize `event` over the sliced data. Models are fit per slice with
/// the same period/training window used for detection.
pub fn localize(
    sliced: &SlicedSeries,
    event: &AnomalyEvent,
    period: usize,
    train_bins: usize,
    cfg: &LocalizerConfig,
) -> Option<Localization> {
    // Per-slice deficits over the event window.
    let mut deficits: Vec<(SliceKey, f64, f64)> = Vec::new(); // (key, expected, actual)
    for key in sliced.keys() {
        let series = sliced.series(key).expect("key from keys()");
        let model = SeasonalModel::fit(series, period, train_bins);
        let mut expected = 0.0;
        let mut actual = 0.0;
        for t in event.start_bin..=event.end_bin {
            expected += model.expected(t);
            actual += series.bins[t];
        }
        deficits.push((*key, expected, actual));
    }
    let total_deficit: f64 = deficits.iter().map(|(_, e, a)| (e - a).max(0.0)).sum();
    if total_deficit <= 0.0 {
        return None;
    }

    let score = |constraints: &[(Dimension, u32)]| -> Localization {
        let mut expected = 0.0;
        let mut actual = 0.0;
        for (key, e, a) in &deficits {
            if constraints.iter().all(|&(d, v)| key.get(d) == v) {
                expected += e;
                actual += a;
            }
        }
        let deficit = (expected - actual).max(0.0);
        Localization {
            constraints: constraints.to_vec(),
            deficit_share: deficit / total_deficit,
            drop_fraction: if expected > 0.0 {
                (deficit / expected).clamp(0.0, 1.0)
            } else {
                0.0
            },
        }
    };

    let qualifies = |l: &Localization| {
        l.deficit_share >= cfg.min_deficit_share && l.drop_fraction >= cfg.min_drop_fraction
    };

    let dims = [Dimension::Service, Dimension::Asn, Dimension::Metro];

    // Level 1: single-dimension descriptions, most-explaining first.
    let mut singles: Vec<Localization> = Vec::new();
    for &d in &dims {
        for v in sliced.values_of(d) {
            singles.push(score(&[(d, v)]));
        }
    }
    singles.sort_by(|a, b| b.deficit_share.total_cmp(&a.deficit_share));
    if let Some(best) = singles.iter().find(|l| qualifies(l)) {
        return Some(best.clone());
    }

    // Level 2: dimension pairs.
    let mut pairs: Vec<Localization> = Vec::new();
    for i in 0..dims.len() {
        for j in (i + 1)..dims.len() {
            for v1 in sliced.values_of(dims[i]) {
                for v2 in sliced.values_of(dims[j]) {
                    pairs.push(score(&[(dims[i], v1), (dims[j], v2)]));
                }
            }
        }
    }
    pairs.sort_by(|a, b| b.deficit_share.total_cmp(&a.deficit_share));
    if let Some(best) = pairs.iter().find(|l| qualifies(l)) {
        return Some(best.clone());
    }

    // Level 3: the single worst slice, if it qualifies.
    let mut full: Vec<Localization> = deficits
        .iter()
        .map(|(k, _, _)| {
            score(&[
                (Dimension::Service, k.service),
                (Dimension::Asn, k.asn),
                (Dimension::Metro, k.metro),
            ])
        })
        .collect();
    full.sort_by(|a, b| b.deficit_share.total_cmp(&a.deficit_share));
    full.into_iter().find(|l| qualifies(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect, DetectorConfig};

    const PERIOD: usize = 24;
    const DAYS: usize = 4;
    const N: usize = PERIOD * DAYS;

    /// Build sliced data where `hit(key)` slices lose `severity` of their
    /// traffic during the last-day window 80..88.
    fn build(hit: impl Fn(&SliceKey) -> bool, severity: f64) -> SlicedSeries {
        let mut s = SlicedSeries::new(300, N);
        for service in 1..=2u32 {
            for asn in [100, 200, 300] {
                for metro in [1, 2] {
                    let key = SliceKey {
                        service,
                        asn,
                        metro,
                    };
                    for t in 0..N {
                        let mut level = 1000.0;
                        if (80..88).contains(&t) && hit(&key) {
                            level *= 1.0 - severity;
                        }
                        s.add(key, t as u64 * 300, level);
                    }
                }
            }
        }
        s
    }

    fn event_for(s: &SlicedSeries) -> AnomalyEvent {
        let total = s.total();
        let model = SeasonalModel::fit(&total, PERIOD, 3 * PERIOD);
        let events = detect(&total, &model, &DetectorConfig::default());
        assert_eq!(events.len(), 1, "expected one aggregate event");
        events[0]
    }

    #[test]
    fn localizes_single_asn_outage() {
        let s = build(|k| k.asn == 200, 0.95);
        let e = event_for(&s);
        let loc = localize(&s, &e, PERIOD, 3 * PERIOD, &LocalizerConfig::default())
            .expect("should localize");
        assert_eq!(loc.constraints, vec![(Dimension::Asn, 200)]);
        assert!(loc.deficit_share > 0.9);
        assert!(loc.drop_fraction > 0.9);
    }

    #[test]
    fn localizes_asn_times_metro_outage() {
        // The Figure 5 case: an ISP in one metro.
        let s = build(|k| k.asn == 100 && k.metro == 2, 0.95);
        let e = event_for(&s);
        let loc = localize(&s, &e, PERIOD, 3 * PERIOD, &LocalizerConfig::default())
            .expect("should localize");
        assert_eq!(loc.constraints.len(), 2, "expected a pair: {loc:?}");
        assert!(loc.constraints.contains(&(Dimension::Asn, 100)));
        assert!(loc.constraints.contains(&(Dimension::Metro, 2)));
    }

    #[test]
    fn service_specific_issue_found() {
        // §1's example: VoIP unreliable, file hosting fine.
        let s = build(|k| k.service == 2, 0.9);
        let e = event_for(&s);
        let loc = localize(&s, &e, PERIOD, 3 * PERIOD, &LocalizerConfig::default())
            .expect("should localize");
        assert_eq!(loc.constraints, vec![(Dimension::Service, 2)]);
    }

    #[test]
    fn no_deficit_no_localization() {
        let s = build(|_| false, 0.0);
        // Construct a fake event window with no deficit behind it.
        let e = AnomalyEvent {
            start_bin: 80,
            end_bin: 87,
            mean_z: -1.0,
            deficit_fraction: 0.0,
        };
        assert!(localize(&s, &e, PERIOD, 3 * PERIOD, &LocalizerConfig::default()).is_none());
    }

    #[test]
    fn localization_matches_keys() {
        let loc = Localization {
            constraints: vec![(Dimension::Asn, 100), (Dimension::Metro, 2)],
            deficit_share: 1.0,
            drop_fraction: 1.0,
        };
        assert!(loc.matches(&SliceKey {
            service: 9,
            asn: 100,
            metro: 2
        }));
        assert!(!loc.matches(&SliceKey {
            service: 9,
            asn: 100,
            metro: 3
        }));
    }
}
