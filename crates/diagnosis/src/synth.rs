//! Synthetic request-volume telemetry with injectable outages.
//!
//! Substitutes for the production telemetry behind Figure 5: per-slice
//! Poisson request counts around a diurnal mean, with slice popularity
//! spread over services, ASes, and metros, and an optional injected
//! unreachability event (a multiplicative drop on the slices matching a
//! predicate over a time window) — the ground truth the detector and
//! localizer are scored against.

use phi_workload::SeedRng;
use serde::{Deserialize, Serialize};

use crate::series::{SliceKey, SlicedSeries};

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Services to simulate.
    pub services: u32,
    /// Client ASes.
    pub asns: u32,
    /// Metros.
    pub metros: u32,
    /// Bin width, seconds.
    pub bin_secs: u64,
    /// Bins per day (diurnal period).
    pub bins_per_day: usize,
    /// Days of data.
    pub days: usize,
    /// Mean requests per bin for the *largest* slice.
    pub base_rate: f64,
    /// Diurnal amplitude as a fraction of the mean (0..1).
    pub diurnal_amplitude: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            services: 2,
            asns: 6,
            metros: 4,
            bin_secs: 300, // 5-minute bins
            bins_per_day: 288,
            days: 4,
            base_rate: 2_000.0,
            diurnal_amplitude: 0.5,
        }
    }
}

/// An injected ground-truth outage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Affected AS (client ISP).
    pub asn: u32,
    /// Affected metro.
    pub metro: u32,
    /// First affected bin.
    pub start_bin: usize,
    /// One past the last affected bin.
    pub end_bin: usize,
    /// Fraction of traffic lost, in (0, 1].
    pub severity: f64,
}

impl Outage {
    /// True if `key` is in the blast radius.
    pub fn hits(&self, key: &SliceKey) -> bool {
        key.asn == self.asn && key.metro == self.metro
    }

    /// Outage duration in bins.
    pub fn duration_bins(&self) -> usize {
        self.end_bin - self.start_bin
    }
}

/// Generate a sliced telemetry series, optionally with an outage.
pub fn generate(cfg: &TelemetryConfig, outage: Option<&Outage>, rng: &mut SeedRng) -> SlicedSeries {
    let n_bins = cfg.bins_per_day * cfg.days;
    let mut sliced = SlicedSeries::new(cfg.bin_secs, n_bins);
    for service in 0..cfg.services {
        for asn in 0..cfg.asns {
            for metro in 0..cfg.metros {
                let key = SliceKey {
                    service,
                    asn,
                    metro,
                };
                // Stable per-slice popularity in (0.2, 1.0]: bigger ASes and
                // metros carry more traffic.
                let popularity = 1.0 / (1.0 + 0.3 * f64::from(asn) + 0.2 * f64::from(metro));
                let mut slice_rng = rng.fork_indexed(
                    "slice",
                    u64::from(service) << 32 | u64::from(asn) << 16 | u64::from(metro),
                );
                for t in 0..n_bins {
                    let phase = (t % cfg.bins_per_day) as f64 / cfg.bins_per_day as f64;
                    let diurnal =
                        1.0 + cfg.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).sin();
                    let mut lambda = cfg.base_rate * popularity * diurnal;
                    if let Some(o) = outage {
                        if o.hits(&key) && (o.start_bin..o.end_bin).contains(&t) {
                            lambda *= 1.0 - o.severity;
                        }
                    }
                    let count = poisson(lambda.max(0.0), &mut slice_rng);
                    sliced.add(key, t as u64 * cfg.bin_secs, count);
                }
            }
        }
    }
    sliced
}

/// Poisson sample: Knuth's method for small λ, normal approximation above.
fn poisson(lambda: f64, rng: &mut SeedRng) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.unit();
            if p <= limit {
                return k as f64;
            }
            k += 1;
            if k > 1_000 {
                return lambda; // numeric safety net
            }
        }
    }
    // Box–Muller normal approximation N(λ, λ).
    let u1 = rng.unit().max(1e-12);
    let u2 = rng.unit();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (lambda + lambda.sqrt() * z).max(0.0).round()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TelemetryConfig {
        TelemetryConfig {
            services: 1,
            asns: 3,
            metros: 2,
            bin_secs: 300,
            bins_per_day: 24,
            days: 3,
            base_rate: 1_000.0,
            diurnal_amplitude: 0.4,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_cfg();
        let a = generate(&cfg, None, &mut SeedRng::new(1));
        let b = generate(&cfg, None, &mut SeedRng::new(1));
        assert_eq!(a.total().bins, b.total().bins);
    }

    #[test]
    fn diurnal_pattern_visible_in_total() {
        let cfg = small_cfg();
        let s = generate(&cfg, None, &mut SeedRng::new(2));
        let total = s.total();
        // Mean of peak-phase bins vs trough-phase bins across days.
        let peak_phase = cfg.bins_per_day / 4;
        let trough_phase = 3 * cfg.bins_per_day / 4;
        let mut peak = 0.0;
        let mut trough = 0.0;
        for d in 0..cfg.days {
            peak += total.bins[d * cfg.bins_per_day + peak_phase];
            trough += total.bins[d * cfg.bins_per_day + trough_phase];
        }
        assert!(
            peak > 1.5 * trough,
            "diurnal shape missing: peak {peak} trough {trough}"
        );
    }

    #[test]
    fn outage_reduces_only_target_slices() {
        let cfg = small_cfg();
        let outage = Outage {
            asn: 1,
            metro: 0,
            start_bin: 50,
            end_bin: 60,
            severity: 0.9,
        };
        let with = generate(&cfg, Some(&outage), &mut SeedRng::new(3));
        let without = generate(&cfg, None, &mut SeedRng::new(3));

        let hit_key = SliceKey {
            service: 0,
            asn: 1,
            metro: 0,
        };
        let ok_key = SliceKey {
            service: 0,
            asn: 0,
            metro: 0,
        };
        let hit_with = with.series(&hit_key).unwrap().window_sum(50, 60);
        let hit_without = without.series(&hit_key).unwrap().window_sum(50, 60);
        assert!(
            hit_with < 0.3 * hit_without,
            "outage not applied: {hit_with} vs {hit_without}"
        );
        let ok_with = with.series(&ok_key).unwrap().window_sum(50, 60);
        let ok_without = without.series(&ok_key).unwrap().window_sum(50, 60);
        assert!(
            (ok_with - ok_without).abs() < 0.2 * ok_without.max(1.0),
            "healthy slice perturbed: {ok_with} vs {ok_without}"
        );
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = SeedRng::new(4);
        for &lambda in &[0.5, 5.0, 20.0, 100.0, 5000.0] {
            let n = 5_000;
            let mean: f64 = (0..n).map(|_| poisson(lambda, &mut rng)).sum::<f64>() / n as f64;
            let tol = (lambda / n as f64).sqrt() * 5.0 + 0.05 * lambda;
            assert!(
                (mean - lambda).abs() < tol.max(0.2),
                "λ={lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(0.0, &mut rng), 0.0);
    }
}
