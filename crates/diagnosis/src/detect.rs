//! Unreachability-event detection: sustained negative departures from the
//! seasonal baseline.
//!
//! A single low bin is noise; an unreachability event (Figure 5 shows one
//! lasting ~2 hours) is a *run* of bins whose robust z-score stays below a
//! threshold. The detector scans a z-score sequence and emits maximal
//! qualifying runs, requiring a minimum length to suppress flapping.

use serde::{Deserialize, Serialize};

use crate::model::SeasonalModel;
use crate::series::TimeSeries;

/// Detector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Z-score below which a bin is anomalous (negative).
    pub z_threshold: f64,
    /// Minimum consecutive anomalous bins to declare an event.
    pub min_run: usize,
    /// Bins of grace: a run survives up to this many non-anomalous bins
    /// inside it (handles partial recovery blips).
    pub max_gap: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            z_threshold: -3.0,
            min_run: 3,
            max_gap: 1,
        }
    }
}

/// A detected unreachability event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyEvent {
    /// First anomalous bin (inclusive).
    pub start_bin: usize,
    /// Last anomalous bin (inclusive).
    pub end_bin: usize,
    /// Mean z-score over the event.
    pub mean_z: f64,
    /// Fraction of expected volume missing over the event, in [0, 1].
    pub deficit_fraction: f64,
}

impl AnomalyEvent {
    /// Event duration in bins.
    pub fn duration_bins(&self) -> usize {
        self.end_bin - self.start_bin + 1
    }

    /// Event duration in seconds given the series' bin width.
    pub fn duration_secs(&self, bin_secs: u64) -> u64 {
        self.duration_bins() as u64 * bin_secs
    }
}

/// Scan `series` against `model` and return detected events.
pub fn detect(
    series: &TimeSeries,
    model: &SeasonalModel,
    cfg: &DetectorConfig,
) -> Vec<AnomalyEvent> {
    let z = model.zscores(series);
    let mut events = Vec::new();
    let mut run_start: Option<usize> = None;
    let mut last_bad = 0usize;

    let flush = |events: &mut Vec<AnomalyEvent>,
                 start: usize,
                 end: usize,
                 z: &[f64],
                 series: &TimeSeries| {
        let len = end - start + 1;
        if len < cfg.min_run {
            return;
        }
        let mean_z = z[start..=end].iter().sum::<f64>() / len as f64;
        let mut expected = 0.0;
        let mut actual = 0.0;
        for t in start..=end {
            expected += model.expected(t);
            actual += series.bins[t];
        }
        let deficit_fraction = if expected > 0.0 {
            ((expected - actual) / expected).clamp(0.0, 1.0)
        } else {
            0.0
        };
        events.push(AnomalyEvent {
            start_bin: start,
            end_bin: end,
            mean_z,
            deficit_fraction,
        });
    };

    for (t, &score) in z.iter().enumerate() {
        let bad = score <= cfg.z_threshold;
        match (run_start, bad) {
            (None, true) => {
                run_start = Some(t);
                last_bad = t;
            }
            (Some(_), true) => last_bad = t,
            (Some(start), false) => {
                if t - last_bad > cfg.max_gap {
                    flush(&mut events, start, last_bad, &z, series);
                    run_start = None;
                }
            }
            (None, false) => {}
        }
    }
    if let Some(start) = run_start {
        flush(&mut events, start, last_bad, &z, series);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_series_with_outage(n: usize, outage: std::ops::Range<usize>, level: f64) -> TimeSeries {
        let mut ts = TimeSeries::zeros(300, n);
        for t in 0..n {
            ts.bins[t] = if outage.contains(&t) { level } else { 1000.0 };
        }
        ts
    }

    fn model_for(ts: &TimeSeries, period: usize) -> SeasonalModel {
        SeasonalModel::fit(ts, period, ts.len())
    }

    #[test]
    fn detects_a_clean_outage_with_bounds() {
        // 3 days of 24 bins; outage on day 3 bins 56..62 (drop to 10%).
        let ts = flat_series_with_outage(72, 56..62, 100.0);
        let model = model_for(&ts, 24);
        let events = detect(&ts, &model, &DetectorConfig::default());
        assert_eq!(events.len(), 1, "events: {events:?}");
        let e = events[0];
        assert_eq!(e.start_bin, 56);
        assert_eq!(e.end_bin, 61);
        assert_eq!(e.duration_bins(), 6);
        assert_eq!(e.duration_secs(300), 1800);
        assert!(e.mean_z < -3.0);
        assert!((e.deficit_fraction - 0.9).abs() < 0.02);
    }

    #[test]
    fn short_blips_are_ignored() {
        let ts = flat_series_with_outage(72, 60..62, 0.0); // 2 bins < min_run 3
        let model = model_for(&ts, 24);
        let events = detect(&ts, &model, &DetectorConfig::default());
        assert!(events.is_empty(), "got {events:?}");
    }

    #[test]
    fn gap_tolerance_merges_runs() {
        let mut ts = flat_series_with_outage(72, 50..60, 0.0);
        ts.bins[55] = 1000.0; // one recovered bin inside the outage
        let model = model_for(&ts, 24);
        let events = detect(&ts, &model, &DetectorConfig::default());
        assert_eq!(events.len(), 1, "gap should not split: {events:?}");
        assert_eq!(events[0].start_bin, 50);
        assert_eq!(events[0].end_bin, 59);
    }

    #[test]
    fn larger_gap_splits_runs() {
        let mut ts = flat_series_with_outage(96, 50..70, 0.0);
        ts.bins[58] = 1000.0;
        ts.bins[59] = 1000.0;
        ts.bins[60] = 1000.0; // 3-bin recovery > max_gap 1
        let model = model_for(&ts, 24);
        let events = detect(&ts, &model, &DetectorConfig::default());
        assert_eq!(events.len(), 2, "got {events:?}");
    }

    #[test]
    fn healthy_series_has_no_events() {
        let ts = flat_series_with_outage(72, 0..0, 0.0);
        let model = model_for(&ts, 24);
        assert!(detect(&ts, &model, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn event_at_series_end_is_flushed() {
        let ts = flat_series_with_outage(72, 66..72, 0.0);
        let model = model_for(&ts, 24);
        let events = detect(&ts, &model, &DetectorConfig::default());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].end_bin, 71);
    }
}
