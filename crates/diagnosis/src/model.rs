//! The seasonal baseline model.
//!
//! Request volume is strongly diurnal, so "anomalous departure" must be
//! judged against the expected level *for that time of day*. The model is
//! deliberately robust and simple: for each phase of the seasonal period
//! (e.g. each 5-minute slot of the day), the baseline is the **median**
//! of the observations at that phase across training days, and the scale
//! is the **MAD** (median absolute deviation, scaled to estimate σ).
//! Medians make the model immune to outages in the training window.

use serde::{Deserialize, Serialize};

use crate::series::TimeSeries;

/// A fitted seasonal baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeasonalModel {
    /// Bins per seasonal period (e.g. one day).
    pub period: usize,
    /// Baseline level per phase.
    pub level: Vec<f64>,
    /// Robust scale per phase (MAD × 1.4826, floored).
    pub scale: Vec<f64>,
}

/// MAD-to-σ consistency constant for the normal distribution.
const MAD_SIGMA: f64 = 1.4826;

/// Floor on the scale so flat series don't produce infinite z-scores.
fn scale_floor(level: f64) -> f64 {
    // Poisson-ish: fluctuations of a count level x are at least ~sqrt(x).
    (level.max(1.0)).sqrt().max(1.0)
}

impl SeasonalModel {
    /// Fit on the first `train_bins` bins of `series` with seasonal
    /// `period` (in bins). `train_bins` should cover ≥ 2 periods.
    pub fn fit(series: &TimeSeries, period: usize, train_bins: usize) -> SeasonalModel {
        assert!(period > 0, "period must be positive");
        let train = train_bins.min(series.len());
        assert!(
            train >= 2 * period,
            "need at least two periods of training data ({train} bins < {})",
            2 * period
        );
        let mut level = vec![0.0; period];
        let mut scale = vec![0.0; period];
        let mut scratch = Vec::new();
        for phase in 0..period {
            scratch.clear();
            let mut t = phase;
            while t < train {
                scratch.push(series.bins[t]);
                t += period;
            }
            let med = median(&mut scratch);
            level[phase] = med;
            for v in scratch.iter_mut() {
                *v = (*v - med).abs();
            }
            let mad = median(&mut scratch);
            scale[phase] = (mad * MAD_SIGMA).max(scale_floor(med));
        }
        SeasonalModel {
            period,
            level,
            scale,
        }
    }

    /// Expected level at bin `t`.
    pub fn expected(&self, t: usize) -> f64 {
        self.level[t % self.period]
    }

    /// Robust z-score of observation `x` at bin `t` (negative = below
    /// expectation).
    pub fn zscore(&self, t: usize, x: f64) -> f64 {
        let phase = t % self.period;
        (x - self.level[phase]) / self.scale[phase]
    }

    /// Z-scores for a full series.
    pub fn zscores(&self, series: &TimeSeries) -> Vec<f64> {
        series
            .bins
            .iter()
            .enumerate()
            .map(|(t, &x)| self.zscore(t, x))
            .collect()
    }
}

fn median(v: &mut [f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_series(days: usize, period: usize, amplitude: f64) -> TimeSeries {
        let mut ts = TimeSeries::zeros(300, days * period);
        for t in 0..ts.len() {
            let phase = (t % period) as f64 / period as f64;
            ts.bins[t] = 1000.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        }
        ts
    }

    #[test]
    fn baseline_learns_the_diurnal_shape() {
        let period = 48;
        let ts = diurnal_series(5, period, 400.0);
        let m = SeasonalModel::fit(&ts, period, 3 * period);
        // Peak phase vs trough phase.
        let peak = m.expected(period / 4);
        let trough = m.expected(3 * period / 4);
        assert!(peak > 1300.0, "peak {peak}");
        assert!(trough < 700.0, "trough {trough}");
        // A normal observation scores near zero; a halved one scores low.
        assert!(m.zscore(period / 4, peak).abs() < 0.5);
        assert!(m.zscore(period / 4, peak * 0.5) < -3.0);
    }

    #[test]
    fn median_baseline_resists_training_outliers() {
        let period = 24;
        let mut ts = diurnal_series(5, period, 0.0); // flat 1000
                                                     // Corrupt one training day with an outage.
        for t in period..2 * period {
            ts.bins[t] = 0.0;
        }
        let m = SeasonalModel::fit(&ts, period, 5 * period);
        // Median of {1000, 0, 1000, 1000, 1000} = 1000: outage ignored.
        assert!((m.expected(3) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn scale_floor_prevents_infinite_z() {
        let period = 4;
        let ts = diurnal_series(3, period, 0.0); // perfectly flat: MAD = 0
        let m = SeasonalModel::fit(&ts, period, 2 * period);
        let z = m.zscore(0, 900.0);
        assert!(z.is_finite());
        // Floor is sqrt(1000) ≈ 31.6 → z ≈ -3.16.
        assert!((-4.0..-2.5).contains(&z), "z = {z}");
    }

    #[test]
    #[should_panic(expected = "two periods")]
    fn fit_requires_enough_history() {
        let ts = diurnal_series(1, 48, 100.0);
        SeasonalModel::fit(&ts, 48, 48);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [1.0, 9.0]), 5.0);
        assert_eq!(median(&mut [9.0, 1.0, 5.0]), 5.0);
    }
}
