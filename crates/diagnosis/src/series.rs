//! Sliced request-volume time series.
//!
//! §3.4: the cloud service "builds a time series model for the volume of
//! requests received …, sliced along various dimensions (client AS'es,
//! data center locations, etc.)". A [`SliceKey`] is one point in that
//! dimension cross-product; [`SlicedSeries`] holds a fixed-interval count
//! series per slice and can roll up along any subset of dimensions.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// One slice of the request stream: (service, client AS, metro).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SliceKey {
    /// Service identifier (e.g. VoIP vs file hosting — §1's example).
    pub service: u32,
    /// Client autonomous system ("ISP").
    pub asn: u32,
    /// Client metro area.
    pub metro: u32,
}

/// A dimension of the slice space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dimension {
    /// The service dimension.
    Service,
    /// The client-AS dimension.
    Asn,
    /// The metro dimension.
    Metro,
}

impl SliceKey {
    /// The key's value along `dim`.
    pub fn get(&self, dim: Dimension) -> u32 {
        match dim {
            Dimension::Service => self.service,
            Dimension::Asn => self.asn,
            Dimension::Metro => self.metro,
        }
    }
}

/// A fixed-interval count series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Bin width in seconds.
    pub bin_secs: u64,
    /// Counts per bin.
    pub bins: Vec<f64>,
}

impl TimeSeries {
    /// A zeroed series of `n` bins of `bin_secs` each.
    pub fn zeros(bin_secs: u64, n: usize) -> Self {
        assert!(bin_secs > 0);
        TimeSeries {
            bin_secs,
            bins: vec![0.0; n],
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if the series has no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Add `count` at time `t_secs` (ignored beyond the horizon).
    pub fn add(&mut self, t_secs: u64, count: f64) {
        let idx = (t_secs / self.bin_secs) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += count;
        }
    }

    /// Element-wise sum with another series of identical shape.
    pub fn add_series(&mut self, other: &TimeSeries) {
        assert_eq!(self.bin_secs, other.bin_secs, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "length mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }

    /// Sum of bins in `[from, to)`.
    pub fn window_sum(&self, from: usize, to: usize) -> f64 {
        self.bins[from.min(self.bins.len())..to.min(self.bins.len())]
            .iter()
            .sum()
    }
}

/// Per-slice series over a common time grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlicedSeries {
    bin_secs: u64,
    n_bins: usize,
    slices: HashMap<SliceKey, TimeSeries>,
}

impl SlicedSeries {
    /// An empty sliced series over `n_bins` bins of `bin_secs`.
    pub fn new(bin_secs: u64, n_bins: usize) -> Self {
        SlicedSeries {
            bin_secs,
            n_bins,
            slices: HashMap::new(),
        }
    }

    /// Bin width, seconds.
    pub fn bin_secs(&self) -> u64 {
        self.bin_secs
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Record `count` requests for `slice` at `t_secs`.
    pub fn add(&mut self, slice: SliceKey, t_secs: u64, count: f64) {
        let bin_secs = self.bin_secs;
        let n = self.n_bins;
        self.slices
            .entry(slice)
            .or_insert_with(|| TimeSeries::zeros(bin_secs, n))
            .add(t_secs, count);
    }

    /// The slices present.
    pub fn keys(&self) -> impl Iterator<Item = &SliceKey> {
        self.slices.keys()
    }

    /// A slice's series.
    pub fn series(&self, slice: &SliceKey) -> Option<&TimeSeries> {
        self.slices.get(slice)
    }

    /// Number of distinct slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// The all-up total series.
    pub fn total(&self) -> TimeSeries {
        self.rollup(|_| true)
    }

    /// Sum the series of every slice matching `pred`.
    pub fn rollup(&self, pred: impl Fn(&SliceKey) -> bool) -> TimeSeries {
        let mut out = TimeSeries::zeros(self.bin_secs, self.n_bins);
        for (k, s) in &self.slices {
            if pred(k) {
                out.add_series(s);
            }
        }
        out
    }

    /// Distinct values along `dim`.
    pub fn values_of(&self, dim: Dimension) -> Vec<u32> {
        let mut vals: Vec<u32> = self.slices.keys().map(|k| k.get(dim)).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: u32, a: u32, m: u32) -> SliceKey {
        SliceKey {
            service: s,
            asn: a,
            metro: m,
        }
    }

    #[test]
    fn binning_and_horizon() {
        let mut ts = TimeSeries::zeros(60, 10);
        ts.add(0, 1.0);
        ts.add(59, 1.0);
        ts.add(60, 1.0);
        ts.add(10_000, 5.0); // beyond horizon: dropped
        assert_eq!(ts.bins[0], 2.0);
        assert_eq!(ts.bins[1], 1.0);
        assert_eq!(ts.window_sum(0, 10), 3.0);
    }

    #[test]
    fn rollups_sum_matching_slices() {
        let mut s = SlicedSeries::new(60, 5);
        s.add(key(1, 100, 7), 0, 10.0);
        s.add(key(1, 200, 7), 0, 20.0);
        s.add(key(2, 100, 8), 0, 40.0);
        let total = s.total();
        assert_eq!(total.bins[0], 70.0);
        let asn100 = s.rollup(|k| k.asn == 100);
        assert_eq!(asn100.bins[0], 50.0);
        let svc1_metro7 = s.rollup(|k| k.service == 1 && k.metro == 7);
        assert_eq!(svc1_metro7.bins[0], 30.0);
    }

    #[test]
    fn values_of_lists_dimension_values() {
        let mut s = SlicedSeries::new(60, 5);
        s.add(key(1, 100, 7), 0, 1.0);
        s.add(key(1, 200, 7), 0, 1.0);
        s.add(key(2, 100, 9), 0, 1.0);
        assert_eq!(s.values_of(Dimension::Asn), vec![100, 200]);
        assert_eq!(s.values_of(Dimension::Metro), vec![7, 9]);
        assert_eq!(s.values_of(Dimension::Service), vec![1, 2]);
        assert_eq!(s.slice_count(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_series_shape_checked() {
        let mut a = TimeSeries::zeros(60, 5);
        let b = TimeSeries::zeros(60, 6);
        a.add_series(&b);
    }
}
