//! # phi-diagnosis — problem diagnosis from aggregated telemetry
//!
//! §3.4 of the five-computers paper: a cloud service sees its request
//! stream from *all* clients, affected and unaffected, so it can detect
//! and localize unreachability events that individual hosts cannot.
//!
//! Pipeline: [`series::SlicedSeries`] (request volume per
//! service × AS × metro slice) → [`model::SeasonalModel`] (robust diurnal
//! baseline) → [`mod@detect`] (sustained-departure events, Figure 5) →
//! [`mod@localize`] (which ISP/metro/service is down).
//!
//! [`synth`] generates the production-telemetry substitute with
//! injectable ground-truth outages, and [`mod@ingest`] bridges a real
//! phi-telemetry collector into the same sliced series so simulated
//! outages flow through the identical detection path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod ingest;
pub mod localize;
pub mod model;
pub mod series;
pub mod synth;

pub use detect::{detect, AnomalyEvent, DetectorConfig};
pub use ingest::sliced_from_collector;
pub use localize::{localize, Localization, LocalizerConfig};
pub use model::SeasonalModel;
pub use series::{Dimension, SliceKey, SlicedSeries, TimeSeries};
pub use synth::{generate, Outage, TelemetryConfig};
