//! Bridge from the telemetry collector to the diagnosis time series.
//!
//! The §2.1 measurement pipeline ends in a [`Collector`] holding distinct
//! flow counts per (destination /24, minute) bucket; the §3.4 diagnosis
//! pipeline starts from a [`SlicedSeries`] of request volume per
//! (service, AS, metro) slice. This module is the join: each bucket
//! contributes its flow count at its minute, with the caller supplying
//! the bucket → slice mapping (in production that is a BGP/geo lookup; in
//! experiments it is the inverse of the address plan the topology used).

use phi_telemetry::{BucketId, Collector};

use crate::series::{SliceKey, SlicedSeries};

/// Build a sliced request-volume series from collector buckets.
///
/// Each bucket adds its distinct-flow count to `map(bucket)`'s series at
/// the bucket's minute. Bucket iteration order does not matter: counts
/// are integral, so the floating-point accumulation is exact and the
/// result depends only on the collector's contents.
pub fn sliced_from_collector(
    collector: &Collector,
    bin_secs: u64,
    n_bins: usize,
    map: impl Fn(&BucketId) -> SliceKey,
) -> SlicedSeries {
    let mut out = SlicedSeries::new(bin_secs, n_bins);
    for (id, bucket) in collector.buckets() {
        out.add(map(id), id.minute * 60, bucket.flow_count() as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_telemetry::{FlowKey, IpfixRecord};
    use std::net::Ipv4Addr;

    fn rec(dst: Ipv4Addr, src_port: u16, ts_ms: u64) -> IpfixRecord {
        IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: dst,
                src_port,
                dst_port: 443,
                proto: 6,
            },
            ts_ms,
            bytes: 1500,
            packets: 1,
        }
    }

    /// Third octet of the /24 doubles as the "client AS" in tests.
    fn map(id: &BucketId) -> SliceKey {
        SliceKey {
            service: 1,
            asn: u32::from(id.subnet.network().octets()[2]),
            metro: 1,
        }
    }

    #[test]
    fn buckets_become_slice_bins() {
        let mut c = Collector::new();
        let a = Ipv4Addr::new(93, 184, 1, 5);
        let b = Ipv4Addr::new(93, 184, 2, 5);
        c.ingest(&rec(a, 1, 0));
        c.ingest(&rec(a, 2, 30_000)); // same bucket, second flow
        c.ingest(&rec(a, 3, 60_000)); // minute 1
        c.ingest(&rec(b, 4, 0));
        let s = sliced_from_collector(&c, 60, 4, map);
        assert_eq!(s.slice_count(), 2);
        let sa = s
            .series(&SliceKey {
                service: 1,
                asn: 1,
                metro: 1,
            })
            .unwrap();
        assert_eq!(sa.bins, vec![2.0, 1.0, 0.0, 0.0]);
        let sb = s
            .series(&SliceKey {
                service: 1,
                asn: 2,
                metro: 1,
            })
            .unwrap();
        assert_eq!(sb.bins, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn buckets_past_the_horizon_are_ignored() {
        let mut c = Collector::new();
        let a = Ipv4Addr::new(93, 184, 1, 5);
        c.ingest(&rec(a, 1, 10 * 60_000)); // minute 10, horizon 4 bins
        let s = sliced_from_collector(&c, 60, 4, map);
        let sa = s
            .series(&SliceKey {
                service: 1,
                asn: 1,
                metro: 1,
            })
            .unwrap();
        assert_eq!(sa.bins.iter().sum::<f64>(), 0.0);
    }
}
