//! Property-based invariants of the diagnosis pipeline.

use proptest::prelude::*;

use phi_diagnosis::{detect, DetectorConfig, SeasonalModel, TimeSeries};

proptest! {
    /// Detection never panics and always returns well-formed, ordered,
    /// disjoint events inside the series bounds.
    #[test]
    fn detect_returns_wellformed_events(
        bins in proptest::collection::vec(0.0f64..10_000.0, 96..480),
        period in 8usize..48,
        z in -6.0f64..-1.0,
        min_run in 1usize..6,
    ) {
        prop_assume!(bins.len() >= 2 * period);
        let ts = TimeSeries { bin_secs: 300, bins };
        let model = SeasonalModel::fit(&ts, period, ts.len());
        let cfg = DetectorConfig { z_threshold: z, min_run, max_gap: 1 };
        let events = detect(&ts, &model, &cfg);
        let mut last_end = None;
        for e in &events {
            prop_assert!(e.start_bin <= e.end_bin);
            prop_assert!(e.end_bin < ts.len());
            prop_assert!(e.duration_bins() >= min_run);
            prop_assert!((0.0..=1.0).contains(&e.deficit_fraction));
            prop_assert!(e.mean_z.is_finite());
            if let Some(le) = last_end {
                prop_assert!(e.start_bin > le, "events must be ordered and disjoint");
            }
            last_end = Some(e.end_bin);
        }
    }

    /// The baseline's z-scores are finite for any non-negative series.
    #[test]
    fn zscores_always_finite(
        bins in proptest::collection::vec(0.0f64..1e9, 32..200),
        period in 4usize..16,
    ) {
        prop_assume!(bins.len() >= 2 * period);
        let ts = TimeSeries { bin_secs: 300, bins };
        let model = SeasonalModel::fit(&ts, period, ts.len());
        for z in model.zscores(&ts) {
            prop_assert!(z.is_finite());
        }
    }
}
