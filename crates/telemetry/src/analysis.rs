//! The §2.1 sharing-opportunity analysis.
//!
//! For every flow observed by the collector, count how many *other* flows
//! share its (destination /24, minute) bucket — the proxy for "shares the
//! WAN path". The paper reports, post-sampling: *"50% of the flows share
//! the WAN path with at least 5 other flows while 12% share it with at
//! least 100 other flows."* [`SharingCdf`] reproduces those statistics.

use serde::{Deserialize, Serialize};

use crate::collector::Collector;

/// Distribution of per-flow sharing degree (number of *other* flows in
/// the same bucket).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharingCdf {
    /// Sorted sharing degrees, one entry per observed flow.
    degrees: Vec<u64>,
}

impl SharingCdf {
    /// Build from collector state.
    pub fn from_collector(c: &Collector) -> SharingCdf {
        let mut degrees = Vec::new();
        for (_, bucket) in c.buckets() {
            let n = bucket.flow_count() as u64;
            for _ in 0..n {
                degrees.push(n - 1);
            }
        }
        degrees.sort_unstable();
        SharingCdf { degrees }
    }

    /// Number of flow observations.
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// True if no flows were observed.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Fraction of flows sharing their bucket with at least `k` others.
    pub fn fraction_at_least(&self, k: u64) -> f64 {
        if self.degrees.is_empty() {
            return 0.0;
        }
        let below = self.degrees.partition_point(|&d| d < k);
        (self.degrees.len() - below) as f64 / self.degrees.len() as f64
    }

    /// The `q`-quantile of the sharing degree.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.degrees.is_empty() {
            return None;
        }
        let idx = ((self.degrees.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(self.degrees[idx])
    }

    /// The paper's two headline rows: (P[≥5 sharers], P[≥100 sharers]).
    pub fn paper_rows(&self) -> (f64, f64) {
        (self.fraction_at_least(5), self.fraction_at_least(100))
    }

    /// Series of `(k, fraction ≥ k)` suitable for plotting the CCDF.
    pub fn ccdf_series(&self, ks: &[u64]) -> Vec<(u64, f64)> {
        ks.iter().map(|&k| (k, self.fraction_at_least(k))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FlowKey, IpfixRecord};
    use std::net::Ipv4Addr;

    fn rec(subnet_octet: u8, src_port: u16) -> IpfixRecord {
        IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(93, 184, subnet_octet, 7),
                src_port,
                dst_port: 50_000,
                proto: 6,
            },
            ts_ms: 0,
            bytes: 1500,
            packets: 1,
        }
    }

    fn collector_with(groups: &[usize]) -> Collector {
        // groups[i] = number of distinct flows in bucket i.
        let mut c = Collector::new();
        for (i, &n) in groups.iter().enumerate() {
            for p in 0..n {
                c.ingest(&rec(i as u8, p as u16));
            }
        }
        c
    }

    #[test]
    fn degrees_count_other_flows() {
        // One bucket of 3 flows, one of 1 flow.
        let c = collector_with(&[3, 1]);
        let cdf = SharingCdf::from_collector(&c);
        assert_eq!(cdf.len(), 4);
        // Three flows share with 2 others; one shares with 0.
        assert_eq!(cdf.fraction_at_least(1), 0.75);
        assert_eq!(cdf.fraction_at_least(2), 0.75);
        assert_eq!(cdf.fraction_at_least(3), 0.0);
        assert_eq!(cdf.quantile(0.0), Some(0));
        assert_eq!(cdf.quantile(1.0), Some(2));
    }

    #[test]
    fn fraction_at_least_zero_is_one() {
        let c = collector_with(&[2, 5, 1]);
        let cdf = SharingCdf::from_collector(&c);
        assert_eq!(cdf.fraction_at_least(0), 1.0);
    }

    #[test]
    fn empty_collector_is_safe() {
        let cdf = SharingCdf::from_collector(&Collector::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_least(5), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
    }

    #[test]
    fn ccdf_series_is_monotone_nonincreasing() {
        let c = collector_with(&[10, 6, 3, 1, 1, 1]);
        let cdf = SharingCdf::from_collector(&c);
        let series = cdf.ccdf_series(&[0, 1, 2, 5, 9]);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }
}
