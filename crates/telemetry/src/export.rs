//! The exporter → collector transport: shipping sampled flow records
//! over TCP.
//!
//! Routers (exporters) batch sampled records and push them to the
//! centralized collector — the §2.1 pipeline's network hop. Framing is a
//! `u32` big-endian length prefix around each [`crate::codec`] batch, the
//! same pattern as the context-server protocol. The collector service is
//! a small threaded TCP server feeding a shared [`crate::Collector`];
//! like the context server, it stays runtime-agnostic (a provider has a
//! handful of exporters, not millions).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::codec::{decode_batch, encode_batch, CodecError, MAX_BATCH};
use crate::collector::Collector;
use crate::record::IpfixRecord;

/// A collector shared between the service threads and the analysis side.
pub type SharedCollector = Arc<Mutex<Collector>>;

/// Wrap a collector for the service.
pub fn shared_collector(c: Collector) -> SharedCollector {
    Arc::new(Mutex::new(c))
}

/// Service counters.
#[derive(Debug, Default)]
pub struct CollectorStats {
    /// Exporter connections accepted.
    pub connections: AtomicU64,
    /// Batches ingested.
    pub batches: AtomicU64,
    /// Records ingested.
    pub records: AtomicU64,
    /// Malformed frames dropped (connection closed).
    pub errors: AtomicU64,
}

/// Upper bound on a frame (length prefix) the service will accept.
const MAX_FRAME: usize = 2 + MAX_BATCH * crate::codec::RECORD_SIZE;
const POLL: Duration = Duration::from_millis(50);

/// A running collector service.
pub struct CollectorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<CollectorStats>,
}

impl CollectorServer {
    /// Bind and serve exporters, feeding `collector`.
    pub fn start(
        addr: impl ToSocketAddrs,
        collector: SharedCollector,
    ) -> std::io::Result<CollectorServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(CollectorStats::default());

        let accept_thread = {
            let shutdown = shutdown.clone();
            let handlers = handlers.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("phi-ipfix-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                let collector = collector.clone();
                                let stats = stats.clone();
                                let shutdown = shutdown.clone();
                                let h = std::thread::Builder::new()
                                    .name("phi-ipfix-conn".into())
                                    .spawn(move || {
                                        handle_exporter(stream, collector, stats, shutdown)
                                    })
                                    .expect("spawn exporter handler");
                                handlers.lock().expect("handlers lock").push(h);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(CollectorServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            handlers,
            stats,
        })
    }

    /// Listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// Stop accepting and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let hs = std::mem::take(&mut *self.handlers.lock().expect("handlers lock"));
        for h in hs {
            let _ = h.join();
        }
    }
}

impl Drop for CollectorServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_exporter(
    mut stream: TcpStream,
    collector: SharedCollector,
    stats: Arc<CollectorStats>,
    shutdown: Arc<AtomicBool>,
) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    while !shutdown.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            if buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > MAX_FRAME {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return; // framing broken; drop the exporter
            }
            if buf.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
            match decode_batch(&frame) {
                Ok(records) => {
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                    stats
                        .records
                        .fetch_add(records.len() as u64, Ordering::Relaxed);
                    collector
                        .lock()
                        .expect("collector lock")
                        .ingest_batch(&records);
                }
                Err(CodecError::Truncated | CodecError::BatchTooLarge(_)) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

/// An exporter's connection to the collector: batches records and ships
/// them with length-prefixed framing.
pub struct ExporterClient {
    stream: TcpStream,
    pending: Vec<IpfixRecord>,
    batch_size: usize,
    shipped: u64,
}

impl ExporterClient {
    /// Connect to a collector; records are shipped every `batch_size`.
    pub fn connect(addr: impl ToSocketAddrs, batch_size: usize) -> std::io::Result<Self> {
        assert!((1..=MAX_BATCH).contains(&batch_size));
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ExporterClient {
            stream,
            pending: Vec::with_capacity(batch_size),
            batch_size,
            shipped: 0,
        })
    }

    /// Queue one record; ships automatically when the batch fills.
    pub fn submit(&mut self, record: IpfixRecord) -> std::io::Result<()> {
        self.pending.push(record);
        if self.pending.len() >= self.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship any queued records now.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = encode_batch(&self.pending)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.stream.write_all(&(batch.len() as u32).to_be_bytes())?;
        self.stream.write_all(&batch)?;
        self.shipped += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Records shipped so far.
    pub fn shipped(&self) -> u64 {
        self.shipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FlowKey;
    use std::net::Ipv4Addr;

    fn rec(i: u32) -> IpfixRecord {
        IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::from(0x5db8_0000 + i),
                src_port: 443,
                dst_port: (1000 + i) as u16,
                proto: 6,
            },
            ts_ms: u64::from(i) * 100,
            bytes: 1500,
            packets: 1,
        }
    }

    fn wait_for_records(server: &CollectorServer, expect: u64) {
        for _ in 0..100 {
            if server.stats().records.load(Ordering::Relaxed) >= expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!(
            "collector never saw {expect} records (got {})",
            server.stats().records.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn exporters_ship_and_collector_aggregates() {
        let collector = shared_collector(Collector::new());
        let server = CollectorServer::start("127.0.0.1:0", collector.clone()).expect("bind");
        let addr = server.addr();

        // Two exporter "routers" shipping concurrently.
        let t1 = std::thread::spawn(move || {
            let mut e = ExporterClient::connect(addr, 10).expect("connect");
            for i in 0..35 {
                e.submit(rec(i)).expect("submit");
            }
            e.flush().expect("flush");
            assert_eq!(e.shipped(), 35);
        });
        let t2 = std::thread::spawn(move || {
            let mut e = ExporterClient::connect(addr, 7).expect("connect");
            for i in 100..130 {
                e.submit(rec(i)).expect("submit");
            }
            e.flush().expect("flush");
        });
        t1.join().expect("exporter 1");
        t2.join().expect("exporter 2");

        wait_for_records(&server, 65);
        let c = collector.lock().expect("lock");
        assert_eq!(c.record_count(), 65);
        assert!(c.bucket_count() > 0);
        drop(c);
        assert!(server.stats().batches.load(Ordering::Relaxed) >= 9);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_drop_only_that_exporter() {
        let collector = shared_collector(Collector::new());
        let server = CollectorServer::start("127.0.0.1:0", collector.clone()).expect("bind");
        let addr = server.addr();

        // A broken exporter: absurd length prefix.
        let mut bad = TcpStream::connect(addr).expect("connect");
        bad.write_all(&u32::MAX.to_be_bytes()).expect("write");
        bad.write_all(&[0u8; 16]).expect("write");

        // A good exporter still works.
        let mut good = ExporterClient::connect(addr, 5).expect("connect");
        for i in 0..5 {
            good.submit(rec(i)).expect("submit");
        }
        wait_for_records(&server, 5);
        assert_eq!(collector.lock().expect("lock").record_count(), 5);
        for _ in 0..100 {
            if server.stats().errors.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.stats().errors.load(Ordering::Relaxed) >= 1);
        server.shutdown();
    }

    #[test]
    fn flush_of_empty_batch_is_a_noop() {
        let collector = shared_collector(Collector::new());
        let server = CollectorServer::start("127.0.0.1:0", collector).expect("bind");
        let mut e = ExporterClient::connect(server.addr(), 100).expect("connect");
        e.flush().expect("noop flush");
        assert_eq!(e.shipped(), 0);
        server.shutdown();
    }
}
