//! The exporter → collector transport: shipping sampled flow records
//! over TCP.
//!
//! Routers (exporters) batch sampled records and push them to the
//! centralized collector — the §2.1 pipeline's network hop. Framing is a
//! `u32` big-endian length prefix around each [`crate::codec`] batch, the
//! same pattern as the context-server protocol. The collector service is
//! a small threaded TCP server feeding a shared [`crate::Collector`];
//! like the context server, it stays runtime-agnostic (a provider has a
//! handful of exporters, not millions).
//!
//! For simulation experiments that need the export path's loss semantics
//! without its threads, [`LossyExporter`] is a deterministic in-process
//! stand-in that still exercises the wire codec.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::codec::{decode_batch, encode_batch, CodecError, MAX_BATCH};
use crate::collector::Collector;
use crate::record::IpfixRecord;

/// A collector shared between the service threads and the analysis side.
pub type SharedCollector = Arc<Mutex<Collector>>;

/// Wrap a collector for the service.
pub fn shared_collector(c: Collector) -> SharedCollector {
    Arc::new(Mutex::new(c))
}

/// Service counters.
#[derive(Debug, Default)]
pub struct CollectorStats {
    /// Exporter connections accepted.
    pub connections: AtomicU64,
    /// Batches ingested.
    pub batches: AtomicU64,
    /// Records ingested.
    pub records: AtomicU64,
    /// Malformed frames dropped (connection closed).
    pub errors: AtomicU64,
}

/// Upper bound on a frame (length prefix) the service will accept.
const MAX_FRAME: usize = 2 + MAX_BATCH * crate::codec::RECORD_SIZE;
const POLL: Duration = Duration::from_millis(50);

/// A running collector service.
pub struct CollectorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<CollectorStats>,
}

impl CollectorServer {
    /// Bind and serve exporters, feeding `collector`.
    pub fn start(
        addr: impl ToSocketAddrs,
        collector: SharedCollector,
    ) -> std::io::Result<CollectorServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(CollectorStats::default());

        let accept_thread = {
            let shutdown = shutdown.clone();
            let handlers = handlers.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("phi-ipfix-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                let collector = collector.clone();
                                let stats = stats.clone();
                                let shutdown = shutdown.clone();
                                let h = std::thread::Builder::new()
                                    .name("phi-ipfix-conn".into())
                                    .spawn(move || {
                                        handle_exporter(stream, collector, stats, shutdown)
                                    })
                                    .expect("spawn exporter handler");
                                handlers.lock().expect("handlers lock").push(h);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(CollectorServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            handlers,
            stats,
        })
    }

    /// Listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// Stop accepting and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let hs = std::mem::take(&mut *self.handlers.lock().expect("handlers lock"));
        for h in hs {
            let _ = h.join();
        }
    }
}

impl Drop for CollectorServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_exporter(
    mut stream: TcpStream,
    collector: SharedCollector,
    stats: Arc<CollectorStats>,
    shutdown: Arc<AtomicBool>,
) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    while !shutdown.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            if buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > MAX_FRAME {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return; // framing broken; drop the exporter
            }
            if buf.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
            match decode_batch(&frame) {
                Ok(records) => {
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                    stats
                        .records
                        .fetch_add(records.len() as u64, Ordering::Relaxed);
                    collector
                        .lock()
                        .expect("collector lock")
                        .ingest_batch(&records);
                }
                Err(CodecError::Truncated | CodecError::BatchTooLarge(_)) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

/// An exporter's connection to the collector: batches records and ships
/// them with length-prefixed framing.
///
/// The staging buffer is explicitly bounded: a real exporter has finite
/// memory, and when the collector cannot be reached fast enough the
/// exporter sheds records rather than growing without bound. Shed records
/// are counted in [`ExporterClient::dropped`].
pub struct ExporterClient {
    stream: TcpStream,
    pending: Vec<IpfixRecord>,
    batch_size: usize,
    capacity: usize,
    shipped: u64,
    dropped: u64,
}

impl ExporterClient {
    /// Connect to a collector; records are shipped every `batch_size`.
    /// The staging buffer holds up to [`MAX_BATCH`] records.
    pub fn connect(addr: impl ToSocketAddrs, batch_size: usize) -> std::io::Result<Self> {
        Self::connect_bounded(addr, batch_size, MAX_BATCH)
    }

    /// Connect with an explicit staging-buffer bound: once `capacity`
    /// records are pending, further submissions are dropped (and counted)
    /// until a flush drains the buffer.
    pub fn connect_bounded(
        addr: impl ToSocketAddrs,
        batch_size: usize,
        capacity: usize,
    ) -> std::io::Result<Self> {
        assert!((1..=MAX_BATCH).contains(&batch_size));
        assert!(capacity >= 1);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ExporterClient {
            stream,
            pending: Vec::with_capacity(batch_size.min(capacity)),
            batch_size,
            capacity,
            shipped: 0,
            dropped: 0,
        })
    }

    /// Queue one record; ships automatically when the batch fills. A full
    /// staging buffer sheds the record instead of growing.
    pub fn submit(&mut self, record: IpfixRecord) -> std::io::Result<()> {
        if self.pending.len() >= self.capacity {
            self.dropped += 1;
            return Ok(());
        }
        self.pending.push(record);
        if self.pending.len() >= self.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship any queued records now.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = encode_batch(&self.pending)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.stream.write_all(&(batch.len() as u32).to_be_bytes())?;
        self.stream.write_all(&batch)?;
        self.shipped += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Records shipped so far.
    pub fn shipped(&self) -> u64 {
        self.shipped
    }

    /// Records shed because the staging buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A deterministic, in-process exporter → collector path with loss.
///
/// The TCP transport above is real but non-deterministic (threads,
/// timeouts). Simulation experiments need the *semantics* of a lossy
/// export path — records sampled at a router may never reach the
/// collector — reproducibly. `LossyExporter` models exactly that: each
/// submitted record survives an independent Bernoulli draw from a forked
/// [`phi_workload::SeedRng`] stream (transit loss), then a bounded staging buffer
/// (memory pressure), and flushes traverse the real wire codec
/// ([`encode_batch`]/[`decode_batch`]) into the collector. Same seed,
/// same records → bit-identical collector state.
pub struct LossyExporter {
    rng: phi_workload::SeedRng,
    loss_prob: f64,
    capacity: usize,
    pending: Vec<IpfixRecord>,
    lost: u64,
    dropped: u64,
    shipped: u64,
}

impl LossyExporter {
    /// A lossy exporter dropping each record with probability `loss_prob`,
    /// staging at most `capacity` records between flushes.
    pub fn new(capacity: usize, loss_prob: f64, rng: phi_workload::SeedRng) -> Self {
        assert!(capacity >= 1);
        assert!((0.0..=1.0).contains(&loss_prob));
        LossyExporter {
            rng,
            loss_prob,
            capacity,
            pending: Vec::new(),
            lost: 0,
            dropped: 0,
            shipped: 0,
        }
    }

    /// Submit one record. It may be lost in transit (counted in
    /// [`LossyExporter::lost`]) or shed by a full buffer (counted in
    /// [`LossyExporter::dropped`]).
    pub fn submit(&mut self, record: IpfixRecord) {
        if self.rng.chance(self.loss_prob) {
            self.lost += 1;
            return;
        }
        if self.pending.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.pending.push(record);
    }

    /// Drain the staging buffer into `collector` through the wire codec.
    pub fn flush_into(&mut self, collector: &mut Collector) {
        for chunk in self.pending.chunks(MAX_BATCH) {
            let wire = encode_batch(chunk).expect("chunked below MAX_BATCH");
            let records = decode_batch(&wire).expect("codec round-trip");
            collector.ingest_batch(&records);
            self.shipped += records.len() as u64;
        }
        self.pending.clear();
    }

    /// Records lost in transit.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Records shed by the bounded staging buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records delivered to the collector.
    pub fn shipped(&self) -> u64 {
        self.shipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FlowKey;
    use std::net::Ipv4Addr;

    fn rec(i: u32) -> IpfixRecord {
        IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::from(0x5db8_0000 + i),
                src_port: 443,
                dst_port: (1000 + i) as u16,
                proto: 6,
            },
            ts_ms: u64::from(i) * 100,
            bytes: 1500,
            packets: 1,
        }
    }

    fn wait_for_records(server: &CollectorServer, expect: u64) {
        for _ in 0..100 {
            if server.stats().records.load(Ordering::Relaxed) >= expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!(
            "collector never saw {expect} records (got {})",
            server.stats().records.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn exporters_ship_and_collector_aggregates() {
        let collector = shared_collector(Collector::new());
        let server = CollectorServer::start("127.0.0.1:0", collector.clone()).expect("bind");
        let addr = server.addr();

        // Two exporter "routers" shipping concurrently.
        let t1 = std::thread::spawn(move || {
            let mut e = ExporterClient::connect(addr, 10).expect("connect");
            for i in 0..35 {
                e.submit(rec(i)).expect("submit");
            }
            e.flush().expect("flush");
            assert_eq!(e.shipped(), 35);
        });
        let t2 = std::thread::spawn(move || {
            let mut e = ExporterClient::connect(addr, 7).expect("connect");
            for i in 100..130 {
                e.submit(rec(i)).expect("submit");
            }
            e.flush().expect("flush");
        });
        t1.join().expect("exporter 1");
        t2.join().expect("exporter 2");

        wait_for_records(&server, 65);
        let c = collector.lock().expect("lock");
        assert_eq!(c.record_count(), 65);
        assert!(c.bucket_count() > 0);
        drop(c);
        assert!(server.stats().batches.load(Ordering::Relaxed) >= 9);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_drop_only_that_exporter() {
        let collector = shared_collector(Collector::new());
        let server = CollectorServer::start("127.0.0.1:0", collector.clone()).expect("bind");
        let addr = server.addr();

        // A broken exporter: absurd length prefix.
        let mut bad = TcpStream::connect(addr).expect("connect");
        bad.write_all(&u32::MAX.to_be_bytes()).expect("write");
        bad.write_all(&[0u8; 16]).expect("write");

        // A good exporter still works.
        let mut good = ExporterClient::connect(addr, 5).expect("connect");
        for i in 0..5 {
            good.submit(rec(i)).expect("submit");
        }
        wait_for_records(&server, 5);
        assert_eq!(collector.lock().expect("lock").record_count(), 5);
        for _ in 0..100 {
            if server.stats().errors.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.stats().errors.load(Ordering::Relaxed) >= 1);
        server.shutdown();
    }

    #[test]
    fn bounded_exporter_sheds_over_capacity_and_accounts() {
        let collector = shared_collector(Collector::new());
        let server = CollectorServer::start("127.0.0.1:0", collector.clone()).expect("bind");
        // Batch of 10 but room for only 3: records 4 and 5 are shed.
        let mut e = ExporterClient::connect_bounded(server.addr(), 10, 3).expect("connect");
        for i in 0..5 {
            e.submit(rec(i)).expect("submit");
        }
        assert_eq!(e.dropped(), 2);
        e.flush().expect("flush");
        assert_eq!(e.shipped(), 3);
        wait_for_records(&server, 3);
        assert_eq!(collector.lock().expect("lock").record_count(), 3);
        server.shutdown();
    }

    #[test]
    fn lossy_exporter_accounts_for_every_record() {
        let mut c = Collector::new();
        let mut e = LossyExporter::new(64, 0.3, phi_workload::SeedRng::new(9));
        for i in 0..1000 {
            e.submit(rec(i));
            if i % 50 == 49 {
                e.flush_into(&mut c);
            }
        }
        e.flush_into(&mut c);
        assert_eq!(e.shipped() + e.lost() + e.dropped(), 1000);
        assert!(e.lost() > 200 && e.lost() < 400, "lost {}", e.lost());
        assert_eq!(c.record_count(), e.shipped());
    }

    #[test]
    fn lossy_exporter_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut c = Collector::new();
            let mut e = LossyExporter::new(16, 0.5, phi_workload::SeedRng::new(seed));
            for i in 0..200 {
                e.submit(rec(i));
                if i % 16 == 15 {
                    e.flush_into(&mut c);
                }
            }
            e.flush_into(&mut c);
            (e.shipped(), e.lost(), e.dropped(), c.record_count())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).1, run(4).1, "different seeds, different losses");
    }

    #[test]
    fn lossy_exporter_sheds_when_buffer_fills() {
        let mut c = Collector::new();
        let mut e = LossyExporter::new(4, 0.0, phi_workload::SeedRng::new(1));
        for i in 0..10 {
            e.submit(rec(i)); // no flush: only 4 fit
        }
        assert_eq!(e.dropped(), 6);
        e.flush_into(&mut c);
        assert_eq!(e.shipped(), 4);
        assert_eq!(c.record_count(), 4);
    }

    #[test]
    fn flush_of_empty_batch_is_a_noop() {
        let collector = shared_collector(Collector::new());
        let server = CollectorServer::start("127.0.0.1:0", collector).expect("bind");
        let mut e = ExporterClient::connect(server.addr(), 100).expect("connect");
        e.flush().expect("noop flush");
        assert_eq!(e.shipped(), 0);
        server.shutdown();
    }
}
