//! The centralized collector: spatio-temporal aggregation of sampled flows.
//!
//! §2.1 of the paper: "we … calculate the number of TCP flows … per minute
//! for each /24 subnet that the provider sends traffic to. Given this
//! compact spatio-temporal granularity (/24 subnet and 1-minute time
//! slice), we can reasonably expect all the flows to follow the same WAN
//! path." The collector builds exactly those buckets: distinct flow keys
//! per (destination /24, minute).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::record::{FlowKey, IpfixRecord, Subnet24};

/// A spatio-temporal bucket id: (destination /24, minute index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BucketId {
    /// Destination subnet.
    pub subnet: Subnet24,
    /// Minute since collection start.
    pub minute: u64,
}

/// Aggregated contents of one bucket.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    flows: HashSet<FlowKey>,
    /// Sampled packets that fell into the bucket.
    pub packets: u64,
    /// Sampled bytes.
    pub bytes: u64,
}

impl Bucket {
    /// Distinct flows observed in this bucket.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The distinct flow keys.
    pub fn flows(&self) -> impl Iterator<Item = &FlowKey> {
        self.flows.iter()
    }
}

/// The collector.
///
/// An unbounded collector ([`Collector::new`]) keeps every bucket and
/// flow key it sees. A production collector cannot: [`Collector::bounded`]
/// caps both the number of buckets and the distinct flows per bucket, and
/// records that fall outside the caps are counted in
/// [`Collector::dropped_records`] rather than silently vanishing — the
/// diagnosis pipeline needs to know its input was thinned.
#[derive(Debug, Default)]
pub struct Collector {
    buckets: HashMap<BucketId, Bucket>,
    records: u64,
    dropped: u64,
    max_buckets: Option<usize>,
    max_flows_per_bucket: Option<usize>,
}

impl Collector {
    /// An empty, unbounded collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// An empty collector with explicit memory bounds: at most
    /// `max_buckets` spatio-temporal buckets and `max_flows_per_bucket`
    /// distinct flow keys per bucket.
    pub fn bounded(max_buckets: usize, max_flows_per_bucket: usize) -> Self {
        assert!(max_buckets > 0 && max_flows_per_bucket > 0);
        Collector {
            max_buckets: Some(max_buckets),
            max_flows_per_bucket: Some(max_flows_per_bucket),
            ..Collector::default()
        }
    }

    /// Ingest one exported record.
    pub fn ingest(&mut self, record: &IpfixRecord) {
        let id = BucketId {
            subnet: record.key.dst_subnet(),
            minute: record.ts_ms / 60_000,
        };
        if !self.buckets.contains_key(&id)
            && self
                .max_buckets
                .is_some_and(|cap| self.buckets.len() >= cap)
        {
            self.dropped += 1;
            return;
        }
        let b = self.buckets.entry(id).or_default();
        if !b.flows.contains(&record.key)
            && self
                .max_flows_per_bucket
                .is_some_and(|cap| b.flows.len() >= cap)
        {
            self.dropped += 1;
            return;
        }
        self.records += 1;
        b.flows.insert(record.key);
        b.packets += u64::from(record.packets);
        b.bytes += u64::from(record.bytes);
    }

    /// Ingest a whole batch.
    pub fn ingest_batch(&mut self, records: &[IpfixRecord]) {
        for r in records {
            self.ingest(r);
        }
    }

    /// Records ingested (accepted).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Records rejected by the capacity bounds. Every offered record is
    /// accounted for: `record_count() + dropped_records()` equals the
    /// number of `ingest` calls.
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterate over buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (&BucketId, &Bucket)> {
        self.buckets.iter()
    }

    /// A specific bucket.
    pub fn bucket(&self, id: &BucketId) -> Option<&Bucket> {
        self.buckets.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(dst: Ipv4Addr, src_port: u16, ts_ms: u64) -> IpfixRecord {
        IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: dst,
                src_port,
                dst_port: 50_000,
                proto: 6,
            },
            ts_ms,
            bytes: 1500,
            packets: 1,
        }
    }

    #[test]
    fn buckets_split_by_subnet_and_minute() {
        let mut c = Collector::new();
        let a = Ipv4Addr::new(93, 184, 1, 5);
        let b = Ipv4Addr::new(93, 184, 2, 5);
        c.ingest(&rec(a, 1, 0)); // subnet A, minute 0
        c.ingest(&rec(a, 2, 59_999)); // subnet A, minute 0
        c.ingest(&rec(a, 3, 60_000)); // subnet A, minute 1
        c.ingest(&rec(b, 4, 0)); // subnet B, minute 0
        assert_eq!(c.bucket_count(), 3);
        let id = BucketId {
            subnet: Subnet24::of(a),
            minute: 0,
        };
        assert_eq!(c.bucket(&id).unwrap().flow_count(), 2);
    }

    #[test]
    fn duplicate_flow_counted_once() {
        let mut c = Collector::new();
        let dst = Ipv4Addr::new(93, 184, 1, 5);
        // Same 4-tuple sampled three times in the same minute.
        c.ingest(&rec(dst, 1, 100));
        c.ingest(&rec(dst, 1, 200));
        c.ingest(&rec(dst, 1, 300));
        let id = BucketId {
            subnet: Subnet24::of(dst),
            minute: 0,
        };
        let b = c.bucket(&id).unwrap();
        assert_eq!(b.flow_count(), 1);
        assert_eq!(b.packets, 3);
        assert_eq!(b.bytes, 4500);
        assert_eq!(c.record_count(), 3);
    }

    #[test]
    fn bucket_cap_drops_new_buckets_but_feeds_old_ones() {
        let mut c = Collector::bounded(2, 100);
        let a = Ipv4Addr::new(93, 184, 1, 5);
        let b = Ipv4Addr::new(93, 184, 2, 5);
        let z = Ipv4Addr::new(93, 184, 3, 5);
        c.ingest(&rec(a, 1, 0));
        c.ingest(&rec(b, 1, 0));
        c.ingest(&rec(z, 1, 0)); // third bucket: over the cap
        c.ingest(&rec(a, 2, 0)); // existing bucket: still accepted
        assert_eq!(c.bucket_count(), 2);
        assert_eq!(c.record_count(), 3);
        assert_eq!(c.dropped_records(), 1);
    }

    #[test]
    fn flow_cap_drops_new_flows_but_counts_repeat_samples() {
        let mut c = Collector::bounded(10, 2);
        let dst = Ipv4Addr::new(93, 184, 1, 5);
        c.ingest(&rec(dst, 1, 0));
        c.ingest(&rec(dst, 2, 0));
        c.ingest(&rec(dst, 3, 0)); // third distinct flow: dropped
        c.ingest(&rec(dst, 1, 100)); // repeat sample of a kept flow: fine
        let id = BucketId {
            subnet: Subnet24::of(dst),
            minute: 0,
        };
        let b = c.bucket(&id).unwrap();
        assert_eq!(b.flow_count(), 2);
        assert_eq!(b.packets, 3);
        assert_eq!(c.record_count() + c.dropped_records(), 4);
        assert_eq!(c.dropped_records(), 1);
    }

    #[test]
    fn unbounded_collector_never_drops() {
        let mut c = Collector::new();
        for i in 0..500 {
            c.ingest(&rec(
                Ipv4Addr::new(93, 184, (i % 256) as u8, 5),
                i as u16,
                0,
            ));
        }
        assert_eq!(c.dropped_records(), 0);
        assert_eq!(c.record_count(), 500);
    }

    #[test]
    fn batch_equals_sequential() {
        let records: Vec<IpfixRecord> = (0..20)
            .map(|i| rec(Ipv4Addr::new(93, 184, 1, 5), i, u64::from(i) * 1000))
            .collect();
        let mut a = Collector::new();
        a.ingest_batch(&records);
        let mut b = Collector::new();
        for r in &records {
            b.ingest(r);
        }
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.bucket_count(), b.bucket_count());
    }
}
