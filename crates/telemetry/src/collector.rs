//! The centralized collector: spatio-temporal aggregation of sampled flows.
//!
//! §2.1 of the paper: "we … calculate the number of TCP flows … per minute
//! for each /24 subnet that the provider sends traffic to. Given this
//! compact spatio-temporal granularity (/24 subnet and 1-minute time
//! slice), we can reasonably expect all the flows to follow the same WAN
//! path." The collector builds exactly those buckets: distinct flow keys
//! per (destination /24, minute).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::record::{FlowKey, IpfixRecord, Subnet24};

/// A spatio-temporal bucket id: (destination /24, minute index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BucketId {
    /// Destination subnet.
    pub subnet: Subnet24,
    /// Minute since collection start.
    pub minute: u64,
}

/// Aggregated contents of one bucket.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    flows: HashSet<FlowKey>,
    /// Sampled packets that fell into the bucket.
    pub packets: u64,
    /// Sampled bytes.
    pub bytes: u64,
}

impl Bucket {
    /// Distinct flows observed in this bucket.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The distinct flow keys.
    pub fn flows(&self) -> impl Iterator<Item = &FlowKey> {
        self.flows.iter()
    }
}

/// The collector.
#[derive(Debug, Default)]
pub struct Collector {
    buckets: HashMap<BucketId, Bucket>,
    records: u64,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Ingest one exported record.
    pub fn ingest(&mut self, record: &IpfixRecord) {
        self.records += 1;
        let id = BucketId {
            subnet: record.key.dst_subnet(),
            minute: record.ts_ms / 60_000,
        };
        let b = self.buckets.entry(id).or_default();
        b.flows.insert(record.key);
        b.packets += u64::from(record.packets);
        b.bytes += u64::from(record.bytes);
    }

    /// Ingest a whole batch.
    pub fn ingest_batch(&mut self, records: &[IpfixRecord]) {
        for r in records {
            self.ingest(r);
        }
    }

    /// Records ingested.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterate over buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (&BucketId, &Bucket)> {
        self.buckets.iter()
    }

    /// A specific bucket.
    pub fn bucket(&self, id: &BucketId) -> Option<&Bucket> {
        self.buckets.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(dst: Ipv4Addr, src_port: u16, ts_ms: u64) -> IpfixRecord {
        IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: dst,
                src_port,
                dst_port: 50_000,
                proto: 6,
            },
            ts_ms,
            bytes: 1500,
            packets: 1,
        }
    }

    #[test]
    fn buckets_split_by_subnet_and_minute() {
        let mut c = Collector::new();
        let a = Ipv4Addr::new(93, 184, 1, 5);
        let b = Ipv4Addr::new(93, 184, 2, 5);
        c.ingest(&rec(a, 1, 0)); // subnet A, minute 0
        c.ingest(&rec(a, 2, 59_999)); // subnet A, minute 0
        c.ingest(&rec(a, 3, 60_000)); // subnet A, minute 1
        c.ingest(&rec(b, 4, 0)); // subnet B, minute 0
        assert_eq!(c.bucket_count(), 3);
        let id = BucketId {
            subnet: Subnet24::of(a),
            minute: 0,
        };
        assert_eq!(c.bucket(&id).unwrap().flow_count(), 2);
    }

    #[test]
    fn duplicate_flow_counted_once() {
        let mut c = Collector::new();
        let dst = Ipv4Addr::new(93, 184, 1, 5);
        // Same 4-tuple sampled three times in the same minute.
        c.ingest(&rec(dst, 1, 100));
        c.ingest(&rec(dst, 1, 200));
        c.ingest(&rec(dst, 1, 300));
        let id = BucketId {
            subnet: Subnet24::of(dst),
            minute: 0,
        };
        let b = c.bucket(&id).unwrap();
        assert_eq!(b.flow_count(), 1);
        assert_eq!(b.packets, 3);
        assert_eq!(b.bytes, 4500);
        assert_eq!(c.record_count(), 3);
    }

    #[test]
    fn batch_equals_sequential() {
        let records: Vec<IpfixRecord> = (0..20)
            .map(|i| rec(Ipv4Addr::new(93, 184, 1, 5), i, u64::from(i) * 1000))
            .collect();
        let mut a = Collector::new();
        a.ingest_batch(&records);
        let mut b = Collector::new();
        for r in &records {
            b.ingest(r);
        }
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.bucket_count(), b.bucket_count());
    }
}
