//! Flow records and keys, IPFIX style (RFC 7011 flavor, compact template).

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// The classic transport 4-tuple plus protocol — the paper's flow
/// identity ("characterized by the number of unique 4-tuples
/// <Src Ip, Src Port, Dst Ip, Dst Port>").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source address.
    pub src_ip: Ipv4Addr,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP).
    pub proto: u8,
}

impl FlowKey {
    /// The /24 subnet of the destination — the paper's spatial
    /// aggregation granularity.
    pub fn dst_subnet(&self) -> Subnet24 {
        Subnet24::of(self.dst_ip)
    }
}

/// A /24 IPv4 subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Subnet24(pub u32);

impl Subnet24 {
    /// The /24 containing `ip`.
    pub fn of(ip: Ipv4Addr) -> Subnet24 {
        Subnet24(u32::from(ip) >> 8)
    }

    /// The subnet's network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 8)
    }
}

impl std::fmt::Display for Subnet24 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// One exported record: a sampled packet's flow key plus counters, as an
/// IPFIX exporter would emit after sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpfixRecord {
    /// Flow identity.
    pub key: FlowKey,
    /// Export timestamp, milliseconds since exporter start.
    pub ts_ms: u64,
    /// Bytes represented by this record (sampled packet's length).
    pub bytes: u32,
    /// Packets represented (1 per sampled packet here).
    pub packets: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subnet_of_groups_by_upper_24_bits() {
        let a = Ipv4Addr::new(10, 1, 2, 3);
        let b = Ipv4Addr::new(10, 1, 2, 250);
        let c = Ipv4Addr::new(10, 1, 3, 3);
        assert_eq!(Subnet24::of(a), Subnet24::of(b));
        assert_ne!(Subnet24::of(a), Subnet24::of(c));
        assert_eq!(Subnet24::of(a).network(), Ipv4Addr::new(10, 1, 2, 0));
    }

    #[test]
    fn subnet_display() {
        let s = Subnet24::of(Ipv4Addr::new(192, 168, 7, 99));
        assert_eq!(s.to_string(), "192.168.7.0/24");
    }

    #[test]
    fn flow_key_subnet_uses_destination() {
        let k = FlowKey {
            src_ip: Ipv4Addr::new(1, 2, 3, 4),
            dst_ip: Ipv4Addr::new(5, 6, 7, 8),
            src_port: 443,
            dst_port: 50000,
            proto: 6,
        };
        assert_eq!(k.dst_subnet().network(), Ipv4Addr::new(5, 6, 7, 0));
    }
}
