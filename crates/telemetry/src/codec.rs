//! Binary export format for flow records.
//!
//! Exporters ship records to the collector in fixed-layout 25-byte
//! entries inside length-counted batches:
//!
//! ```text
//! batch  := u16 count, count × record
//! record := u32 src_ip, u32 dst_ip, u16 src_port, u16 dst_port, u8 proto,
//!           u64 ts_ms, u32 bytes  (packets is implicitly 1)
//! ```
//!
//! This mirrors an IPFIX data set with a fixed template, without the
//! template-negotiation machinery the experiments don't need.

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::{FlowKey, IpfixRecord};

/// Encoded size of one record.
pub const RECORD_SIZE: usize = 4 + 4 + 2 + 2 + 1 + 8 + 4;

/// Maximum records per batch (fits the u16 count).
pub const MAX_BATCH: usize = u16::MAX as usize;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Batch declared more records than bytes present.
    Truncated,
    /// Too many records for one batch.
    BatchTooLarge(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "batch truncated"),
            CodecError::BatchTooLarge(n) => write!(f, "batch of {n} exceeds {MAX_BATCH}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a batch of records.
pub fn encode_batch(records: &[IpfixRecord]) -> Result<Bytes, CodecError> {
    if records.len() > MAX_BATCH {
        return Err(CodecError::BatchTooLarge(records.len()));
    }
    let mut out = BytesMut::with_capacity(2 + records.len() * RECORD_SIZE);
    out.put_u16(records.len() as u16);
    for r in records {
        out.put_u32(r.key.src_ip.into());
        out.put_u32(r.key.dst_ip.into());
        out.put_u16(r.key.src_port);
        out.put_u16(r.key.dst_port);
        out.put_u8(r.key.proto);
        out.put_u64(r.ts_ms);
        out.put_u32(r.bytes);
    }
    Ok(out.freeze())
}

/// Decode one batch.
pub fn decode_batch(mut buf: &[u8]) -> Result<Vec<IpfixRecord>, CodecError> {
    if buf.len() < 2 {
        return Err(CodecError::Truncated);
    }
    let count = buf.get_u16() as usize;
    if buf.len() < count * RECORD_SIZE {
        return Err(CodecError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::from(buf.get_u32()),
                dst_ip: Ipv4Addr::from(buf.get_u32()),
                src_port: buf.get_u16(),
                dst_port: buf.get_u16(),
                proto: buf.get_u8(),
            },
            ts_ms: buf.get_u64(),
            bytes: buf.get_u32(),
            packets: 1,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u8) -> IpfixRecord {
        IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, i),
                dst_ip: Ipv4Addr::new(93, 184, i, 34),
                src_port: 443,
                dst_port: 50_000 + u16::from(i),
                proto: 6,
            },
            ts_ms: 1_234_567 + u64::from(i),
            bytes: 1500,
            packets: 1,
        }
    }

    #[test]
    fn roundtrip_preserves_records() {
        let records: Vec<IpfixRecord> = (0..50).map(record).collect();
        let bytes = encode_batch(&records).unwrap();
        assert_eq!(bytes.len(), 2 + 50 * RECORD_SIZE);
        let back = decode_batch(&bytes).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(&[]).unwrap();
        assert_eq!(decode_batch(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn truncated_batch_detected() {
        let records: Vec<IpfixRecord> = (0..3).map(record).collect();
        let bytes = encode_batch(&records).unwrap();
        assert_eq!(
            decode_batch(&bytes[..bytes.len() - 1]),
            Err(CodecError::Truncated)
        );
        assert_eq!(decode_batch(&[1]), Err(CodecError::Truncated));
    }

    #[test]
    fn oversized_batch_rejected() {
        let records = vec![record(0); MAX_BATCH + 1];
        assert_eq!(
            encode_batch(&records),
            Err(CodecError::BatchTooLarge(MAX_BATCH + 1))
        );
    }
}
