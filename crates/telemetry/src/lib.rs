//! # phi-telemetry — IPFIX-style flow export and sharing analysis
//!
//! The §2.1 measurement pipeline of the five-computers paper: routers
//! sample one in 4096 packets ([`sampler::Sampler`]), export compact flow
//! records ([`record::IpfixRecord`], [`codec`]) to a centralized
//! collector that aggregates distinct flows per (destination /24, minute)
//! bucket ([`collector::Collector`]), and the sharing-opportunity CDF
//! ([`analysis::SharingCdf`]) answers the paper's question: how many
//! flows share a WAN path with how many others?
//!
//! The exporter → collector network hop is real too: [`export`] ships
//! batches over TCP with length-prefixed framing.
//!
//! Production traces are substituted by [`synth`], a deterministic
//! Zipf-popularity egress generator — see DESIGN.md for why the
//! substitution preserves the analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codec;
pub mod collector;
pub mod export;
pub mod record;
pub mod sampler;
pub mod synth;

pub use analysis::SharingCdf;
pub use codec::{decode_batch, encode_batch, CodecError};
pub use collector::{Bucket, BucketId, Collector};
pub use export::{
    shared_collector, CollectorServer, ExporterClient, LossyExporter, SharedCollector,
};
pub use record::{FlowKey, IpfixRecord, Subnet24};
pub use sampler::{Mode, Sampler, PAPER_RATE};
pub use synth::{generate_flows, EgressConfig, SynthFlow};
