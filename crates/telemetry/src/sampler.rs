//! Packet sampling, router style.
//!
//! The paper's IPFIX deployment samples **one in 4096 packets** at each
//! router. Routers implement this either deterministically (every 4096th
//! packet) or probabilistically; we provide both — the deterministic mode
//! matches count-based router samplers, the probabilistic mode is useful
//! for sensitivity checks. Sampled packet headers become
//! [`crate::record::IpfixRecord`]s bound for the collector.

use phi_workload::SeedRng;

use crate::record::{FlowKey, IpfixRecord};

/// The paper's sampling rate: 1 in 4096.
pub const PAPER_RATE: u32 = 4096;

/// Sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Every `rate`-th packet exactly (count-based).
    Deterministic,
    /// Each packet independently with probability `1/rate`.
    Probabilistic,
}

/// A 1-in-N packet sampler.
#[derive(Debug)]
pub struct Sampler {
    rate: u32,
    mode: Mode,
    counter: u64,
    rng: SeedRng,
    observed: u64,
    sampled: u64,
}

impl Sampler {
    /// A sampler taking one in `rate` packets.
    pub fn new(rate: u32, mode: Mode, rng: SeedRng) -> Self {
        assert!(rate >= 1, "rate must be at least 1");
        Sampler {
            rate,
            mode,
            counter: 0,
            rng,
            observed: 0,
            sampled: 0,
        }
    }

    /// The paper's configuration: deterministic 1-in-4096.
    pub fn paper(rng: SeedRng) -> Self {
        Sampler::new(PAPER_RATE, Mode::Deterministic, rng)
    }

    /// Offer one packet; returns its export record if sampled.
    pub fn observe(&mut self, key: FlowKey, ts_ms: u64, bytes: u32) -> Option<IpfixRecord> {
        self.observed += 1;
        let take = match self.mode {
            Mode::Deterministic => {
                self.counter += 1;
                if self.counter == u64::from(self.rate) {
                    self.counter = 0;
                    true
                } else {
                    false
                }
            }
            Mode::Probabilistic => self.rng.chance(1.0 / f64::from(self.rate)),
        };
        if take {
            self.sampled += 1;
            Some(IpfixRecord {
                key,
                ts_ms,
                bytes,
                packets: 1,
            })
        } else {
            None
        }
    }

    /// (observed, sampled) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.observed, self.sampled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u32) -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::from(0x5db8_0000 + i),
            src_port: 443,
            dst_port: 50_000,
            proto: 6,
        }
    }

    #[test]
    fn deterministic_takes_exactly_one_in_n() {
        let mut s = Sampler::new(100, Mode::Deterministic, SeedRng::new(1));
        let mut taken = 0;
        for i in 0..10_000 {
            if s.observe(key(i), u64::from(i), 1500).is_some() {
                taken += 1;
            }
        }
        assert_eq!(taken, 100);
        assert_eq!(s.counters(), (10_000, 100));
    }

    #[test]
    fn probabilistic_close_to_rate() {
        let mut s = Sampler::new(100, Mode::Probabilistic, SeedRng::new(2));
        let mut taken = 0u32;
        let n = 200_000;
        for i in 0..n {
            if s.observe(key(i), u64::from(i), 1500).is_some() {
                taken += 1;
            }
        }
        let expect = n / 100;
        assert!(
            (i64::from(taken) - i64::from(expect)).abs() < i64::from(expect) / 5,
            "taken {taken}, expected ≈{expect}"
        );
    }

    #[test]
    fn rate_one_takes_everything() {
        let mut s = Sampler::new(1, Mode::Deterministic, SeedRng::new(3));
        for i in 0..10 {
            assert!(s.observe(key(i), 0, 100).is_some());
        }
    }

    #[test]
    fn record_carries_packet_metadata() {
        let mut s = Sampler::new(1, Mode::Deterministic, SeedRng::new(4));
        let r = s.observe(key(7), 555, 1234).unwrap();
        assert_eq!(r.ts_ms, 555);
        assert_eq!(r.bytes, 1234);
        assert_eq!(r.packets, 1);
        assert_eq!(r.key, key(7));
    }
}
