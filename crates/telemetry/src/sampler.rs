//! Packet sampling, router style.
//!
//! The paper's IPFIX deployment samples **one in 4096 packets** at each
//! router. Routers implement this either deterministically (every 4096th
//! packet) or probabilistically; we provide both — the deterministic mode
//! matches count-based router samplers, the probabilistic mode is useful
//! for sensitivity checks. Sampled packet headers become
//! [`crate::record::IpfixRecord`]s bound for the collector.
//!
//! Count-based sampling keys the take decision on `(flow_count + phase)
//! % rate`, where `flow_count` is the flow's own observation count and
//! `phase` a seeded FNV-1a hash of the flow key. A single shared counter
//! phase-locks with synchronized workloads: if N clients' packets
//! interleave in lockstep, a 1-in-N counter lands on the *same* clients
//! every wheel turn and aliases the rest out of the telemetry entirely —
//! and no per-key phase can rescue a flow that only ever occupies one
//! wheel position. Per-flow wheels give every flow exactly one take per
//! `rate` of *its own* packets regardless of interleaving; the phase
//! staggers which packet that is, so synchronized flows don't all export
//! in the same burst. Neither draws from the RNG stream, so
//! probabilistic-mode replay is byte-identical to before.

use std::collections::HashMap;

use phi_workload::{fnv1a, SeedRng};

use crate::record::{FlowKey, IpfixRecord};

/// The paper's sampling rate: 1 in 4096.
pub const PAPER_RATE: u32 = 4096;

/// Sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Every `rate`-th packet exactly (count-based).
    Deterministic,
    /// Each packet independently with probability `1/rate`.
    Probabilistic,
}

/// A 1-in-N packet sampler.
#[derive(Debug)]
pub struct Sampler {
    rate: u32,
    mode: Mode,
    /// Per-flow observation counts (deterministic mode). Only ever
    /// looked up by key, so map order can't leak into the output.
    wheels: HashMap<FlowKey, u64>,
    /// Seed for the per-flow phase hash (deterministic mode). Captured
    /// from the RNG at construction, never advanced — the RNG stream
    /// itself belongs to probabilistic mode.
    phase_seed: u64,
    rng: SeedRng,
    observed: u64,
    sampled: u64,
}

impl Sampler {
    /// A sampler taking one in `rate` packets.
    pub fn new(rate: u32, mode: Mode, rng: SeedRng) -> Self {
        assert!(rate >= 1, "rate must be at least 1");
        Sampler {
            rate,
            mode,
            wheels: HashMap::new(),
            phase_seed: rng.seed(),
            rng,
            observed: 0,
            sampled: 0,
        }
    }

    /// The paper's configuration: deterministic 1-in-4096.
    pub fn paper(rng: SeedRng) -> Self {
        Sampler::new(PAPER_RATE, Mode::Deterministic, rng)
    }

    /// Offer one packet; returns its export record if sampled.
    pub fn observe(&mut self, key: FlowKey, ts_ms: u64, bytes: u32) -> Option<IpfixRecord> {
        self.observed += 1;
        let take = match self.mode {
            Mode::Deterministic => {
                let phase = self.phase_of(&key);
                let count = self.wheels.entry(key).or_insert(0);
                let taken = (*count + phase).is_multiple_of(u64::from(self.rate));
                *count += 1;
                taken
            }
            Mode::Probabilistic => self.rng.chance(1.0 / f64::from(self.rate)),
        };
        if take {
            self.sampled += 1;
            Some(IpfixRecord {
                key,
                ts_ms,
                bytes,
                packets: 1,
            })
        } else {
            None
        }
    }

    /// (observed, sampled) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.observed, self.sampled)
    }

    /// The flow's deterministic wheel offset in `0..rate`: a seeded
    /// FNV-1a hash of the five-tuple. Pure function of (seed, key), so
    /// replay is bit-identical for any `PHI_JOBS`.
    fn phase_of(&self, key: &FlowKey) -> u64 {
        let mut bytes = [0u8; 13];
        bytes[..4].copy_from_slice(&key.src_ip.octets());
        bytes[4..8].copy_from_slice(&key.dst_ip.octets());
        bytes[8..10].copy_from_slice(&key.src_port.to_be_bytes());
        bytes[10..12].copy_from_slice(&key.dst_port.to_be_bytes());
        bytes[12] = key.proto;
        // FNV only propagates entropy toward high bits, and the seed is
        // mixed in rotated high — fold the halves so the modulo (often a
        // power of two) sees both.
        let h = fnv1a(self.phase_seed, &bytes);
        (h ^ (h >> 32)) % u64::from(self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u32) -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::from(0x5db8_0000 + i),
            src_port: 443,
            dst_port: 50_000,
            proto: 6,
        }
    }

    #[test]
    fn deterministic_takes_exactly_one_in_n() {
        // A single flow's stream is sampled at exactly 1-in-N, whatever
        // phase its key hashes to.
        let mut s = Sampler::new(100, Mode::Deterministic, SeedRng::new(1));
        let mut taken = 0;
        for i in 0..10_000u64 {
            if s.observe(key(7), i, 1500).is_some() {
                taken += 1;
            }
        }
        assert_eq!(taken, 100);
        assert_eq!(s.counters(), (10_000, 100));
    }

    #[test]
    fn interleaved_flows_are_all_represented() {
        // The aliasing regression: 8 clients in strict lockstep through
        // a 1-in-2 sampler. A shared counter lands on the same 4 clients
        // every wheel turn and never exports the others; per-flow wheels
        // give every client exactly half of its own packets.
        let mut s = Sampler::new(2, Mode::Deterministic, SeedRng::new(5));
        let mut per_flow = [0u32; 8];
        for round in 0..100u64 {
            for (f, taken) in per_flow.iter_mut().enumerate() {
                if s.observe(key(f as u32), round, 1500).is_some() {
                    *taken += 1;
                }
            }
        }
        assert_eq!(per_flow, [50; 8], "some client aliased out: {per_flow:?}");
    }

    #[test]
    fn phases_are_staggered_across_flows() {
        // The per-key phase exists so synchronized flows don't all fire
        // on the same round. With 32 flows on a 1-in-4 wheel, at least
        // two distinct first-take rounds must appear.
        let mut s = Sampler::new(4, Mode::Deterministic, SeedRng::new(6));
        let mut first_take = [None; 32];
        for round in 0..4u64 {
            for (f, first) in first_take.iter_mut().enumerate() {
                if s.observe(key(f as u32), round, 1500).is_some() && first.is_none() {
                    *first = Some(round);
                }
            }
        }
        assert!(first_take.iter().all(|f| f.is_some()));
        let distinct: std::collections::HashSet<_> = first_take.iter().collect();
        assert!(distinct.len() > 1, "all flows phase-locked: {first_take:?}");
    }

    #[test]
    fn deterministic_mode_is_seed_stable_and_rng_free() {
        // Same seed → same takes (replay for any PHI_JOBS); and the
        // deterministic path must not consume the RNG stream, so a
        // probabilistic sampler seeded identically is unaffected by
        // whether a deterministic one ran first.
        let run = |seed| {
            let mut s = Sampler::new(4, Mode::Deterministic, SeedRng::new(seed));
            (0..64u32)
                .map(|i| s.observe(key(i % 8), 0, 100).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "phase must depend on the seed");
    }

    #[test]
    fn probabilistic_close_to_rate() {
        let mut s = Sampler::new(100, Mode::Probabilistic, SeedRng::new(2));
        let mut taken = 0u32;
        let n = 200_000;
        for i in 0..n {
            if s.observe(key(i), u64::from(i), 1500).is_some() {
                taken += 1;
            }
        }
        let expect = n / 100;
        assert!(
            (i64::from(taken) - i64::from(expect)).abs() < i64::from(expect) / 5,
            "taken {taken}, expected ≈{expect}"
        );
    }

    #[test]
    fn rate_one_takes_everything() {
        let mut s = Sampler::new(1, Mode::Deterministic, SeedRng::new(3));
        for i in 0..10 {
            assert!(s.observe(key(i), 0, 100).is_some());
        }
    }

    #[test]
    fn record_carries_packet_metadata() {
        let mut s = Sampler::new(1, Mode::Deterministic, SeedRng::new(4));
        let r = s.observe(key(7), 555, 1234).unwrap();
        assert_eq!(r.ts_ms, 555);
        assert_eq!(r.bytes, 1234);
        assert_eq!(r.packets, 1);
        assert_eq!(r.key, key(7));
    }
}
