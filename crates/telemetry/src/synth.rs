//! Synthetic cloud-egress traffic (the production-trace substitute).
//!
//! The paper's §2.1 numbers come from a real provider's IPFIX data, which
//! we cannot have. What the analysis actually needs is the *shape* of CDN
//! egress: a heavy-tailed (Zipf) distribution of traffic over destination
//! /24s and flows whose packet counts are themselves skewed. This
//! generator produces a packet stream with exactly those properties,
//! deterministically from a seed, and feeds it through the identical
//! sampler → collector → analysis pipeline a production trace would take.

use std::net::Ipv4Addr;

use phi_workload::{BoundedPareto, Sample, SeedRng, Zipf};
use serde::{Deserialize, Serialize};

use crate::record::FlowKey;

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EgressConfig {
    /// Number of destination /24 subnets the provider sends to.
    pub subnets: usize,
    /// Zipf exponent of subnet popularity (≈1 for CDN egress).
    pub popularity_exponent: f64,
    /// Total flows to generate.
    pub flows: usize,
    /// Pareto shape for per-flow packet counts.
    pub flow_size_alpha: f64,
    /// Minimum packets per flow.
    pub min_packets: f64,
    /// Maximum packets per flow.
    pub max_packets: f64,
    /// Trace duration, minutes.
    pub minutes: u64,
}

impl Default for EgressConfig {
    fn default() -> Self {
        EgressConfig {
            subnets: 500,
            popularity_exponent: 1.05,
            flows: 300_000,
            flow_size_alpha: 1.1,
            min_packets: 40.0,
            max_packets: 200_000.0,
            minutes: 10,
        }
    }
}

/// One synthetic flow: key, start, and packet schedule summary.
#[derive(Debug, Clone, Copy)]
pub struct SynthFlow {
    /// Flow identity.
    pub key: FlowKey,
    /// Start time, ms.
    pub start_ms: u64,
    /// Total packets.
    pub packets: u64,
    /// Gap between packets, ms (packets spread uniformly over the flow).
    pub gap_ms: f64,
}

impl SynthFlow {
    /// Iterate the flow's packet timestamps (ms).
    pub fn packet_times(&self) -> impl Iterator<Item = u64> + '_ {
        let start = self.start_ms;
        let gap = self.gap_ms;
        (0..self.packets).map(move |i| start + (i as f64 * gap) as u64)
    }
}

/// Generate the flow population.
pub fn generate_flows(cfg: &EgressConfig, rng: &mut SeedRng) -> Vec<SynthFlow> {
    assert!(cfg.subnets > 0 && cfg.flows > 0 && cfg.minutes > 0);
    let popularity = Zipf::new(cfg.subnets, cfg.popularity_exponent);
    let sizes = BoundedPareto::new(cfg.flow_size_alpha, cfg.min_packets, cfg.max_packets);
    let horizon_ms = cfg.minutes * 60_000;

    let mut flows = Vec::with_capacity(cfg.flows);
    for i in 0..cfg.flows {
        let rank = popularity.sample_rank(rng) as u32;
        // Map subnet rank onto 93.x.y.0/24-style space.
        let dst_subnet_base = 0x5d00_0000u32 + (rank << 8);
        let dst_ip = Ipv4Addr::from(dst_subnet_base + 1 + (i as u32 % 200));
        // A modest server fleet: source picked from ~4096 addresses
        // (cf. Netflix's ~4669 mapped servers).
        let server = rng.range_u64(0, 4096) as u32;
        let key = FlowKey {
            src_ip: Ipv4Addr::from(0x0a00_0000 + server),
            dst_ip,
            src_port: 443,
            dst_port: rng.range_u64(1024, 65536) as u16,
            proto: 6,
        };
        let packets = sizes.sample(rng).round().max(1.0) as u64;
        let start_ms = rng.range_u64(0, horizon_ms);
        // Spread the flow over up to a minute (or its packet count at
        // ~1 ms spacing, whichever is shorter).
        let duration_ms = (packets as f64).min(60_000.0);
        let gap_ms = duration_ms / packets as f64;
        flows.push(SynthFlow {
            key,
            start_ms,
            packets,
            gap_ms,
        });
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Subnet24;
    use std::collections::HashMap;

    fn small_cfg() -> EgressConfig {
        EgressConfig {
            subnets: 100,
            flows: 5_000,
            minutes: 5,
            ..EgressConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_cfg();
        let a = generate_flows(&cfg, &mut SeedRng::new(1));
        let b = generate_flows(&cfg, &mut SeedRng::new(1));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.packets, y.packets);
            assert_eq!(x.start_ms, y.start_ms);
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let cfg = small_cfg();
        let flows = generate_flows(&cfg, &mut SeedRng::new(2));
        let mut per_subnet: HashMap<Subnet24, usize> = HashMap::new();
        for f in &flows {
            *per_subnet.entry(f.key.dst_subnet()).or_default() += 1;
        }
        let mut counts: Vec<usize> = per_subnet.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top subnet should dwarf the median subnet.
        let top = counts[0];
        let median = counts[counts.len() / 2];
        assert!(
            top > median * 5,
            "expected heavy tail, top {top} vs median {median}"
        );
    }

    #[test]
    fn packet_times_respect_start_and_count() {
        let f = SynthFlow {
            key: FlowKey {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(93, 0, 0, 1),
                src_port: 443,
                dst_port: 2000,
                proto: 6,
            },
            start_ms: 1000,
            packets: 5,
            gap_ms: 10.0,
        };
        let times: Vec<u64> = f.packet_times().collect();
        assert_eq!(times, vec![1000, 1010, 1020, 1030, 1040]);
    }

    #[test]
    fn starts_within_horizon() {
        let cfg = small_cfg();
        let horizon = cfg.minutes * 60_000;
        for f in generate_flows(&cfg, &mut SeedRng::new(3)) {
            assert!(f.start_ms < horizon);
            assert!(f.packets >= 1);
        }
    }
}
