//! Property-based invariants of the telemetry codec and aggregation.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use phi_telemetry::{decode_batch, encode_batch, Collector, FlowKey, IpfixRecord, SharingCdf};

fn arb_record() -> impl Strategy<Value = IpfixRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        0u64..1_000_000_000,
        any::<u32>(),
    )
        .prop_map(|(src, dst, sp, dp, proto, ts_ms, bytes)| IpfixRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::from(src),
                dst_ip: Ipv4Addr::from(dst),
                src_port: sp,
                dst_port: dp,
                proto,
            },
            ts_ms,
            bytes,
            packets: 1,
        })
}

proptest! {
    #[test]
    fn codec_roundtrip_any_batch(records in proptest::collection::vec(arb_record(), 0..200)) {
        let bytes = encode_batch(&records).unwrap();
        prop_assert_eq!(decode_batch(&bytes).unwrap(), records);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_batch(&bytes); // must return Ok or Err, never panic
    }

    #[test]
    fn collector_counts_are_consistent(records in proptest::collection::vec(arb_record(), 0..300)) {
        let mut c = Collector::new();
        c.ingest_batch(&records);
        prop_assert_eq!(c.record_count(), records.len() as u64);
        let flows: usize = c.buckets().map(|(_, b)| b.flow_count()).sum();
        prop_assert!(flows <= records.len());
        let cdf = SharingCdf::from_collector(&c);
        prop_assert_eq!(cdf.len(), flows);
        let mut last = f64::INFINITY;
        for k in [0u64, 1, 2, 4, 8, 16, 32] {
            let f = cdf.fraction_at_least(k);
            prop_assert!(f <= last + 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            last = f;
        }
    }
}
