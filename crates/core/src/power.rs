//! The network power metric and the paper's loss-extended variant.
//!
//! Power (Giessler et al., via Kleinrock) is `P = r / d` — throughput over
//! delay. The paper extends it with the packet loss rate `l`, giving
//! `P_l = r·(1 − l) / d`, and optimizes `P_l` for Cubic and `log(P)` for
//! Remy (matching the Remy paper's objective).

use phi_tcp::report::RunMetrics;
use serde::{Deserialize, Serialize};

/// Which objective an experiment optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// `P = r / d` — classic network power.
    Power,
    /// `P_l = r (1 − l) / d` — the paper's loss-extended power (Cubic runs).
    PowerLoss,
    /// `log r − log d` — Remy's objective, `log(P)`.
    LogPower,
}

/// Classic network power `r / d`, with `r` in Mbit/s and `d` in ms.
pub fn power(throughput_mbps: f64, delay_ms: f64) -> f64 {
    if delay_ms <= 0.0 {
        return 0.0;
    }
    throughput_mbps / delay_ms
}

/// The paper's loss-extended power `r (1 − l) / d`.
pub fn power_loss(throughput_mbps: f64, delay_ms: f64, loss_rate: f64) -> f64 {
    power(throughput_mbps, delay_ms) * (1.0 - loss_rate.clamp(0.0, 1.0))
}

/// Remy's objective `log(P) = log r − log d` (natural log; zero-guarded).
pub fn log_power(throughput_mbps: f64, delay_ms: f64) -> f64 {
    const FLOOR: f64 = 1e-9;
    throughput_mbps.max(FLOOR).ln() - delay_ms.max(FLOOR).ln()
}

/// The delay a run's power metric divides by: the mean RTT experienced by
/// flows when RTT samples exist, else base RTT plus bottleneck queueing.
pub fn effective_delay_ms(m: &RunMetrics, base_rtt_ms: f64) -> f64 {
    if m.mean_rtt_ms > 0.0 {
        m.mean_rtt_ms
    } else {
        base_rtt_ms + m.queueing_delay_ms
    }
}

/// Score a run under the chosen objective.
pub fn score(objective: Objective, m: &RunMetrics, base_rtt_ms: f64) -> f64 {
    let d = effective_delay_ms(m, base_rtt_ms);
    match objective {
        Objective::Power => power(m.throughput_mbps, d),
        Objective::PowerLoss => power_loss(m.throughput_mbps, d, m.loss_rate),
        Objective::LogPower => log_power(m.throughput_mbps, d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(tput: f64, rtt: f64, queue: f64, loss: f64) -> RunMetrics {
        RunMetrics {
            throughput_mbps: tput,
            queueing_delay_ms: queue,
            loss_rate: loss,
            mean_rtt_ms: rtt,
            utilization: 0.5,
            flows_completed: 10,
            flows_aborted: 0,
            bytes: 1,
        }
    }

    #[test]
    fn power_basics() {
        assert_eq!(power(10.0, 100.0), 0.1);
        assert_eq!(power(10.0, 0.0), 0.0);
    }

    #[test]
    fn loss_discounts_power() {
        let no_loss = power_loss(10.0, 100.0, 0.0);
        let lossy = power_loss(10.0, 100.0, 0.04);
        assert!((no_loss - 0.1).abs() < 1e-12);
        assert!((lossy - 0.096).abs() < 1e-12);
        // Loss clamped to [0, 1].
        assert_eq!(power_loss(10.0, 100.0, 2.0), 0.0);
    }

    #[test]
    fn log_power_is_log_of_power() {
        let lp = log_power(8.0, 160.0);
        assert!((lp - (8.0f64.ln() - 160.0f64.ln())).abs() < 1e-12);
        // Monotone: higher throughput better, higher delay worse.
        assert!(log_power(9.0, 160.0) > lp);
        assert!(log_power(8.0, 170.0) < lp);
    }

    #[test]
    fn effective_delay_prefers_measured_rtt() {
        let m = metrics(5.0, 170.0, 20.0, 0.0);
        assert_eq!(effective_delay_ms(&m, 150.0), 170.0);
        let m = metrics(5.0, 0.0, 20.0, 0.0);
        assert_eq!(effective_delay_ms(&m, 150.0), 170.0);
    }

    #[test]
    fn score_dispatches() {
        let m = metrics(10.0, 200.0, 0.0, 0.5);
        assert!((score(Objective::Power, &m, 150.0) - 0.05).abs() < 1e-12);
        assert!((score(Objective::PowerLoss, &m, 150.0) - 0.025).abs() < 1e-12);
        assert!(
            (score(Objective::LogPower, &m, 150.0) - (10.0f64.ln() - 200.0f64.ln())).abs() < 1e-12
        );
    }

    #[test]
    fn better_network_state_scores_higher() {
        // Same throughput, less queueing => higher P_l.
        let good = metrics(8.0, 155.0, 5.0, 0.0001);
        let bad = metrics(8.0, 190.0, 40.0, 0.039);
        assert!(
            score(Objective::PowerLoss, &good, 150.0) > score(Objective::PowerLoss, &bad, 150.0)
        );
    }
}
