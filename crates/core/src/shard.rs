//! A sharded context store: N independent [`ContextStore`]s keyed by a
//! stable hash of the path.
//!
//! The paper's provider-run context plane fields reports from millions
//! of senders per domain; one store behind one lock serializes all of
//! them. Because paths are *independent* in the store (no estimate ever
//! reads across paths — pinned by `paths_are_independent` in
//! [`crate::context`]), the keyspace can be split into N shards that
//! never need to coordinate: each path maps to exactly one shard, so a
//! sharded store is observably equivalent to the classic store for any
//! interleaving of operations. That equivalence-by-construction is what
//! lets each shard carry its own lock, its own replication log, and its
//! own failover epoch in the server (see `crates/core/src/server.rs`)
//! without a cross-shard consistency protocol.
//!
//! The shard key is FNV-1a over the path id's big-endian bytes — the
//! same hash the run digests use: stable across platforms, processes,
//! and releases, so a path's shard assignment never moves when a
//! deployment restarts (moving keys between shards would split one
//! path's history across two EWMAs).

use phi_tcp::hook::ContextSnapshot;

use crate::context::{ContextStore, FlowSummary, PathKey, StoreConfig};

/// Stable shard assignment: FNV-1a of the path id's big-endian bytes,
/// reduced mod `shards`. `shards == 0` is treated as one shard.
///
/// Every component that routes by path — the sharded store, the server's
/// per-shard replication logs, the in-sim per-shard crash planes — uses
/// this one function, so they always agree on where a path lives.
pub fn shard_index(path: PathKey, shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in path.0.to_be_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// N independent [`ContextStore`] shards behind one façade.
///
/// Mirrors the classic store's observable API exactly; every call routes
/// to [`shard_index`]`(path, N)` and delegates. A `ShardedStore::new(cfg, 1)`
/// is the classic store.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Vec<ContextStore>,
}

impl ShardedStore {
    /// A store split into `shards` independent shards (at least one),
    /// each configured with `cfg`.
    pub fn new(cfg: StoreConfig, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedStore {
            shards: (0..n).map(|_| ContextStore::new(cfg)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration every shard runs.
    pub fn config(&self) -> &StoreConfig {
        self.shards[0].config()
    }

    /// Which shard `path` lives on.
    pub fn shard_of(&self, path: PathKey) -> usize {
        shard_index(path, self.shards.len())
    }

    /// Borrow shard `i` (for per-shard snapshots and digests).
    pub fn shard(&self, i: usize) -> &ContextStore {
        &self.shards[i]
    }

    /// Serve a lookup from `path`'s shard (registers a competing flow,
    /// exactly like [`ContextStore::lookup`]).
    pub fn lookup(&mut self, path: PathKey, now_ns: u64) -> ContextSnapshot {
        let i = self.shard_of(path);
        self.shards[i].lookup(path, now_ns)
    }

    /// Read `path`'s context without side effects.
    pub fn peek(&self, path: PathKey, now_ns: u64) -> ContextSnapshot {
        self.shards[self.shard_of(path)].peek(path, now_ns)
    }

    /// Absorb an end-of-connection report into `path`'s shard.
    pub fn report(&mut self, path: PathKey, now_ns: u64, summary: &FlowSummary) {
        let i = self.shard_of(path);
        self.shards[i].report(path, now_ns, summary);
    }

    /// Retransmit-rate EWMA for `path`, if any reports arrived.
    pub fn loss_signal(&self, path: PathKey) -> Option<f64> {
        self.shards[self.shard_of(path)].loss_signal(path)
    }

    /// `(lookups, reports)` counters for `path`.
    pub fn traffic_counters(&self, path: PathKey) -> (u64, u64) {
        self.shards[self.shard_of(path)].traffic_counters(path)
    }

    /// Total number of known paths across all shards.
    pub fn path_count(&self) -> usize {
        self.shards.iter().map(|s| s.path_count()).sum()
    }

    /// All paths with their current context, merged across shards and
    /// ordered like [`ContextStore::snapshot`]: utilization descending,
    /// then key ascending — so operators see the same busiest-first view
    /// regardless of shard count.
    pub fn snapshot(&self, now_ns: u64) -> Vec<(PathKey, ContextSnapshot)> {
        let mut out: Vec<(PathKey, ContextSnapshot)> = self
            .shards
            .iter()
            .flat_map(|s| s.snapshot(now_ns))
            .collect();
        out.sort_by(|(ka, a), (kb, b)| b.utilization.total_cmp(&a.utilization).then(ka.cmp(kb)));
        out
    }

    /// Deterministic snapshot blob of shard `i` tagged with that shard's
    /// `epoch` (shards fail over independently, so each carries its own).
    pub fn encode_shard_snapshot(&self, i: usize, epoch: u64) -> Vec<u8> {
        self.shards[i].encode_snapshot(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(bytes: u64) -> FlowSummary {
        FlowSummary {
            bytes,
            duration_ns: 1_000_000_000,
            mean_rtt_ms: 170.0,
            min_rtt_ms: 150.0,
            retransmits: 2,
            timeouts: 0,
        }
    }

    fn cfg() -> StoreConfig {
        StoreConfig {
            window_ns: 10_000_000_000,
            capacity_bps: Some(10_000_000.0),
            queue_alpha: 0.3,
        }
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        // Pinned values: the assignment is part of the deployment's
        // persistent state (snapshots, per-shard logs), so it must never
        // change across releases.
        assert_eq!(shard_index(PathKey(0), 4), shard_index(PathKey(0), 4));
        for p in 0..1000u64 {
            for n in [1usize, 2, 4, 16] {
                assert!(shard_index(PathKey(p), n) < n);
            }
            assert_eq!(shard_index(PathKey(p), 1), 0);
            assert_eq!(shard_index(PathKey(p), 0), 0, "zero shards acts as one");
        }
    }

    #[test]
    fn shard_index_spreads_paths() {
        let n = 16;
        let mut seen = vec![0u32; n];
        for p in 0..4096u64 {
            seen[shard_index(PathKey(p), n)] += 1;
        }
        // FNV over sequential keys is not perfectly uniform, but every
        // shard must carry a meaningful share — no dead shards, no shard
        // with the whole keyspace.
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 64, "shard {i} nearly empty: {count}");
            assert!(count < 1024, "shard {i} overloaded: {count}");
        }
    }

    #[test]
    fn equivalent_to_classic_store_for_mixed_traffic() {
        let mut classic = ContextStore::new(cfg());
        let mut sharded = ShardedStore::new(cfg(), 4);
        for i in 0..200u64 {
            let path = PathKey(i % 7);
            let now = i * 50_000_000;
            if i % 3 == 0 {
                assert_eq!(sharded.lookup(path, now), classic.lookup(path, now));
            } else {
                sharded.report(path, now, &summary(100_000 + i));
                classic.report(path, now, &summary(100_000 + i));
            }
            assert_eq!(sharded.peek(path, now), classic.peek(path, now));
            assert_eq!(
                sharded.traffic_counters(path),
                classic.traffic_counters(path)
            );
            assert_eq!(sharded.loss_signal(path), classic.loss_signal(path));
        }
        assert_eq!(sharded.path_count(), classic.path_count());
        assert_eq!(
            sharded.snapshot(10_000_000_000),
            classic.snapshot(10_000_000_000)
        );
    }

    #[test]
    fn per_shard_snapshots_carry_their_own_epoch() {
        let mut sharded = ShardedStore::new(cfg(), 2);
        sharded.report(PathKey(1), 1_000_000_000, &summary(50_000));
        let a = sharded.encode_shard_snapshot(0, 7);
        let b = sharded.encode_shard_snapshot(1, 9);
        let (_, ea) = ContextStore::decode_snapshot(&a).expect("shard 0 snapshot");
        let (_, eb) = ContextStore::decode_snapshot(&b).expect("shard 1 snapshot");
        assert_eq!(ea, 7);
        assert_eq!(eb, 9);
    }

    #[test]
    fn snapshot_merge_orders_busiest_first() {
        let mut sharded = ShardedStore::new(cfg(), 8);
        // Different report sizes → different utilizations across shards.
        for p in 0..20u64 {
            sharded.report(PathKey(p), 1_000_000_000, &summary(10_000 * (p + 1)));
        }
        let snap = sharded.snapshot(2_000_000_000);
        assert_eq!(snap.len(), 20);
        for w in snap.windows(2) {
            let (ka, a) = &w[0];
            let (kb, b) = &w[1];
            assert!(
                a.utilization > b.utilization || (a.utilization == b.utilization && ka.0 < kb.0),
                "snapshot out of order: {ka:?}={} then {kb:?}={}",
                a.utilization,
                b.utilization
            );
        }
    }
}
