//! The context-server wire protocol.
//!
//! A deliberately minimal binary protocol — the whole point of the §2.2.2
//! design is that the context traffic is tiny (one lookup and one report
//! per connection), so the protocol is a handful of fixed-layout frames:
//!
//! ```text
//! frame    := u32 length (big-endian, of everything after itself)
//!             u8 version (= 1)
//!             u8 type
//!             payload
//! LOOKUP   (1): u64 path
//! CONTEXT  (2): f64 utilization, f64 queue_ms, u32 competing
//! REPORT   (3): u64 path, u64 bytes, u64 duration_ns,
//!               f64 mean_rtt_ms, f64 min_rtt_ms, u32 retransmits, u32 timeouts
//! REPORT_OK(4): empty
//! ERROR    (5): u16 code, u16 len, utf-8 message
//! SNAPSHOT (6): u16 limit — dashboard query: the busiest paths
//! PATHS    (7): u16 count, count x (u64 path, f64 utilization,
//!               f64 queue_ms, u32 competing)
//! ```
//!
//! Framing follows the length-prefix pattern: the decoder accumulates
//! bytes and yields complete messages, tolerating any fragmentation the
//! transport introduces.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use phi_tcp::hook::ContextSnapshot;

use crate::context::{FlowSummary, PathKey};

/// Protocol version this implementation speaks.
pub const VERSION: u8 = 1;

/// Upper bound on a frame's length field; anything larger is malformed.
pub const MAX_FRAME: usize = 64 * 1024;

const TYPE_LOOKUP: u8 = 1;
const TYPE_CONTEXT: u8 = 2;
const TYPE_REPORT: u8 = 3;
const TYPE_REPORT_OK: u8 = 4;
const TYPE_ERROR: u8 = 5;
const TYPE_SNAPSHOT: u8 = 6;
const TYPE_PATHS: u8 = 7;

/// Most paths a PATHS reply may carry (bounded by `MAX_FRAME`).
pub const MAX_SNAPSHOT_PATHS: usize = 1024;

/// Machine-readable codes carried by [`Message::Error`] frames.
///
/// The taxonomy mirrors HTTP where the analogy is exact, so codes stay
/// self-explanatory in traces: 4xx means "your frame was wrong, fix it
/// before retrying", 5xx means "the server cannot serve you right now,
/// back off". Clients treat [`code::OVERLOADED`] as a retryable failure
/// (the [`crate::server::ResilientClient`] backs off and may trip its
/// circuit breaker); all other codes poison nothing — the reply was a
/// well-formed frame and the connection stays usable.
pub mod code {
    /// The request was well-framed but semantically wrong (e.g. a reply
    /// type sent in the client → server direction).
    pub const BAD_REQUEST: u16 = 400;
    /// The frame could not be decoded; the connection is dropped after
    /// this error is sent (framing state is unrecoverable).
    pub const MALFORMED: u16 = 422;
    /// The server is at its connection cap and sheds this connection
    /// before serving any request. Retry later, against another replica,
    /// or degrade to no context.
    pub const OVERLOADED: u16 = 503;
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: what's the context for this path?
    Lookup {
        /// The path being asked about.
        path: PathKey,
    },
    /// Server → client: the context snapshot.
    Context(ContextSnapshot),
    /// Client → server: a finished connection's experience.
    Report {
        /// The path the connection used.
        path: PathKey,
        /// Its summary.
        summary: FlowSummary,
    },
    /// Server → client: report accepted.
    ReportOk,
    /// Either direction: something went wrong.
    Error {
        /// Machine-readable code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: the busiest `limit` paths, please (dashboard).
    Snapshot {
        /// Maximum paths to return.
        limit: u16,
    },
    /// Server → client: per-path contexts, busiest first.
    Paths(Vec<(PathKey, ContextSnapshot)>),
}

/// Decoding failures. Frame errors are fatal for the connection;
/// [`DecodeError::Incomplete`] just means "feed me more bytes".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough buffered bytes for a full frame yet.
    Incomplete,
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// Unknown message type.
    BadType(u8),
    /// Length field out of bounds or payload malformed.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "incomplete frame"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadType(t) => write!(f, "unknown message type {t}"),
            DecodeError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a message into a self-contained frame.
pub fn encode(msg: &Message) -> Bytes {
    let mut payload = BytesMut::with_capacity(64);
    payload.put_u8(VERSION);
    match msg {
        Message::Lookup { path } => {
            payload.put_u8(TYPE_LOOKUP);
            payload.put_u64(path.0);
        }
        Message::Context(c) => {
            payload.put_u8(TYPE_CONTEXT);
            payload.put_f64(c.utilization);
            payload.put_f64(c.queue_ms);
            payload.put_u32(c.competing);
        }
        Message::Report { path, summary } => {
            payload.put_u8(TYPE_REPORT);
            payload.put_u64(path.0);
            payload.put_u64(summary.bytes);
            payload.put_u64(summary.duration_ns);
            payload.put_f64(summary.mean_rtt_ms);
            payload.put_f64(summary.min_rtt_ms);
            payload.put_u32(summary.retransmits);
            payload.put_u32(summary.timeouts);
        }
        Message::ReportOk => {
            payload.put_u8(TYPE_REPORT_OK);
        }
        Message::Snapshot { limit } => {
            payload.put_u8(TYPE_SNAPSHOT);
            payload.put_u16(*limit);
        }
        Message::Paths(paths) => {
            payload.put_u8(TYPE_PATHS);
            let n = paths.len().min(MAX_SNAPSHOT_PATHS);
            payload.put_u16(n as u16);
            for (key, ctx) in &paths[..n] {
                payload.put_u64(key.0);
                payload.put_f64(ctx.utilization);
                payload.put_f64(ctx.queue_ms);
                payload.put_u32(ctx.competing);
            }
        }
        Message::Error { code, message } => {
            payload.put_u8(TYPE_ERROR);
            payload.put_u16(*code);
            // Keep error frames small; 512 bytes of detail is plenty.
            let len = truncated_utf8_len(message, 512);
            payload.put_u16(len as u16);
            payload.put_slice(&message.as_bytes()[..len]);
        }
    }
    let mut frame = BytesMut::with_capacity(4 + payload.len());
    frame.put_u32(payload.len() as u32);
    frame.extend_from_slice(&payload);
    frame.freeze()
}

/// Longest prefix length ≤ `max` that ends on a UTF-8 boundary.
fn truncated_utf8_len(s: &str, max: usize) -> usize {
    if s.len() <= max {
        return s.len();
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    end
}

/// Streaming decoder: feed bytes with [`Decoder::extend`], pull messages
/// with [`Decoder::next`].
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Append raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Message, DecodeError> {
        if self.buf.len() < 4 {
            return Err(DecodeError::Incomplete);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if !(2..=MAX_FRAME).contains(&len) {
            return Err(DecodeError::Malformed("length out of bounds"));
        }
        if self.buf.len() < 4 + len {
            return Err(DecodeError::Incomplete);
        }
        self.buf.advance(4);
        let mut payload = self.buf.split_to(len);
        decode_payload(&mut payload)
    }
}

fn decode_payload(p: &mut BytesMut) -> Result<Message, DecodeError> {
    let version = p.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let ty = p.get_u8();
    macro_rules! need {
        ($n:expr) => {
            if p.remaining() < $n {
                return Err(DecodeError::Malformed("payload too short"));
            }
        };
    }
    match ty {
        TYPE_LOOKUP => {
            need!(8);
            Ok(Message::Lookup {
                path: PathKey(p.get_u64()),
            })
        }
        TYPE_CONTEXT => {
            need!(20);
            Ok(Message::Context(ContextSnapshot {
                utilization: p.get_f64(),
                queue_ms: p.get_f64(),
                competing: p.get_u32(),
            }))
        }
        TYPE_REPORT => {
            need!(48);
            Ok(Message::Report {
                path: PathKey(p.get_u64()),
                summary: FlowSummary {
                    bytes: p.get_u64(),
                    duration_ns: p.get_u64(),
                    mean_rtt_ms: p.get_f64(),
                    min_rtt_ms: p.get_f64(),
                    retransmits: p.get_u32(),
                    timeouts: p.get_u32(),
                },
            })
        }
        TYPE_REPORT_OK => Ok(Message::ReportOk),
        TYPE_SNAPSHOT => {
            need!(2);
            Ok(Message::Snapshot { limit: p.get_u16() })
        }
        TYPE_PATHS => {
            need!(2);
            let n = p.get_u16() as usize;
            if n > MAX_SNAPSHOT_PATHS {
                return Err(DecodeError::Malformed("too many paths"));
            }
            need!(n * 28);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push((
                    PathKey(p.get_u64()),
                    ContextSnapshot {
                        utilization: p.get_f64(),
                        queue_ms: p.get_f64(),
                        competing: p.get_u32(),
                    },
                ));
            }
            Ok(Message::Paths(out))
        }
        TYPE_ERROR => {
            need!(4);
            let code = p.get_u16();
            let len = p.get_u16() as usize;
            need!(len);
            let raw = p.split_to(len);
            let message = String::from_utf8(raw.to_vec())
                .map_err(|_| DecodeError::Malformed("error message not utf-8"))?;
            Ok(Message::Error { code, message })
        }
        other => Err(DecodeError::BadType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode(&msg);
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next().unwrap(), msg);
        assert_eq!(d.next(), Err(DecodeError::Incomplete));
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Lookup { path: PathKey(42) });
        roundtrip(Message::Context(ContextSnapshot {
            utilization: 0.73,
            queue_ms: 12.25,
            competing: 17,
        }));
        roundtrip(Message::Report {
            path: PathKey(u64::MAX),
            summary: FlowSummary {
                bytes: 123_456_789,
                duration_ns: 2_500_000_000,
                mean_rtt_ms: 163.5,
                min_rtt_ms: 150.0,
                retransmits: 7,
                timeouts: 1,
            },
        });
        roundtrip(Message::ReportOk);
        roundtrip(Message::Snapshot { limit: 10 });
        roundtrip(Message::Paths(vec![
            (
                PathKey(1),
                ContextSnapshot {
                    utilization: 0.9,
                    queue_ms: 40.0,
                    competing: 12,
                },
            ),
            (
                PathKey(2),
                ContextSnapshot {
                    utilization: 0.1,
                    queue_ms: 0.5,
                    competing: 0,
                },
            ),
        ]));
        roundtrip(Message::Paths(Vec::new()));
        roundtrip(Message::Error {
            code: 404,
            message: "no such path".into(),
        });
    }

    #[test]
    fn decoder_handles_fragmentation() {
        let frame = encode(&Message::Lookup { path: PathKey(7) });
        let mut d = Decoder::new();
        for chunk in frame.chunks(3) {
            if d.buffered() + chunk.len() < frame.len() {
                d.extend(chunk);
                assert_eq!(d.next(), Err(DecodeError::Incomplete));
            } else {
                d.extend(chunk);
            }
        }
        assert_eq!(d.next().unwrap(), Message::Lookup { path: PathKey(7) });
    }

    #[test]
    fn decoder_handles_pipelined_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode(&Message::Lookup { path: PathKey(1) }));
        stream.extend_from_slice(&encode(&Message::ReportOk));
        stream.extend_from_slice(&encode(&Message::Lookup { path: PathKey(2) }));
        let mut d = Decoder::new();
        d.extend(&stream);
        assert_eq!(d.next().unwrap(), Message::Lookup { path: PathKey(1) });
        assert_eq!(d.next().unwrap(), Message::ReportOk);
        assert_eq!(d.next().unwrap(), Message::Lookup { path: PathKey(2) });
        assert_eq!(d.next(), Err(DecodeError::Incomplete));
    }

    #[test]
    fn bad_version_rejected() {
        let mut frame = BytesMut::from(&encode(&Message::ReportOk)[..]);
        frame[4] = 9; // version byte
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next(), Err(DecodeError::BadVersion(9)));
    }

    #[test]
    fn bad_type_rejected() {
        let mut frame = BytesMut::from(&encode(&Message::ReportOk)[..]);
        frame[5] = 99; // type byte
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next(), Err(DecodeError::BadType(99)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut d = Decoder::new();
        d.extend(&(MAX_FRAME as u32 + 1).to_be_bytes());
        d.extend(&[VERSION, TYPE_REPORT_OK]);
        assert_eq!(
            d.next(),
            Err(DecodeError::Malformed("length out of bounds"))
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        // Claim a LOOKUP but supply only 4 of its 8 path bytes.
        let mut frame = BytesMut::new();
        frame.put_u32(2 + 4);
        frame.put_u8(VERSION);
        frame.put_u8(TYPE_LOOKUP);
        frame.put_u32(1);
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next(), Err(DecodeError::Malformed("payload too short")));
    }

    #[test]
    fn long_error_messages_truncate_not_panic() {
        let long = "x".repeat(100_000);
        let frame = encode(&Message::Error {
            code: 1,
            message: long,
        });
        // Must still be decodable (truncated to u16::MAX bytes).
        let mut d = Decoder::new();
        d.extend(&frame);
        match d.next().unwrap() {
            Message::Error { message, .. } => assert_eq!(message.len(), 512),
            other => panic!("unexpected {other:?}"),
        }
    }
}
