//! The context-server wire protocol.
//!
//! A deliberately minimal binary protocol — the whole point of the §2.2.2
//! design is that the context traffic is tiny (one lookup and one report
//! per connection), so the protocol is a handful of fixed-layout frames:
//!
//! ```text
//! frame    := u32 length (big-endian, of everything after itself)
//!             u8 version (= 1)
//!             u8 type
//!             payload
//! LOOKUP   (1): u64 path
//! CONTEXT  (2): f64 utilization, f64 queue_ms, u32 competing
//! REPORT   (3): u64 path, u64 bytes, u64 duration_ns,
//!               f64 mean_rtt_ms, f64 min_rtt_ms, u32 retransmits, u32 timeouts
//! REPORT_OK(4): empty
//! ERROR    (5): u16 code, u16 len, utf-8 message
//! SNAPSHOT (6): u16 limit — dashboard query: the busiest paths
//! PATHS    (7): u16 count, count x (u64 path, f64 utilization,
//!               f64 queue_ms, u32 competing)
//! EPOCH_QUERY (8): empty — which epoch/role are you?
//! EPOCH    (9): u64 epoch, u8 role (1 = primary, 2 = backup)
//! REPLICATE(10): u64 epoch, u64 seq, u8 op tag, op payload
//!               (1 = LOOKUP: u64 path, u64 now_ns;
//!                2 = REPORT: u64 path, u64 now_ns, REPORT summary body)
//! SNAPSHOT_SYNC (11): u64 epoch, u32 len, len snapshot-blob bytes
//!               (blob format is versioned separately — see
//!               [`crate::context::ContextStore::encode_snapshot`])
//! BATCH_REPORT (12): u16 count, count x (u64 path, REPORT summary body)
//!               — many reports, one frame; answered by one REPORT_OK
//! BATCH_QUERY  (13): u16 count, count x u64 path — bulk read-only peek
//! BATCH_REPLY  (14): u16 count, count x (f64 utilization, f64 queue_ms,
//!               u32 competing), one per queried path in order
//! SHARD_SNAPSHOT_SYNC (15): u32 shard, u64 epoch, u32 len, len
//!               snapshot-blob bytes — SNAPSHOT_SYNC scoped to one shard
//!               of a sharded server, so a restarted backup can resync a
//!               multi-shard primary shard by shard
//! ```
//!
//! The batch frames are *additive*: codes 12–14 were unassigned before
//! they existed, and unknown type codes decode as the recoverable
//! [`DecodeError::BadType`], so a pre-batch peer skips them without
//! desynchronizing the stream. They amortize per-frame codec and syscall
//! cost the same way the REPLICATE delta stream does — the per-item cost
//! of a 256-item batch is the item body plus 1/256th of a frame header.
//!
//! Framing follows the length-prefix pattern: the decoder accumulates
//! bytes and yields complete messages, tolerating any fragmentation the
//! transport introduces.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use phi_tcp::hook::ContextSnapshot;

use crate::context::{FlowSummary, PathKey};

/// Protocol version this implementation speaks.
pub const VERSION: u8 = 1;

/// Upper bound on a frame's length field; anything larger is malformed.
pub const MAX_FRAME: usize = 64 * 1024;

const TYPE_LOOKUP: u8 = 1;
const TYPE_CONTEXT: u8 = 2;
const TYPE_REPORT: u8 = 3;
const TYPE_REPORT_OK: u8 = 4;
const TYPE_ERROR: u8 = 5;
const TYPE_SNAPSHOT: u8 = 6;
const TYPE_PATHS: u8 = 7;
const TYPE_EPOCH_QUERY: u8 = 8;
const TYPE_EPOCH: u8 = 9;
const TYPE_REPLICATE: u8 = 10;
const TYPE_SNAPSHOT_SYNC: u8 = 11;
const TYPE_BATCH_REPORT: u8 = 12;
const TYPE_BATCH_QUERY: u8 = 13;
const TYPE_BATCH_REPLY: u8 = 14;
const TYPE_SHARD_SNAPSHOT_SYNC: u8 = 15;

const OP_LOOKUP: u8 = 1;
const OP_REPORT: u8 = 2;

const ROLE_PRIMARY: u8 = 1;
const ROLE_BACKUP: u8 = 2;

/// Most paths a PATHS reply may carry (bounded by `MAX_FRAME`).
pub const MAX_SNAPSHOT_PATHS: usize = 1024;

/// Largest snapshot blob a SNAPSHOT_SYNC frame may carry; the rest of
/// the frame (length, version, type, epoch, blob length) needs 18 bytes.
pub const MAX_SNAPSHOT_BLOB: usize = MAX_FRAME - 18;

/// Largest snapshot blob a SHARD_SNAPSHOT_SYNC frame may carry; its
/// framing adds a u32 shard index on top of SNAPSHOT_SYNC's 18 bytes.
pub const MAX_SHARD_SNAPSHOT_BLOB: usize = MAX_FRAME - 22;

/// Most items any batch frame (BATCH_REPORT / BATCH_QUERY / BATCH_REPLY)
/// may carry. Sized by the fattest item: a BATCH_REPORT item is 48 bytes
/// (path + summary), so 1024 items is ~49 KB — comfortably inside
/// [`MAX_FRAME`]. Encoders truncate to this bound; decoders reject
/// counts beyond it as malformed.
pub const MAX_BATCH_ITEMS: usize = 1024;

/// Machine-readable codes carried by [`Message::Error`] frames.
///
/// The taxonomy mirrors HTTP where the analogy is exact, so codes stay
/// self-explanatory in traces: 4xx means "your frame was wrong, fix it
/// before retrying", 5xx means "the server cannot serve you right now,
/// back off". Clients treat [`code::OVERLOADED`] as a retryable failure
/// (the [`crate::server::ResilientClient`] backs off and may trip its
/// circuit breaker); all other codes poison nothing — the reply was a
/// well-formed frame and the connection stays usable.
pub mod code {
    use super::ErrorCode;

    /// The request was well-framed but semantically wrong (e.g. a reply
    /// type sent in the client → server direction).
    pub const BAD_REQUEST: u16 = ErrorCode::BadRequest.as_u16();
    /// The frame could not be decoded; the connection is dropped after
    /// this error is sent (framing state is unrecoverable).
    pub const MALFORMED: u16 = ErrorCode::Malformed.as_u16();
    /// The request reached a deposed primary (or a backup): its epoch is
    /// stale and its context must not be trusted. Clients drop the
    /// connection and fail over to the next endpoint.
    pub const FENCED: u16 = ErrorCode::Fenced.as_u16();
    /// The frame was well-formed but this server does not implement the
    /// requested operation (e.g. an unknown-but-well-framed message type,
    /// or a snapshot blob from a future format version). The connection
    /// stays usable.
    pub const UNSUPPORTED: u16 = ErrorCode::Unsupported.as_u16();
    /// The server is at its connection cap and sheds this connection
    /// before serving any request. Retry later, against another replica,
    /// or degrade to no context.
    pub const OVERLOADED: u16 = ErrorCode::Overloaded.as_u16();
}

/// The closed set of error codes a server may emit. The `u16` constants
/// in [`code`] are derived from this enum, and every accessor below is
/// an exhaustive `match` — adding a variant without extending each
/// mapping fails to compile, which is exactly the audit we want.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// 400 — well-framed but semantically wrong request.
    BadRequest,
    /// 409 — epoch fencing: the replica is deposed (or never primary).
    Fenced,
    /// 422 — undecodable frame; connection dropped after the error.
    Malformed,
    /// 501 — recognized framing, unimplemented operation or version.
    Unsupported,
    /// 503 — connection cap reached; shed before serving.
    Overloaded,
}

impl ErrorCode {
    /// Every defined code, for exhaustiveness tests and doc tables.
    pub const ALL: [ErrorCode; 5] = [
        ErrorCode::BadRequest,
        ErrorCode::Fenced,
        ErrorCode::Malformed,
        ErrorCode::Unsupported,
        ErrorCode::Overloaded,
    ];

    /// The stable on-wire value.
    pub const fn as_u16(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::Fenced => 409,
            ErrorCode::Malformed => 422,
            ErrorCode::Unsupported => 501,
            ErrorCode::Overloaded => 503,
        }
    }

    /// Parse an on-wire value; `None` for codes this build doesn't know
    /// (a *newer* peer may legitimately send one — treat as a generic,
    /// non-poisoning server error).
    pub const fn from_u16(code: u16) -> Option<ErrorCode> {
        match code {
            400 => Some(ErrorCode::BadRequest),
            409 => Some(ErrorCode::Fenced),
            422 => Some(ErrorCode::Malformed),
            501 => Some(ErrorCode::Unsupported),
            503 => Some(ErrorCode::Overloaded),
            _ => None,
        }
    }

    /// One-line human description, for traces and error messages.
    pub const fn description(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Fenced => "fenced: stale epoch",
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::Unsupported => "unsupported operation",
            ErrorCode::Overloaded => "overloaded",
        }
    }
}

/// Which side of the replication pair a server is currently playing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serves lookups/reports and streams deltas to backups.
    Primary,
    /// Applies replicated deltas; fences client requests with 409.
    Backup,
}

/// A replicated state mutation, exactly mirroring the two mutating
/// client requests so a backup's store replays the primary's history.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplOp {
    /// A sender registered on `path` at `now_ns`.
    Lookup {
        /// The path the sender registered on.
        path: PathKey,
        /// Server-side clock when the lookup was applied.
        now_ns: u64,
    },
    /// A sender on `path` finished and filed `summary` at `now_ns`.
    Report {
        /// The path the report is for.
        path: PathKey,
        /// Server-side clock when the report was applied.
        now_ns: u64,
        /// The finished flow's summary.
        summary: FlowSummary,
    },
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: what's the context for this path?
    Lookup {
        /// The path being asked about.
        path: PathKey,
    },
    /// Server → client: the context snapshot.
    Context(ContextSnapshot),
    /// Client → server: a finished connection's experience.
    Report {
        /// The path the connection used.
        path: PathKey,
        /// Its summary.
        summary: FlowSummary,
    },
    /// Server → client: report accepted.
    ReportOk,
    /// Either direction: something went wrong.
    Error {
        /// Machine-readable code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: the busiest `limit` paths, please (dashboard).
    Snapshot {
        /// Maximum paths to return.
        limit: u16,
    },
    /// Server → client: per-path contexts, busiest first.
    Paths(Vec<(PathKey, ContextSnapshot)>),
    /// Client → server: which epoch and role are you serving at?
    EpochQuery,
    /// Server → client: current epoch and role.
    Epoch {
        /// Monotonically increasing fencing token.
        epoch: u64,
        /// Primary or backup.
        role: Role,
    },
    /// Primary → backup: one state delta, fenced by epoch.
    Replicate {
        /// The primary's epoch; stale epochs are rejected with 409.
        epoch: u64,
        /// Position in the primary's replication log (strictly increasing).
        seq: u64,
        /// The mutation itself.
        op: ReplOp,
    },
    /// Primary → backup (or operator → restarted server): full state.
    SnapshotSync {
        /// The sender's epoch; stale epochs are rejected with 409.
        epoch: u64,
        /// Versioned snapshot blob — see
        /// [`crate::context::ContextStore::encode_snapshot`].
        blob: Vec<u8>,
    },
    /// Client → server: many finished connections in one frame. The
    /// server applies every item (in order) and answers with a single
    /// [`Message::ReportOk`], so a write-behind client pays one
    /// round-trip per flush instead of one per report.
    BatchReport(Vec<(PathKey, FlowSummary)>),
    /// Client → server: bulk read-only context query. Unlike
    /// [`Message::Lookup`], a batch query does *not* register competing
    /// flows — it is a monitoring/prefetch read, answered by one
    /// [`Message::BatchReply`] with snapshots in query order.
    BatchQuery(Vec<PathKey>),
    /// Server → client: one snapshot per queried path, in query order.
    BatchReply(Vec<ContextSnapshot>),
    /// Primary → backup (or operator → restarted server): full state of
    /// *one shard* of a sharded server. Additive (type 15, unassigned
    /// before it existed): an old decoder skips it with the recoverable
    /// [`DecodeError::BadType`] instead of desynchronizing — and a
    /// single-shard deployment keeps speaking plain
    /// [`Message::SnapshotSync`] so old backups stay syncable.
    ShardSnapshotSync {
        /// Which shard the blob belongs to; the receiver routes it by
        /// index and rejects out-of-range shards with 400.
        shard: u32,
        /// The sender's epoch; stale epochs are rejected with 409.
        epoch: u64,
        /// Versioned snapshot blob for that shard's store — same format
        /// as [`Message::SnapshotSync`].
        blob: Vec<u8>,
    },
}

/// Decoding failures. [`DecodeError::Incomplete`] just means "feed me
/// more bytes"; [`DecodeError::BadType`] is *recoverable* — the unknown
/// frame was well-delimited and fully consumed, so the decoder stays
/// aligned and the connection stays usable (forward compatibility with
/// newer peers). Everything else is fatal for the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough buffered bytes for a full frame yet.
    Incomplete,
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// Unknown message type. The frame is consumed whole; decoding may
    /// continue with the next frame.
    BadType(u8),
    /// Length field out of bounds or payload malformed.
    Malformed(&'static str),
}

impl DecodeError {
    /// `true` if the stream is still frame-aligned after this error and
    /// decoding may continue — i.e. the error names a frame we skipped,
    /// not a corrupted stream.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, DecodeError::BadType(_))
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "incomplete frame"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadType(t) => write!(f, "unknown message type {t}"),
            DecodeError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a message into a self-contained frame.
pub fn encode(msg: &Message) -> Bytes {
    let mut payload = BytesMut::with_capacity(64);
    payload.put_u8(VERSION);
    match msg {
        Message::Lookup { path } => {
            payload.put_u8(TYPE_LOOKUP);
            payload.put_u64(path.0);
        }
        Message::Context(c) => {
            payload.put_u8(TYPE_CONTEXT);
            payload.put_f64(c.utilization);
            payload.put_f64(c.queue_ms);
            payload.put_u32(c.competing);
        }
        Message::Report { path, summary } => {
            payload.put_u8(TYPE_REPORT);
            payload.put_u64(path.0);
            put_summary(&mut payload, summary);
        }
        Message::ReportOk => {
            payload.put_u8(TYPE_REPORT_OK);
        }
        Message::Snapshot { limit } => {
            payload.put_u8(TYPE_SNAPSHOT);
            payload.put_u16(*limit);
        }
        Message::Paths(paths) => {
            payload.put_u8(TYPE_PATHS);
            let n = paths.len().min(MAX_SNAPSHOT_PATHS);
            payload.put_u16(n as u16);
            for (key, ctx) in &paths[..n] {
                payload.put_u64(key.0);
                payload.put_f64(ctx.utilization);
                payload.put_f64(ctx.queue_ms);
                payload.put_u32(ctx.competing);
            }
        }
        Message::Error { code, message } => {
            payload.put_u8(TYPE_ERROR);
            payload.put_u16(*code);
            // Keep error frames small; 512 bytes of detail is plenty.
            let len = truncated_utf8_len(message, 512);
            payload.put_u16(len as u16);
            payload.put_slice(&message.as_bytes()[..len]);
        }
        Message::EpochQuery => {
            payload.put_u8(TYPE_EPOCH_QUERY);
        }
        Message::Epoch { epoch, role } => {
            payload.put_u8(TYPE_EPOCH);
            payload.put_u64(*epoch);
            payload.put_u8(match role {
                Role::Primary => ROLE_PRIMARY,
                Role::Backup => ROLE_BACKUP,
            });
        }
        Message::Replicate { epoch, seq, op } => {
            payload.put_u8(TYPE_REPLICATE);
            payload.put_u64(*epoch);
            payload.put_u64(*seq);
            match op {
                ReplOp::Lookup { path, now_ns } => {
                    payload.put_u8(OP_LOOKUP);
                    payload.put_u64(path.0);
                    payload.put_u64(*now_ns);
                }
                ReplOp::Report {
                    path,
                    now_ns,
                    summary,
                } => {
                    payload.put_u8(OP_REPORT);
                    payload.put_u64(path.0);
                    payload.put_u64(*now_ns);
                    put_summary(&mut payload, summary);
                }
            }
        }
        Message::SnapshotSync { epoch, blob } => {
            payload.put_u8(TYPE_SNAPSHOT_SYNC);
            payload.put_u64(*epoch);
            let len = blob.len().min(MAX_SNAPSHOT_BLOB);
            payload.put_u32(len as u32);
            payload.put_slice(&blob[..len]);
        }
        Message::BatchReport(items) => {
            payload.put_u8(TYPE_BATCH_REPORT);
            let n = items.len().min(MAX_BATCH_ITEMS);
            payload.put_u16(n as u16);
            for (path, summary) in &items[..n] {
                payload.put_u64(path.0);
                put_summary(&mut payload, summary);
            }
        }
        Message::BatchQuery(paths) => {
            payload.put_u8(TYPE_BATCH_QUERY);
            let n = paths.len().min(MAX_BATCH_ITEMS);
            payload.put_u16(n as u16);
            for path in &paths[..n] {
                payload.put_u64(path.0);
            }
        }
        Message::BatchReply(snaps) => {
            payload.put_u8(TYPE_BATCH_REPLY);
            let n = snaps.len().min(MAX_BATCH_ITEMS);
            payload.put_u16(n as u16);
            for ctx in &snaps[..n] {
                payload.put_f64(ctx.utilization);
                payload.put_f64(ctx.queue_ms);
                payload.put_u32(ctx.competing);
            }
        }
        Message::ShardSnapshotSync { shard, epoch, blob } => {
            payload.put_u8(TYPE_SHARD_SNAPSHOT_SYNC);
            payload.put_u32(*shard);
            payload.put_u64(*epoch);
            let len = blob.len().min(MAX_SHARD_SNAPSHOT_BLOB);
            payload.put_u32(len as u32);
            payload.put_slice(&blob[..len]);
        }
    }
    let mut frame = BytesMut::with_capacity(4 + payload.len());
    frame.put_u32(payload.len() as u32);
    frame.extend_from_slice(&payload);
    frame.freeze()
}

fn put_summary(payload: &mut BytesMut, s: &FlowSummary) {
    payload.put_u64(s.bytes);
    payload.put_u64(s.duration_ns);
    payload.put_f64(s.mean_rtt_ms);
    payload.put_f64(s.min_rtt_ms);
    payload.put_u32(s.retransmits);
    payload.put_u32(s.timeouts);
}

/// Byte size of an encoded [`FlowSummary`].
const SUMMARY_LEN: usize = 40;

fn get_summary(p: &mut BytesMut) -> FlowSummary {
    FlowSummary {
        bytes: p.get_u64(),
        duration_ns: p.get_u64(),
        mean_rtt_ms: p.get_f64(),
        min_rtt_ms: p.get_f64(),
        retransmits: p.get_u32(),
        timeouts: p.get_u32(),
    }
}

/// Longest prefix length ≤ `max` that ends on a UTF-8 boundary.
fn truncated_utf8_len(s: &str, max: usize) -> usize {
    if s.len() <= max {
        return s.len();
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    end
}

/// Streaming decoder: feed bytes with [`Decoder::extend`], pull messages
/// with [`Decoder::next`].
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Append raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Message, DecodeError> {
        if self.buf.len() < 4 {
            return Err(DecodeError::Incomplete);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if !(2..=MAX_FRAME).contains(&len) {
            return Err(DecodeError::Malformed("length out of bounds"));
        }
        if self.buf.len() < 4 + len {
            return Err(DecodeError::Incomplete);
        }
        self.buf.advance(4);
        let mut payload = self.buf.split_to(len);
        decode_payload(&mut payload)
    }
}

fn decode_payload(p: &mut BytesMut) -> Result<Message, DecodeError> {
    let version = p.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let ty = p.get_u8();
    macro_rules! need {
        ($n:expr) => {
            if p.remaining() < $n {
                return Err(DecodeError::Malformed("payload too short"));
            }
        };
    }
    match ty {
        TYPE_LOOKUP => {
            need!(8);
            Ok(Message::Lookup {
                path: PathKey(p.get_u64()),
            })
        }
        TYPE_CONTEXT => {
            need!(20);
            Ok(Message::Context(ContextSnapshot {
                utilization: p.get_f64(),
                queue_ms: p.get_f64(),
                competing: p.get_u32(),
            }))
        }
        TYPE_REPORT => {
            need!(8 + SUMMARY_LEN);
            Ok(Message::Report {
                path: PathKey(p.get_u64()),
                summary: get_summary(p),
            })
        }
        TYPE_REPORT_OK => Ok(Message::ReportOk),
        TYPE_SNAPSHOT => {
            need!(2);
            Ok(Message::Snapshot { limit: p.get_u16() })
        }
        TYPE_PATHS => {
            need!(2);
            let n = p.get_u16() as usize;
            if n > MAX_SNAPSHOT_PATHS {
                return Err(DecodeError::Malformed("too many paths"));
            }
            need!(n * 28);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push((
                    PathKey(p.get_u64()),
                    ContextSnapshot {
                        utilization: p.get_f64(),
                        queue_ms: p.get_f64(),
                        competing: p.get_u32(),
                    },
                ));
            }
            Ok(Message::Paths(out))
        }
        TYPE_ERROR => {
            need!(4);
            let code = p.get_u16();
            let len = p.get_u16() as usize;
            need!(len);
            let raw = p.split_to(len);
            let message = String::from_utf8(raw.to_vec())
                .map_err(|_| DecodeError::Malformed("error message not utf-8"))?;
            Ok(Message::Error { code, message })
        }
        TYPE_EPOCH_QUERY => Ok(Message::EpochQuery),
        TYPE_EPOCH => {
            need!(9);
            let epoch = p.get_u64();
            let role = match p.get_u8() {
                ROLE_PRIMARY => Role::Primary,
                ROLE_BACKUP => Role::Backup,
                _ => return Err(DecodeError::Malformed("unknown role")),
            };
            Ok(Message::Epoch { epoch, role })
        }
        TYPE_REPLICATE => {
            need!(17);
            let epoch = p.get_u64();
            let seq = p.get_u64();
            let op = match p.get_u8() {
                OP_LOOKUP => {
                    need!(16);
                    ReplOp::Lookup {
                        path: PathKey(p.get_u64()),
                        now_ns: p.get_u64(),
                    }
                }
                OP_REPORT => {
                    need!(16 + SUMMARY_LEN);
                    ReplOp::Report {
                        path: PathKey(p.get_u64()),
                        now_ns: p.get_u64(),
                        summary: get_summary(p),
                    }
                }
                _ => return Err(DecodeError::Malformed("unknown replication op")),
            };
            Ok(Message::Replicate { epoch, seq, op })
        }
        TYPE_SNAPSHOT_SYNC => {
            need!(12);
            let epoch = p.get_u64();
            let len = p.get_u32() as usize;
            if len > MAX_SNAPSHOT_BLOB {
                return Err(DecodeError::Malformed("snapshot blob too large"));
            }
            need!(len);
            let blob = p.split_to(len).to_vec();
            Ok(Message::SnapshotSync { epoch, blob })
        }
        TYPE_BATCH_REPORT => {
            need!(2);
            let n = p.get_u16() as usize;
            if n > MAX_BATCH_ITEMS {
                return Err(DecodeError::Malformed("batch too large"));
            }
            need!(n * (8 + SUMMARY_LEN));
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push((PathKey(p.get_u64()), get_summary(p)));
            }
            Ok(Message::BatchReport(items))
        }
        TYPE_BATCH_QUERY => {
            need!(2);
            let n = p.get_u16() as usize;
            if n > MAX_BATCH_ITEMS {
                return Err(DecodeError::Malformed("batch too large"));
            }
            need!(n * 8);
            let mut paths = Vec::with_capacity(n);
            for _ in 0..n {
                paths.push(PathKey(p.get_u64()));
            }
            Ok(Message::BatchQuery(paths))
        }
        TYPE_BATCH_REPLY => {
            need!(2);
            let n = p.get_u16() as usize;
            if n > MAX_BATCH_ITEMS {
                return Err(DecodeError::Malformed("batch too large"));
            }
            need!(n * 20);
            let mut snaps = Vec::with_capacity(n);
            for _ in 0..n {
                snaps.push(ContextSnapshot {
                    utilization: p.get_f64(),
                    queue_ms: p.get_f64(),
                    competing: p.get_u32(),
                });
            }
            Ok(Message::BatchReply(snaps))
        }
        TYPE_SHARD_SNAPSHOT_SYNC => {
            need!(16);
            let shard = p.get_u32();
            let epoch = p.get_u64();
            let len = p.get_u32() as usize;
            if len > MAX_SHARD_SNAPSHOT_BLOB {
                return Err(DecodeError::Malformed("snapshot blob too large"));
            }
            need!(len);
            let blob = p.split_to(len).to_vec();
            Ok(Message::ShardSnapshotSync { shard, epoch, blob })
        }
        other => Err(DecodeError::BadType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode(&msg);
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next().unwrap(), msg);
        assert_eq!(d.next(), Err(DecodeError::Incomplete));
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Lookup { path: PathKey(42) });
        roundtrip(Message::Context(ContextSnapshot {
            utilization: 0.73,
            queue_ms: 12.25,
            competing: 17,
        }));
        roundtrip(Message::Report {
            path: PathKey(u64::MAX),
            summary: FlowSummary {
                bytes: 123_456_789,
                duration_ns: 2_500_000_000,
                mean_rtt_ms: 163.5,
                min_rtt_ms: 150.0,
                retransmits: 7,
                timeouts: 1,
            },
        });
        roundtrip(Message::ReportOk);
        roundtrip(Message::Snapshot { limit: 10 });
        roundtrip(Message::Paths(vec![
            (
                PathKey(1),
                ContextSnapshot {
                    utilization: 0.9,
                    queue_ms: 40.0,
                    competing: 12,
                },
            ),
            (
                PathKey(2),
                ContextSnapshot {
                    utilization: 0.1,
                    queue_ms: 0.5,
                    competing: 0,
                },
            ),
        ]));
        roundtrip(Message::Paths(Vec::new()));
        roundtrip(Message::Error {
            code: 404,
            message: "no such path".into(),
        });
        roundtrip(Message::EpochQuery);
        roundtrip(Message::Epoch {
            epoch: 7,
            role: Role::Primary,
        });
        roundtrip(Message::Epoch {
            epoch: u64::MAX,
            role: Role::Backup,
        });
        roundtrip(Message::Replicate {
            epoch: 3,
            seq: 1_000_000,
            op: ReplOp::Lookup {
                path: PathKey(9),
                now_ns: 123_456,
            },
        });
        roundtrip(Message::Replicate {
            epoch: 3,
            seq: 1_000_001,
            op: ReplOp::Report {
                path: PathKey(9),
                now_ns: 223_456,
                summary: FlowSummary {
                    bytes: 42,
                    duration_ns: 77,
                    mean_rtt_ms: 1.5,
                    min_rtt_ms: 1.0,
                    retransmits: 2,
                    timeouts: 0,
                },
            },
        });
        roundtrip(Message::SnapshotSync {
            epoch: 12,
            blob: vec![0xAB; 1024],
        });
        roundtrip(Message::SnapshotSync {
            epoch: 13,
            blob: Vec::new(),
        });
        roundtrip(Message::ShardSnapshotSync {
            shard: 3,
            epoch: 12,
            blob: vec![0xCD; 1024],
        });
        roundtrip(Message::ShardSnapshotSync {
            shard: u32::MAX,
            epoch: 0,
            blob: Vec::new(),
        });
        roundtrip(Message::BatchReport(vec![
            (
                PathKey(5),
                FlowSummary {
                    bytes: 1_000,
                    duration_ns: 2_000,
                    mean_rtt_ms: 3.5,
                    min_rtt_ms: 3.0,
                    retransmits: 1,
                    timeouts: 0,
                },
            ),
            (
                PathKey(6),
                FlowSummary {
                    bytes: 9_999,
                    duration_ns: 8_888,
                    mean_rtt_ms: 7.5,
                    min_rtt_ms: 7.0,
                    retransmits: 0,
                    timeouts: 2,
                },
            ),
        ]));
        roundtrip(Message::BatchReport(Vec::new()));
        roundtrip(Message::BatchQuery(vec![PathKey(1), PathKey(u64::MAX)]));
        roundtrip(Message::BatchQuery(Vec::new()));
        roundtrip(Message::BatchReply(vec![
            ContextSnapshot {
                utilization: 0.25,
                queue_ms: 3.0,
                competing: 4,
            },
            ContextSnapshot {
                utilization: 0.0,
                queue_ms: 0.0,
                competing: 0,
            },
        ]));
        roundtrip(Message::BatchReply(Vec::new()));
    }

    #[test]
    fn full_size_batches_roundtrip_within_frame_bound() {
        let summary = FlowSummary {
            bytes: 1,
            duration_ns: 2,
            mean_rtt_ms: 3.0,
            min_rtt_ms: 4.0,
            retransmits: 5,
            timeouts: 6,
        };
        let report = Message::BatchReport(
            (0..MAX_BATCH_ITEMS as u64)
                .map(|i| (PathKey(i), summary))
                .collect(),
        );
        assert!(
            encode(&report).len() <= 4 + MAX_FRAME,
            "batch overflows a frame"
        );
        roundtrip(report);
        roundtrip(Message::BatchQuery(
            (0..MAX_BATCH_ITEMS as u64).map(PathKey).collect(),
        ));
        roundtrip(Message::BatchReply(
            (0..MAX_BATCH_ITEMS)
                .map(|i| ContextSnapshot {
                    utilization: (i % 100) as f64 / 100.0,
                    queue_ms: i as f64,
                    competing: i as u32,
                })
                .collect(),
        ));
    }

    #[test]
    fn over_cap_batches_truncate_on_encode_and_reject_on_decode() {
        // Encoding clamps to the cap, like PATHS does.
        let query = Message::BatchQuery((0..2 * MAX_BATCH_ITEMS as u64).map(PathKey).collect());
        let mut d = Decoder::new();
        d.extend(&encode(&query));
        match d.next().unwrap() {
            Message::BatchQuery(paths) => assert_eq!(paths.len(), MAX_BATCH_ITEMS),
            other => panic!("unexpected {other:?}"),
        }
        // A hand-built frame claiming more items than the cap is rejected
        // before any allocation proportional to the claim.
        for ty in [TYPE_BATCH_REPORT, TYPE_BATCH_QUERY, TYPE_BATCH_REPLY] {
            let mut frame = BytesMut::new();
            frame.put_u32(2 + 2);
            frame.put_u8(VERSION);
            frame.put_u8(ty);
            frame.put_u16(MAX_BATCH_ITEMS as u16 + 1);
            let mut d = Decoder::new();
            d.extend(&frame);
            assert_eq!(d.next(), Err(DecodeError::Malformed("batch too large")));
        }
    }

    #[test]
    fn truncated_batch_payload_rejected() {
        // Claim 3 report items but supply only 2: the honest length
        // header makes this a complete frame whose payload ends early.
        let mut frame = BytesMut::new();
        frame.put_u32(2 + 2 + 2 * 48);
        frame.put_u8(VERSION);
        frame.put_u8(TYPE_BATCH_REPORT);
        frame.put_u16(3);
        frame.put_slice(&[0u8; 2 * 48]);
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next(), Err(DecodeError::Malformed("payload too short")));
    }

    #[test]
    fn batch_frames_skip_cleanly_on_a_pre_batch_decoder() {
        // A pre-batch decoder is this decoder with types 12–14 unassigned.
        // Its skip path never inspects the payload — it consumes `len`
        // bytes and reports the recoverable BadType — so rewriting a real
        // batch frame's type byte to a still-unassigned code reproduces
        // exactly what an old peer does with a batch frame: skip it whole
        // and keep decoding the pipelined traffic behind it.
        let batch = Message::BatchReport(vec![(
            PathKey(3),
            FlowSummary {
                bytes: 10,
                duration_ns: 20,
                mean_rtt_ms: 1.0,
                min_rtt_ms: 0.5,
                retransmits: 0,
                timeouts: 0,
            },
        )]);
        for original in [
            batch,
            Message::BatchQuery(vec![PathKey(1), PathKey(2)]),
            Message::BatchReply(vec![ContextSnapshot {
                utilization: 0.5,
                queue_ms: 1.0,
                competing: 2,
            }]),
        ] {
            let mut frame = BytesMut::from(&encode(&original)[..]);
            frame[5] = 16; // first type code not assigned in this build
            let mut d = Decoder::new();
            d.extend(&frame);
            d.extend(&encode(&Message::ReportOk));
            let err = d.next().unwrap_err();
            assert_eq!(err, DecodeError::BadType(16));
            assert!(err.is_recoverable(), "old peers must survive batch frames");
            assert_eq!(d.next().unwrap(), Message::ReportOk, "stream desynced");
            assert_eq!(d.next(), Err(DecodeError::Incomplete));
        }
    }

    #[test]
    fn error_code_mappings_are_exhaustive_and_stable() {
        // Exhaustive match: adding an `ErrorCode` variant without
        // extending this test (and the `ALL` table) fails to compile.
        for c in ErrorCode::ALL {
            let expected = match c {
                ErrorCode::BadRequest => 400,
                ErrorCode::Fenced => 409,
                ErrorCode::Malformed => 422,
                ErrorCode::Unsupported => 501,
                ErrorCode::Overloaded => 503,
            };
            assert_eq!(c.as_u16(), expected);
            assert_eq!(ErrorCode::from_u16(c.as_u16()), Some(c));
            assert!(!c.description().is_empty());
        }
        // The wire constants are derived from the enum.
        assert_eq!(code::BAD_REQUEST, 400);
        assert_eq!(code::FENCED, 409);
        assert_eq!(code::MALFORMED, 422);
        assert_eq!(code::UNSUPPORTED, 501);
        assert_eq!(code::OVERLOADED, 503);
        // Unknown codes parse to None, never panic.
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(599), None);
    }

    #[test]
    fn unknown_frame_type_is_recoverable() {
        // A well-delimited frame of an unknown (future) type must not
        // desync the stream: the decoder reports BadType, consumes the
        // frame whole, and yields the next pipelined message intact.
        let mut stream = Vec::new();
        let mut unknown = BytesMut::new();
        unknown.put_u32(2 + 11); // version + type + 11 payload bytes
        unknown.put_u8(VERSION);
        unknown.put_u8(200); // type from the future
        unknown.put_slice(&[0xEE; 11]);
        stream.extend_from_slice(&unknown);
        stream.extend_from_slice(&encode(&Message::ReportOk));
        let mut d = Decoder::new();
        d.extend(&stream);
        let err = d.next().unwrap_err();
        assert_eq!(err, DecodeError::BadType(200));
        assert!(err.is_recoverable());
        assert_eq!(d.next().unwrap(), Message::ReportOk);
        assert_eq!(d.next(), Err(DecodeError::Incomplete));
    }

    #[test]
    fn fatal_decode_errors_are_not_recoverable() {
        assert!(!DecodeError::Incomplete.is_recoverable());
        assert!(!DecodeError::BadVersion(9).is_recoverable());
        assert!(!DecodeError::Malformed("x").is_recoverable());
    }

    #[test]
    fn oversized_snapshot_blob_rejected() {
        // Hand-build a SNAPSHOT_SYNC whose blob-length field exceeds the
        // bound; must be a clean typed error.
        let mut frame = BytesMut::new();
        frame.put_u32(2 + 12);
        frame.put_u8(VERSION);
        frame.put_u8(11); // TYPE_SNAPSHOT_SYNC
        frame.put_u64(1); // epoch
        frame.put_u32(MAX_FRAME as u32); // blob length: too large
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(
            d.next(),
            Err(DecodeError::Malformed("snapshot blob too large"))
        );
    }

    #[test]
    fn oversized_shard_snapshot_blob_rejected() {
        // Same bound check as SNAPSHOT_SYNC, with the shard index's 4
        // extra bytes of framing accounted for.
        let mut frame = BytesMut::new();
        frame.put_u32(2 + 16);
        frame.put_u8(VERSION);
        frame.put_u8(TYPE_SHARD_SNAPSHOT_SYNC);
        frame.put_u32(0); // shard
        frame.put_u64(1); // epoch
        frame.put_u32(MAX_FRAME as u32); // blob length: too large
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(
            d.next(),
            Err(DecodeError::Malformed("snapshot blob too large"))
        );
    }

    #[test]
    fn shard_snapshot_sync_keeps_the_stream_aligned() {
        // The new frame is well-delimited like every other: pipelined
        // traffic behind it decodes intact. (An *old* peer skips it as
        // recoverable BadType — the `frame[5] = 16` rewrite in
        // `batch_frames_skip_cleanly_on_a_pre_batch_decoder` pins that
        // exact mechanism for codes a build doesn't know.)
        let frame = encode(&Message::ShardSnapshotSync {
            shard: 2,
            epoch: 9,
            blob: vec![0x11; 64],
        });
        let mut d = Decoder::new();
        d.extend(&frame);
        d.extend(&encode(&Message::ReportOk));
        match d.next() {
            Ok(Message::ShardSnapshotSync { shard, epoch, blob }) => {
                assert_eq!((shard, epoch, blob.len()), (2, 9, 64));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.next().unwrap(), Message::ReportOk);
    }

    #[test]
    fn decoder_handles_fragmentation() {
        let frame = encode(&Message::Lookup { path: PathKey(7) });
        let mut d = Decoder::new();
        for chunk in frame.chunks(3) {
            if d.buffered() + chunk.len() < frame.len() {
                d.extend(chunk);
                assert_eq!(d.next(), Err(DecodeError::Incomplete));
            } else {
                d.extend(chunk);
            }
        }
        assert_eq!(d.next().unwrap(), Message::Lookup { path: PathKey(7) });
    }

    #[test]
    fn decoder_handles_pipelined_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode(&Message::Lookup { path: PathKey(1) }));
        stream.extend_from_slice(&encode(&Message::ReportOk));
        stream.extend_from_slice(&encode(&Message::Lookup { path: PathKey(2) }));
        let mut d = Decoder::new();
        d.extend(&stream);
        assert_eq!(d.next().unwrap(), Message::Lookup { path: PathKey(1) });
        assert_eq!(d.next().unwrap(), Message::ReportOk);
        assert_eq!(d.next().unwrap(), Message::Lookup { path: PathKey(2) });
        assert_eq!(d.next(), Err(DecodeError::Incomplete));
    }

    #[test]
    fn bad_version_rejected() {
        let mut frame = BytesMut::from(&encode(&Message::ReportOk)[..]);
        frame[4] = 9; // version byte
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next(), Err(DecodeError::BadVersion(9)));
    }

    #[test]
    fn bad_type_rejected() {
        let mut frame = BytesMut::from(&encode(&Message::ReportOk)[..]);
        frame[5] = 99; // type byte
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next(), Err(DecodeError::BadType(99)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut d = Decoder::new();
        d.extend(&(MAX_FRAME as u32 + 1).to_be_bytes());
        d.extend(&[VERSION, TYPE_REPORT_OK]);
        assert_eq!(
            d.next(),
            Err(DecodeError::Malformed("length out of bounds"))
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        // Claim a LOOKUP but supply only 4 of its 8 path bytes.
        let mut frame = BytesMut::new();
        frame.put_u32(2 + 4);
        frame.put_u8(VERSION);
        frame.put_u8(TYPE_LOOKUP);
        frame.put_u32(1);
        let mut d = Decoder::new();
        d.extend(&frame);
        assert_eq!(d.next(), Err(DecodeError::Malformed("payload too short")));
    }

    #[test]
    fn long_error_messages_truncate_not_panic() {
        let long = "x".repeat(100_000);
        let frame = encode(&Message::Error {
            code: 1,
            message: long,
        });
        // Must still be decodable (truncated to u16::MAX bytes).
        let mut d = Decoder::new();
        d.extend(&frame);
        match d.next().unwrap() {
            Message::Error { message, .. } => assert_eq!(message.len(), 512),
            other => panic!("unexpected {other:?}"),
        }
    }
}
