//! Supervised, resumable sweep execution.
//!
//! Ties the three robustness layers together into one front door for
//! long parameter sweeps:
//!
//! * **Panic isolation** — each cell runs under
//!   [`RunPool::run_supervised`]: a panicking run is retried with the
//!   *same* seed (a deterministic simulator must fail identically; a
//!   diverging retry is flagged as a determinism bug) and quarantined
//!   after the retry budget, without sinking healthy sibling cells.
//! * **Run budgets** — a cell whose spec carries an
//!   [`ExperimentSpec::budget`] terminates gracefully at its cap; the
//!   partial result is kept, tagged, and **excluded from aggregation**
//!   (the same discipline [`RunMetrics::from_reports`] applies to
//!   aborted flows: partial data must not poison the means the paper
//!   plots).
//! * **Durable journal** — every *completed* cell is appended to a
//!   [`Journal`] before the sweep moves on; an interrupted sweep
//!   resumes by replaying the journal and re-running only the missing
//!   cells. Replayed metrics are bit-exact (f64s round-trip via
//!   `to_bits`), so the [`SweepReport::fingerprint`] of a resumed sweep
//!   equals that of an uninterrupted one — for any `PHI_JOBS` worker
//!   count, since cells are index-addressed either way.
//!
//! Terminated and quarantined cells are deliberately *not* journaled:
//! on resume they run again, so a transient cause (a wall-clock budget
//! on a loaded machine, an environmental panic) gets a fresh chance
//! while a deterministic one reproduces evidence.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use phi_sim::engine::BudgetExceeded;
use phi_tcp::report::RunMetrics;

use crate::harness::{run_experiment, ExperimentSpec, ProvisionCtx, Provisioned, RunResult};
use crate::journal::{fnv1a, Journal, RunRecord};
use crate::runpool::{derive_seed, RunFailure, RunOutcome, RunPool};

/// How a supervised sweep runs its cells.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Same-seed retries per panicking cell before quarantine. `0`
    /// quarantines on the first panic; the retry exists to distinguish
    /// deterministic failures (identical replay) from environmental
    /// ones, not to paper over bugs.
    pub retries: u32,
    /// Journal path. `None` runs unjournaled (no resume); `Some` opens
    /// or creates the journal, replays completed cells, and appends
    /// each newly completed cell durably.
    pub journal: Option<PathBuf>,
}

impl SupervisorConfig {
    /// No retries, no journal — supervision is then just panic
    /// isolation.
    pub fn new() -> Self {
        SupervisorConfig::default()
    }

    /// Set the same-seed retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Journal completed cells to `path` and resume from it if present.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }
}

/// Hash of a sweep's base spec, used to key journal records so a
/// journal replayed against a *different* sweep configuration is
/// ignored rather than trusted. Hashing the `Debug` rendering keeps
/// every spec field in scope without a serializer dependency; any
/// field change (including a new defaulted field) re-keys the sweep,
/// which errs on the side of re-running.
pub fn spec_hash(spec: &ExperimentSpec) -> u64 {
    fnv1a(format!("{spec:?}").as_bytes())
}

/// One cell that ran to its deadline (or was replayed from the journal).
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedCell {
    /// Cell index in `0..cells`.
    pub index: usize,
    /// The derived seed the cell executed with.
    pub seed: u64,
    /// Events the engine dispatched.
    pub events: u64,
    /// The cell's metrics.
    pub metrics: RunMetrics,
    /// FNV-1a fingerprint of the cell's journal record — identical
    /// whether the cell ran fresh or was replayed.
    pub fingerprint: u64,
    /// `true` if this cell was replayed from the journal instead of
    /// executed.
    pub resumed: bool,
}

/// One cell cut short by its run budget: partial data, kept for
/// inspection, excluded from aggregation, not journaled (it re-runs on
/// resume).
#[derive(Debug, Clone, PartialEq)]
pub struct TerminatedCell {
    /// Cell index in `0..cells`.
    pub index: usize,
    /// The derived seed the cell executed with.
    pub seed: u64,
    /// Which budget cap hit.
    pub reason: BudgetExceeded,
    /// Metrics over the portion simulated before the cap.
    pub metrics: RunMetrics,
}

/// What a supervised sweep produced.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Total cells the sweep was asked to run.
    pub cells: usize,
    /// [`spec_hash`] of the base spec (what journal records are keyed
    /// by).
    pub spec_hash: u64,
    /// Cells that completed (fresh or resumed), in index order.
    pub completed: Vec<CompletedCell>,
    /// Cells terminated by their run budget, in index order.
    pub terminated: Vec<TerminatedCell>,
    /// Cells whose every attempt panicked, in index order.
    pub quarantined: Vec<RunFailure>,
    /// Failure records of cells that panicked and then *succeeded* on a
    /// same-seed retry — each one is evidence of nondeterminism and
    /// deserves a bug report even though the cell's result is kept.
    pub flaky: Vec<RunFailure>,
    /// Journal append errors (I/O problems journaling a completed
    /// cell). Non-fatal: the sweep's results are unaffected, but the
    /// affected cells will re-run on resume.
    pub journal_errors: Vec<String>,
}

impl SweepReport {
    /// Mean metrics over the **completed** cells only.
    ///
    /// Terminated and quarantined cells are excluded by construction —
    /// the sweep-level mirror of [`RunMetrics::from_reports`] excluding
    /// aborted flows from its means: partial or absent data must not
    /// drag averages toward zero. `None` when no cell completed.
    pub fn mean_metrics(&self) -> Option<RunMetrics> {
        if self.completed.is_empty() {
            return None;
        }
        let metrics: Vec<RunMetrics> = self.completed.iter().map(|c| c.metrics.clone()).collect();
        Some(RunMetrics::mean_of(&metrics))
    }

    /// FNV-1a digest over the completed cells' `(index, fingerprint)`
    /// pairs in index order: the sweep's bit-identity witness. Equal
    /// across worker counts and across kill-and-resume.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.completed.len() * 16);
        for c in &self.completed {
            bytes.extend_from_slice(&(c.index as u64).to_le_bytes());
            bytes.extend_from_slice(&c.fingerprint.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// `true` when nothing went wrong: every cell completed, no panics
    /// (not even flaky ones), no journal trouble.
    pub fn is_clean(&self) -> bool {
        self.completed.len() == self.cells
            && self.quarantined.is_empty()
            && self.flaky.is_empty()
            && self.journal_errors.is_empty()
    }
}

fn completed_cell(index: usize, rec: RunRecord, resumed: bool) -> CompletedCell {
    CompletedCell {
        index,
        seed: rec.seed,
        events: rec.events,
        fingerprint: rec.fingerprint(),
        metrics: rec.metrics,
        resumed,
    }
}

/// What one supervised cell produced, before report folding.
enum Cell {
    Resumed(RunRecord),
    Fresh(RunRecord),
    Terminated {
        seed: u64,
        reason: BudgetExceeded,
        metrics: RunMetrics,
    },
}

/// Run `n` cells of `spec` under supervision on `pool`; cell `i` runs
/// `run(i, spec-with-seed-i)` where the seed is
/// [`derive_seed`]`(spec.seed, i)` — the same addressing as
/// [`crate::harness::run_repeated_on`], so supervision changes *what
/// survives*, never *what runs*.
///
/// The only fallible part is opening the journal; everything after —
/// panics, budget terminations, even journal append errors — is
/// captured in the [`SweepReport`] instead of aborting the sweep.
pub fn run_supervised_with<F>(
    pool: &RunPool,
    spec: &ExperimentSpec,
    n: usize,
    cfg: &SupervisorConfig,
    run: F,
) -> io::Result<SweepReport>
where
    F: Fn(usize, &ExperimentSpec) -> RunResult + Sync,
{
    let hash = spec_hash(spec);
    let (journal, replay) = match &cfg.journal {
        Some(path) => {
            let (journal, recovery) = Journal::open(path)?;
            let mut map = HashMap::new();
            for rec in recovery.records {
                if rec.spec_hash == hash {
                    map.insert(rec.run_index, rec);
                }
            }
            (Some(Mutex::new(journal)), map)
        }
        None => (None, HashMap::new()),
    };
    let journal_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

    let outcomes = pool.run_supervised(n, cfg.retries, |i| {
        if let Some(rec) = replay.get(&(i as u64)) {
            return Cell::Resumed(rec.clone());
        }
        let mut s = spec.clone();
        s.seed = derive_seed(spec.seed, i as u64);
        let result = run(i, &s);
        if let Some(reason) = result.terminated {
            return Cell::Terminated {
                seed: s.seed,
                reason,
                metrics: result.metrics,
            };
        }
        let record = RunRecord {
            run_index: i as u64,
            seed: s.seed,
            spec_hash: hash,
            events: result.events,
            metrics: result.metrics,
        };
        if let Some(journal) = &journal {
            // A poisoned mutex here can only mean a sibling panicked
            // while appending; recover the inner journal and keep
            // going — losing durability for one cell beats losing the
            // sweep.
            let mut journal = journal.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = journal.append(&record) {
                journal_errors
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(format!("cell {i}: {e}"));
            }
        }
        Cell::Fresh(record)
    });

    let mut report = SweepReport {
        cells: n,
        spec_hash: hash,
        ..SweepReport::default()
    };
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let cell = match outcome {
            RunOutcome::Done(cell) => cell,
            RunOutcome::Flaky { value, failure } => {
                report.flaky.push(failure);
                value
            }
            RunOutcome::Quarantined(failure) => {
                report.quarantined.push(failure);
                continue;
            }
        };
        match cell {
            Cell::Resumed(rec) => report.completed.push(completed_cell(i, rec, true)),
            Cell::Fresh(rec) => report.completed.push(completed_cell(i, rec, false)),
            Cell::Terminated {
                seed,
                reason,
                metrics,
            } => report.terminated.push(TerminatedCell {
                index: i,
                seed,
                reason,
                metrics,
            }),
        }
    }
    report.journal_errors = journal_errors
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    Ok(report)
}

/// [`run_supervised_with`] over the standard experiment runner: the
/// supervised counterpart of [`crate::harness::run_repeated_on`].
pub fn run_repeated_supervised(
    pool: &RunPool,
    spec: &ExperimentSpec,
    n: usize,
    cfg: &SupervisorConfig,
    provision: impl Fn(ProvisionCtx<'_>) -> Provisioned + Sync,
) -> io::Result<SweepReport> {
    run_supervised_with(pool, spec, n, cfg, |_, s| run_experiment(s, &provision))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextStore, StoreConfig};
    use phi_sim::engine::SchedStats;

    fn fake_metrics(i: usize) -> RunMetrics {
        RunMetrics {
            throughput_mbps: 1.0 + i as f64,
            queueing_delay_ms: 40.0,
            loss_rate: 0.01,
            mean_rtt_ms: 163.0,
            utilization: 0.7,
            flows_completed: 5,
            flows_aborted: 0,
            bytes: 1_000_000,
        }
    }

    fn fake_result(i: usize, terminated: Option<BudgetExceeded>) -> RunResult {
        RunResult {
            metrics: fake_metrics(i),
            per_sender: Vec::new(),
            partials: Vec::new(),
            base_rtt_ms: 150.0,
            store: ContextStore::new(StoreConfig::default()),
            events: 1_000 + i as u64,
            sched: SchedStats::default(),
            ha: None,
            ha_shards: None,
            terminated,
            switch_stats: None,
        }
    }

    fn base_spec() -> ExperimentSpec {
        ExperimentSpec::new(
            2,
            phi_workload::OnOffConfig {
                mean_on_bytes: 100_000.0,
                mean_off_secs: 0.5,
                deterministic: false,
            },
            phi_sim::time::Dur::from_secs(1),
            7,
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("phi-supervise-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn quarantined_cells_do_not_sink_or_skew_the_sweep() {
        let pool = RunPool::new(4);
        let spec = base_spec();
        let report = run_supervised_with(&pool, &spec, 6, &SupervisorConfig::new(), |i, _| {
            if i == 3 {
                panic!("cell 3 always dies");
            }
            fake_result(i, None)
        })
        .expect("no journal, no io");
        assert_eq!(report.completed.len(), 5);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].index, 3);
        assert!(!report.quarantined[0].diverged, "same panic every attempt");
        // Mean covers exactly the five completed cells: 1+(1..=5 minus 3).
        let mean = report.mean_metrics().expect("some cells completed");
        let expect = (1.0 + 2.0 + 3.0 + 5.0 + 6.0) / 5.0;
        assert!((mean.throughput_mbps - expect).abs() < 1e-12);
        assert!(!report.is_clean());
    }

    #[test]
    fn terminated_cells_are_kept_but_excluded_from_means() {
        let pool = RunPool::serial();
        let spec = base_spec();
        let report = run_supervised_with(&pool, &spec, 4, &SupervisorConfig::new(), |i, _| {
            let reason = (i == 1).then_some(BudgetExceeded::Events);
            fake_result(i, reason)
        })
        .expect("no journal, no io");
        assert_eq!(report.completed.len(), 3);
        assert_eq!(report.terminated.len(), 1);
        assert_eq!(report.terminated[0].reason, BudgetExceeded::Events);
        let mean = report.mean_metrics().expect("cells completed");
        let expect = (1.0 + 3.0 + 4.0) / 3.0;
        assert!((mean.throughput_mbps - expect).abs() < 1e-12);
    }

    #[test]
    fn resume_replays_from_journal_without_re_running() {
        let path = tmp("resume.jnl");
        std::fs::remove_file(&path).ok();
        let pool = RunPool::new(2);
        let spec = base_spec();
        let cfg = SupervisorConfig::new().with_journal(&path);
        let first = run_supervised_with(&pool, &spec, 5, &cfg, |i, _| fake_result(i, None))
            .expect("journal open");
        assert!(first.is_clean());
        // Second pass: the run closure must never fire — every cell is
        // in the journal.
        let second = run_supervised_with(&pool, &spec, 5, &cfg, |i, _| -> RunResult {
            panic!("cell {i} should have been replayed, not re-run")
        })
        .expect("journal open");
        assert!(second.completed.iter().all(|c| c.resumed));
        assert_eq!(second.fingerprint(), first.fingerprint());
        assert_eq!(second.mean_metrics(), first.mean_metrics());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_from_a_different_spec_is_ignored() {
        let path = tmp("foreign.jnl");
        std::fs::remove_file(&path).ok();
        let pool = RunPool::serial();
        let spec = base_spec();
        let cfg = SupervisorConfig::new().with_journal(&path);
        run_supervised_with(&pool, &spec, 3, &cfg, |i, _| fake_result(i, None)).expect("first");
        // Same journal, different spec (seed differs → spec_hash differs):
        // nothing replays, all three re-run.
        let mut other = base_spec();
        other.seed = 999;
        let report = run_supervised_with(&pool, &other, 3, &cfg, |i, _| fake_result(i, None))
            .expect("second");
        assert!(report.completed.iter().all(|c| !c.resumed));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flaky_cells_keep_their_value_but_are_flagged() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let pool = RunPool::serial();
        let spec = base_spec();
        let attempts = AtomicU32::new(0);
        let report = run_supervised_with(
            &pool,
            &spec,
            2,
            &SupervisorConfig::new().with_retries(1),
            |i, _| {
                if i == 0 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("first attempt only");
                }
                fake_result(i, None)
            },
        )
        .expect("no journal, no io");
        assert_eq!(report.completed.len(), 2);
        assert_eq!(report.flaky.len(), 1);
        assert!(
            report.flaky[0].diverged,
            "retry succeeded where first panicked"
        );
        assert!(!report.is_clean());
    }
}
