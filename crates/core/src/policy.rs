//! Mapping congestion context → recommended Cubic parameters.
//!
//! This is the "globally shared knowledge" of §2.2.1 in executable form: a
//! table keyed by utilization level whose entries are the parameter
//! settings found optimal for that level. Phi senders look up the context
//! at connection start and draw their `windowInit_` / `initial_ssthresh` /
//! `β` from this table; the table itself is produced offline by
//! [`crate::optimizer`] sweeps (or hand-seeded with
//! [`PolicyTable::reference`] for quick starts).

use phi_tcp::cubic::CubicParams;
use phi_tcp::hook::ContextSnapshot;
use serde::{Deserialize, Serialize};

/// One row: applies when utilization ≤ `max_util`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyEntry {
    /// Upper edge of this utilization bucket (inclusive).
    pub max_util: f64,
    /// Parameters to use in this bucket.
    pub params: CubicParams,
}

/// The utilization-bucketed parameter policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTable {
    entries: Vec<PolicyEntry>,
    /// Used when utilization exceeds every bucket edge.
    fallback: CubicParams,
}

impl PolicyTable {
    /// Build a table from bucket entries (sorted by `max_util` here) and a
    /// fallback for utilizations above every edge.
    pub fn new(mut entries: Vec<PolicyEntry>, fallback: CubicParams) -> Self {
        assert!(
            entries.iter().all(|e| (0.0..=1.0).contains(&e.max_util)),
            "bucket edges must lie in [0, 1]"
        );
        entries.sort_by(|a, b| a.max_util.total_cmp(&b.max_util));
        PolicyTable { entries, fallback }
    }

    /// The parameters recommended for `ctx`.
    pub fn params_for(&self, ctx: &ContextSnapshot) -> CubicParams {
        for e in &self.entries {
            if ctx.utilization <= e.max_util {
                return e.params;
            }
        }
        self.fallback
    }

    /// Number of buckets (excluding the fallback).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no buckets.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The rows of the table.
    pub fn entries(&self) -> &[PolicyEntry] {
        &self.entries
    }

    /// A policy that always answers with the ns-2 defaults — what an
    /// *unmodified* sender effectively runs.
    pub fn always_default() -> Self {
        PolicyTable::new(Vec::new(), CubicParams::default())
    }

    /// A hand-seeded reference policy embodying the qualitative findings
    /// of §2.2.1:
    ///
    /// * low utilization → aggressive start (large `windowInit_`), but a
    ///   bounded `initial_ssthresh` so slow start does not overshoot into
    ///   the queue;
    /// * high utilization → conservative start (small windows/thresholds);
    /// * saturated, long-running regimes → a sharper back-off (larger β).
    ///
    /// Sweeps in `exp_fig2` regenerate a data-driven version of this table;
    /// this constant one exists so examples and tests don't need to run a
    /// sweep first.
    pub fn reference() -> Self {
        PolicyTable::new(
            vec![
                PolicyEntry {
                    max_util: 0.4,
                    params: CubicParams::tuned(32.0, 128.0, 0.2),
                },
                PolicyEntry {
                    max_util: 0.7,
                    params: CubicParams::tuned(16.0, 64.0, 0.2),
                },
                PolicyEntry {
                    max_util: 0.9,
                    params: CubicParams::tuned(4.0, 32.0, 0.3),
                },
            ],
            CubicParams::tuned(2.0, 16.0, 0.6),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(util: f64) -> ContextSnapshot {
        ContextSnapshot {
            utilization: util,
            queue_ms: 0.0,
            competing: 4,
        }
    }

    #[test]
    fn buckets_select_by_utilization() {
        let t = PolicyTable::reference();
        let low = t.params_for(&ctx(0.2));
        let mid = t.params_for(&ctx(0.6));
        let high = t.params_for(&ctx(0.85));
        let sat = t.params_for(&ctx(0.99));
        assert!(low.init_window > mid.init_window);
        assert!(mid.init_window > high.init_window);
        assert!(sat.beta > low.beta);
        assert!(low.init_ssthresh < CubicParams::default().init_ssthresh);
    }

    #[test]
    fn entries_sorted_even_if_given_unsorted() {
        let t = PolicyTable::new(
            vec![
                PolicyEntry {
                    max_util: 0.9,
                    params: CubicParams::tuned(2.0, 16.0, 0.2),
                },
                PolicyEntry {
                    max_util: 0.3,
                    params: CubicParams::tuned(32.0, 128.0, 0.2),
                },
            ],
            CubicParams::default(),
        );
        assert_eq!(t.params_for(&ctx(0.1)).init_window, 32.0);
        assert_eq!(t.params_for(&ctx(0.5)).init_window, 2.0);
    }

    #[test]
    fn fallback_used_above_all_edges() {
        let t = PolicyTable::new(
            vec![PolicyEntry {
                max_util: 0.5,
                params: CubicParams::tuned(32.0, 128.0, 0.2),
            }],
            CubicParams::tuned(2.0, 8.0, 0.7),
        );
        assert_eq!(t.params_for(&ctx(0.95)).beta, 0.7);
    }

    #[test]
    fn always_default_is_table1() {
        let t = PolicyTable::always_default();
        assert!(t.is_empty());
        assert_eq!(t.params_for(&ctx(0.5)), CubicParams::default());
    }

    #[test]
    #[should_panic(expected = "bucket edges")]
    fn rejects_out_of_range_edges() {
        PolicyTable::new(
            vec![PolicyEntry {
                max_util: 1.5,
                params: CubicParams::default(),
            }],
            CubicParams::default(),
        );
    }
}
