//! In-simulation session hooks: how senders talk to the shared context.
//!
//! Three levels of sharing, matching the paper's evaluation arms:
//!
//! * [`phi_tcp::hook::NoHook`] — unmodified senders; no sharing at all.
//! * [`PracticalHook`] — the §2.2.2 design: one context-store lookup at
//!   connection start, one report at connection end. The utilization the
//!   controller sees between those points is *frozen* at lookup time
//!   (Remy-Phi-practical).
//! * [`IdealOracleHook`] — the idealized arm: every ACK carries the
//!   bottleneck's up-to-the-minute rolling utilization straight from the
//!   simulator (Remy-Phi-ideal / "up-to-the-minute link utilization").
//!
//! For testing the §2.2.2 failure contract there is also [`FaultyHook`],
//! a wrapper that injects context-plane faults (lost or delayed lookups,
//! stale snapshots, availability flapping) from a forked [`SeedRng`]
//! stream, composing with [`phi_tcp::hook::DegradingHook`] so faulted
//! senders fall back to vanilla behaviour.

use std::sync::{Arc, Mutex};

use phi_sim::engine::Ctx;
use phi_sim::packet::LinkId;
use phi_sim::time::{Dur, Time};
use phi_tcp::hook::{ContextSnapshot, SessionHook};
use phi_tcp::report::FlowReport;
use phi_workload::SeedRng;

use crate::context::{ContextStore, FlowSummary, PathKey};

/// A context store shared by the senders of one simulation (single thread).
pub type SharedStore = Arc<Mutex<ContextStore>>;

/// Wrap a store for in-simulation sharing.
pub fn shared(store: ContextStore) -> SharedStore {
    Arc::new(Mutex::new(store))
}

/// Convert a transport-level flow report into the wire-level summary a
/// sender would transmit to the context server.
pub fn summarize(report: &FlowReport) -> FlowSummary {
    FlowSummary {
        bytes: report.bytes,
        duration_ns: report.duration().as_nanos(),
        mean_rtt_ms: report.mean_rtt_ms,
        min_rtt_ms: report.min_rtt.map(|d| d.as_millis_f64()).unwrap_or(0.0),
        retransmits: report.retransmits.min(u64::from(u32::MAX)) as u32,
        timeouts: report.timeouts.min(u64::from(u32::MAX)) as u32,
    }
}

/// The practical Phi hook: lookup at start, report at end (§2.2.2).
pub struct PracticalHook {
    store: SharedStore,
    path: PathKey,
    frozen_util: Option<f64>,
}

impl PracticalHook {
    /// A hook for one sender on `path`, backed by `store`.
    pub fn new(store: SharedStore, path: PathKey) -> Self {
        PracticalHook {
            store,
            path,
            frozen_util: None,
        }
    }
}

impl SessionHook for PracticalHook {
    fn lookup(&mut self, now: Time, _ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        let snap = self
            .store
            .lock()
            .expect("context store")
            .lookup(self.path, now.as_nanos());
        self.frozen_util = Some(snap.utilization);
        Some(snap)
    }

    fn report(&mut self, report: &FlowReport, ctx: &mut Ctx<'_>) {
        self.store.lock().expect("context store").report(
            self.path,
            ctx.now().as_nanos(),
            &summarize(report),
        );
        self.frozen_util = None;
    }

    fn live_util(&self, _ctx: &Ctx<'_>) -> Option<f64> {
        // Between lookup and report, knowledge does not refresh: this is
        // precisely the staleness the practical design accepts.
        self.frozen_util
    }
}

/// The ideal oracle: context read straight off the bottleneck link.
pub struct IdealOracleHook {
    bottleneck: LinkId,
    /// Bottleneck rate (to convert queued bytes into milliseconds).
    rate_bps: u64,
    /// Competing-sender hint (the oracle arm doesn't track registrations).
    competing_hint: u32,
}

impl IdealOracleHook {
    /// An oracle reading `bottleneck` (of rate `rate_bps`).
    pub fn new(bottleneck: LinkId, rate_bps: u64, competing_hint: u32) -> Self {
        IdealOracleHook {
            bottleneck,
            rate_bps,
            competing_hint,
        }
    }

    fn snapshot(&self, ctx: &Ctx<'_>) -> ContextSnapshot {
        let queued_bytes = ctx.link_queue_bytes(self.bottleneck) as f64;
        let queue_ms = if self.rate_bps == 0 {
            0.0
        } else {
            queued_bytes * 8.0 / self.rate_bps as f64 * 1e3
        };
        ContextSnapshot {
            utilization: ctx.link_utilization(self.bottleneck),
            queue_ms,
            competing: self.competing_hint,
        }
    }
}

impl SessionHook for IdealOracleHook {
    fn lookup(&mut self, _now: Time, ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        Some(self.snapshot(ctx))
    }

    fn live_util(&self, ctx: &Ctx<'_>) -> Option<f64> {
        Some(ctx.link_utilization(self.bottleneck))
    }
}

/// A square-wave availability schedule: the context plane is reachable
/// for `up`, unreachable for `down`, repeating. Each hook's wave gets a
/// random phase so a fleet of senders doesn't fault in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flap {
    /// How long the plane stays reachable per cycle.
    pub up: Dur,
    /// How long the plane stays unreachable per cycle.
    pub down: Dur,
}

/// What can go wrong with the context plane, and how often.
///
/// All draws come from the [`SeedRng`] stream handed to
/// [`FaultyHook::new`] — a fork that no simulation event consumes — so
/// injecting faults never perturbs workload arrivals or transport
/// behaviour, only the context the senders see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a lookup is dropped outright (times out client-side).
    pub lookup_loss: f64,
    /// Probability a report is dropped (the store never hears it).
    pub report_loss: f64,
    /// Probability a lookup is answered from this sender's *previous*
    /// snapshot instead of fresh state (a lagging replica).
    pub stale_prob: f64,
    /// Optional lookup delay: `(probability, latency)`. A delayed lookup
    /// whose latency reaches [`FaultPlan::deadline`] is dropped — exactly
    /// what a deadline-bounded [`crate::server::ContextClient`] would do.
    pub delay: Option<(f64, Dur)>,
    /// The client-side request deadline delayed lookups race against.
    pub deadline: Dur,
    /// Optional availability flapping; while down, every lookup and
    /// report is lost regardless of the probabilities above.
    pub flap: Option<Flap>,
}

impl FaultPlan {
    /// A healthy plane: no faults at all.
    pub fn none() -> Self {
        FaultPlan {
            lookup_loss: 0.0,
            report_loss: 0.0,
            stale_prob: 0.0,
            delay: None,
            deadline: Dur::from_secs(5),
            flap: None,
        }
    }

    /// Total outage: every lookup and report is lost.
    pub fn blackout() -> Self {
        FaultPlan {
            lookup_loss: 1.0,
            report_loss: 1.0,
            ..FaultPlan::none()
        }
    }

    /// The plane cycles `up` reachable / `down` unreachable.
    pub fn flapping(up: Dur, down: Dur) -> Self {
        FaultPlan {
            flap: Some(Flap { up, down }),
            ..FaultPlan::none()
        }
    }

    /// Independent loss of lookups and reports with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultPlan {
            lookup_loss: p,
            report_loss: p,
            ..FaultPlan::none()
        }
    }
}

/// Counters of injected faults, shared across the hooks of one run via
/// [`fault_counters`] so a test can assert the faults actually fired.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Lookups attempted.
    pub lookups: u64,
    /// Lookups lost (outage, random loss, or delayed past the deadline).
    pub lookups_dropped: u64,
    /// Lookups that were delayed but still beat the deadline.
    pub lookups_delayed: u64,
    /// Lookups answered from a stale snapshot.
    pub stale_served: u64,
    /// Reports attempted.
    pub reports: u64,
    /// Reports lost.
    pub reports_dropped: u64,
}

/// Fault counters shared by the hooks of one (single-threaded) run.
pub type SharedFaultCounters = Arc<Mutex<FaultCounters>>;

/// Fresh counters for one run's [`FaultyHook`]s.
pub fn fault_counters() -> SharedFaultCounters {
    Arc::new(Mutex::new(FaultCounters::default()))
}

/// Injects context-plane faults between a sender and its real hook.
///
/// Wraps any [`SessionHook`] and makes its lookups and reports unreliable
/// per a [`FaultPlan`]: dropped, delayed past the client deadline, served
/// stale, or blacked out by availability flapping. Dropped operations
/// never touch the inner hook (the store never hears them), matching a
/// client whose request timed out. Compose with
/// [`phi_tcp::hook::DegradingHook`] so the sender also stops consuming
/// the frozen live-utilization feed while the plane is faulty.
pub struct FaultyHook<H> {
    inner: H,
    plan: FaultPlan,
    rng: SeedRng,
    /// Phase offset of this hook's flap wave, ns.
    phase_ns: u64,
    /// The last snapshot served, for the stale-replica fault.
    last_snap: Option<ContextSnapshot>,
    counters: SharedFaultCounters,
}

impl<H: SessionHook> FaultyHook<H> {
    /// Wrap `inner` with faults from `plan`, drawing from `rng` (fork it
    /// per sender, e.g. `ctx.rng.fork("faults")`, so fault draws never
    /// shift workload streams).
    pub fn new(inner: H, plan: FaultPlan, rng: SeedRng, counters: SharedFaultCounters) -> Self {
        let mut rng = rng;
        let phase_ns = match plan.flap {
            Some(f) => {
                let period = f.up.as_nanos().saturating_add(f.down.as_nanos()).max(1);
                rng.range_u64(0, period)
            }
            None => 0,
        };
        FaultyHook {
            inner,
            plan,
            rng,
            phase_ns,
            last_snap: None,
            counters,
        }
    }

    /// Whether the flap schedule has the plane unreachable at `now`.
    fn plane_down(&self, now: Time) -> bool {
        match self.plan.flap {
            Some(f) => {
                let period = f.up.as_nanos().saturating_add(f.down.as_nanos());
                if period == 0 {
                    return false;
                }
                let pos = (now.as_nanos().wrapping_add(self.phase_ns)) % period;
                pos >= f.up.as_nanos()
            }
            None => false,
        }
    }
}

impl<H: SessionHook> SessionHook for FaultyHook<H> {
    fn lookup(&mut self, now: Time, ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        self.counters.lock().expect("context store").lookups += 1;
        if self.plane_down(now) || self.rng.chance(self.plan.lookup_loss) {
            self.counters.lock().expect("context store").lookups_dropped += 1;
            return None;
        }
        if let Some((p, latency)) = self.plan.delay {
            if self.rng.chance(p) {
                if latency >= self.plan.deadline {
                    // The client gives up before the reply lands.
                    self.counters.lock().expect("context store").lookups_dropped += 1;
                    return None;
                }
                self.counters.lock().expect("context store").lookups_delayed += 1;
            }
        }
        if self.last_snap.is_some() && self.rng.chance(self.plan.stale_prob) {
            self.counters.lock().expect("context store").stale_served += 1;
            return self.last_snap;
        }
        let snap = self.inner.lookup(now, ctx);
        if snap.is_some() {
            self.last_snap = snap;
        }
        snap
    }

    fn report(&mut self, report: &FlowReport, ctx: &mut Ctx<'_>) {
        self.counters.lock().expect("context store").reports += 1;
        if self.plane_down(ctx.now()) || self.rng.chance(self.plan.report_loss) {
            self.counters.lock().expect("context store").reports_dropped += 1;
            return;
        }
        self.inner.report(report, ctx);
    }

    fn live_util(&self, ctx: &Ctx<'_>) -> Option<f64> {
        self.inner.live_util(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::StoreConfig;
    use phi_sim::packet::FlowId;
    use phi_sim::time::Dur;

    #[test]
    fn summarize_converts_units() {
        let r = FlowReport {
            flow: FlowId(1),
            bytes: 123_456,
            segments: 86,
            start: Time::from_secs(1),
            end: Time::from_secs(3),
            min_rtt: Some(Dur::from_millis(150)),
            mean_rtt_ms: 163.5,
            rtt_samples: 42,
            retransmits: 3,
            timeouts: 1,
            recoveries: 2,
            aborted: false,
            idle_restarts: 0,
        };
        let s = summarize(&r);
        assert_eq!(s.bytes, 123_456);
        assert_eq!(s.duration_ns, 2_000_000_000);
        assert!((s.min_rtt_ms - 150.0).abs() < 1e-9);
        assert!((s.mean_rtt_ms - 163.5).abs() < 1e-9);
        assert_eq!(s.retransmits, 3);
        assert_eq!(s.timeouts, 1);
    }

    #[test]
    fn summarize_handles_missing_min_rtt() {
        let r = FlowReport {
            flow: FlowId(1),
            bytes: 10,
            segments: 1,
            start: Time::ZERO,
            end: Time::from_millis(1),
            min_rtt: None,
            mean_rtt_ms: 0.0,
            rtt_samples: 0,
            retransmits: 0,
            timeouts: 0,
            recoveries: 0,
            aborted: false,
            idle_restarts: 0,
        };
        assert_eq!(summarize(&r).min_rtt_ms, 0.0);
    }

    #[test]
    fn shared_store_is_shared() {
        let store = shared(ContextStore::new(StoreConfig::default()));
        let a = PracticalHook::new(store.clone(), PathKey(1));
        let b = PracticalHook::new(store.clone(), PathKey(1));
        // Both hooks point at the same underlying store.
        store.lock().expect("context store").lookup(PathKey(1), 1);
        assert_eq!(
            store
                .lock()
                .expect("context store")
                .traffic_counters(PathKey(1))
                .0,
            1
        );
        drop((a, b));
    }
}
