//! In-simulation session hooks: how senders talk to the shared context.
//!
//! Three levels of sharing, matching the paper's evaluation arms:
//!
//! * [`phi_tcp::hook::NoHook`] — unmodified senders; no sharing at all.
//! * [`PracticalHook`] — the §2.2.2 design: one context-store lookup at
//!   connection start, one report at connection end. The utilization the
//!   controller sees between those points is *frozen* at lookup time
//!   (Remy-Phi-practical).
//! * [`IdealOracleHook`] — the idealized arm: every ACK carries the
//!   bottleneck's up-to-the-minute rolling utilization straight from the
//!   simulator (Remy-Phi-ideal / "up-to-the-minute link utilization").

use std::cell::RefCell;
use std::rc::Rc;

use phi_sim::engine::Ctx;
use phi_sim::packet::LinkId;
use phi_sim::time::Time;
use phi_tcp::hook::{ContextSnapshot, SessionHook};
use phi_tcp::report::FlowReport;

use crate::context::{ContextStore, FlowSummary, PathKey};

/// A context store shared by the senders of one simulation (single thread).
pub type SharedStore = Rc<RefCell<ContextStore>>;

/// Wrap a store for in-simulation sharing.
pub fn shared(store: ContextStore) -> SharedStore {
    Rc::new(RefCell::new(store))
}

/// Convert a transport-level flow report into the wire-level summary a
/// sender would transmit to the context server.
pub fn summarize(report: &FlowReport) -> FlowSummary {
    FlowSummary {
        bytes: report.bytes,
        duration_ns: report.duration().as_nanos(),
        mean_rtt_ms: report.mean_rtt_ms,
        min_rtt_ms: report.min_rtt.map(|d| d.as_millis_f64()).unwrap_or(0.0),
        retransmits: report.retransmits.min(u64::from(u32::MAX)) as u32,
        timeouts: report.timeouts.min(u64::from(u32::MAX)) as u32,
    }
}

/// The practical Phi hook: lookup at start, report at end (§2.2.2).
pub struct PracticalHook {
    store: SharedStore,
    path: PathKey,
    frozen_util: Option<f64>,
}

impl PracticalHook {
    /// A hook for one sender on `path`, backed by `store`.
    pub fn new(store: SharedStore, path: PathKey) -> Self {
        PracticalHook {
            store,
            path,
            frozen_util: None,
        }
    }
}

impl SessionHook for PracticalHook {
    fn lookup(&mut self, now: Time, _ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        let snap = self.store.borrow_mut().lookup(self.path, now.as_nanos());
        self.frozen_util = Some(snap.utilization);
        Some(snap)
    }

    fn report(&mut self, report: &FlowReport, ctx: &mut Ctx<'_>) {
        self.store
            .borrow_mut()
            .report(self.path, ctx.now().as_nanos(), &summarize(report));
        self.frozen_util = None;
    }

    fn live_util(&self, _ctx: &Ctx<'_>) -> Option<f64> {
        // Between lookup and report, knowledge does not refresh: this is
        // precisely the staleness the practical design accepts.
        self.frozen_util
    }
}

/// The ideal oracle: context read straight off the bottleneck link.
pub struct IdealOracleHook {
    bottleneck: LinkId,
    /// Bottleneck rate (to convert queued bytes into milliseconds).
    rate_bps: u64,
    /// Competing-sender hint (the oracle arm doesn't track registrations).
    competing_hint: u32,
}

impl IdealOracleHook {
    /// An oracle reading `bottleneck` (of rate `rate_bps`).
    pub fn new(bottleneck: LinkId, rate_bps: u64, competing_hint: u32) -> Self {
        IdealOracleHook {
            bottleneck,
            rate_bps,
            competing_hint,
        }
    }

    fn snapshot(&self, ctx: &Ctx<'_>) -> ContextSnapshot {
        let queued_bytes = ctx.link_queue_bytes(self.bottleneck) as f64;
        let queue_ms = if self.rate_bps == 0 {
            0.0
        } else {
            queued_bytes * 8.0 / self.rate_bps as f64 * 1e3
        };
        ContextSnapshot {
            utilization: ctx.link_utilization(self.bottleneck),
            queue_ms,
            competing: self.competing_hint,
        }
    }
}

impl SessionHook for IdealOracleHook {
    fn lookup(&mut self, _now: Time, ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        Some(self.snapshot(ctx))
    }

    fn live_util(&self, ctx: &Ctx<'_>) -> Option<f64> {
        Some(ctx.link_utilization(self.bottleneck))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::StoreConfig;
    use phi_sim::packet::FlowId;
    use phi_sim::time::Dur;

    #[test]
    fn summarize_converts_units() {
        let r = FlowReport {
            flow: FlowId(1),
            bytes: 123_456,
            segments: 86,
            start: Time::from_secs(1),
            end: Time::from_secs(3),
            min_rtt: Some(Dur::from_millis(150)),
            mean_rtt_ms: 163.5,
            rtt_samples: 42,
            retransmits: 3,
            timeouts: 1,
            recoveries: 2,
        };
        let s = summarize(&r);
        assert_eq!(s.bytes, 123_456);
        assert_eq!(s.duration_ns, 2_000_000_000);
        assert!((s.min_rtt_ms - 150.0).abs() < 1e-9);
        assert!((s.mean_rtt_ms - 163.5).abs() < 1e-9);
        assert_eq!(s.retransmits, 3);
        assert_eq!(s.timeouts, 1);
    }

    #[test]
    fn summarize_handles_missing_min_rtt() {
        let r = FlowReport {
            flow: FlowId(1),
            bytes: 10,
            segments: 1,
            start: Time::ZERO,
            end: Time::from_millis(1),
            min_rtt: None,
            mean_rtt_ms: 0.0,
            rtt_samples: 0,
            retransmits: 0,
            timeouts: 0,
            recoveries: 0,
        };
        assert_eq!(summarize(&r).min_rtt_ms, 0.0);
    }

    #[test]
    fn shared_store_is_shared() {
        let store = shared(ContextStore::new(StoreConfig::default()));
        let a = PracticalHook::new(store.clone(), PathKey(1));
        let b = PracticalHook::new(store.clone(), PathKey(1));
        // Both hooks point at the same underlying store.
        store.borrow_mut().lookup(PathKey(1), 1);
        assert_eq!(store.borrow().traffic_counters(PathKey(1)).0, 1);
        drop((a, b));
    }
}
