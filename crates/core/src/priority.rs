//! Cross-flow prioritization (§3.3).
//!
//! In the five-computer world, one entity owns many flows crossing the
//! same bottleneck; it can make some flows more aggressive than others —
//! by *importance* — while keeping the ensemble as a whole TCP-friendly.
//! We realize this with MulTCP-style weighting of AIMD: a flow of weight
//! `w` increases by `w` segments per RTT and decreases by `1/(2w)` of its
//! window on loss, so it behaves like `w` standard flows bundled together.
//! [`EnsembleAllocator`] turns per-flow priorities into weights that sum
//! to the ensemble's flow count, preserving the aggregate footprint.

use phi_tcp::newreno::NewRenoParams;
use serde::{Deserialize, Serialize};

/// MulTCP parameters for a flow that should behave like `weight` standard
/// TCP flows (weight ≥ 0.1 to keep the decrease factor sane).
pub fn multcp_params(weight: f64) -> NewRenoParams {
    assert!(
        (0.1..=64.0).contains(&weight),
        "weight must be in [0.1, 64], got {weight}"
    );
    NewRenoParams {
        init_window: 2.0,
        init_ssthresh: 65_536.0,
        increase: weight,
        // A bundle of w flows loses one member's half-window: cwnd/(2w).
        // For sub-unit weights the raw formula goes non-positive, so clamp
        // to a usable multiplicative-decrease range.
        decrease: (1.0 - 1.0 / (2.0 * weight)).clamp(0.1, 0.95),
    }
}

/// Importance classes with conventional weights, for the examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Importance {
    /// Background bulk transfer.
    Bulk,
    /// Ordinary interactive traffic.
    Normal,
    /// Premium traffic (e.g. an HD movie stream).
    Premium,
}

impl Importance {
    /// Relative priority of this class.
    pub fn priority(self) -> f64 {
        match self {
            Importance::Bulk => 0.5,
            Importance::Normal => 1.0,
            Importance::Premium => 2.0,
        }
    }
}

/// Turns per-flow priorities into TCP-friendly ensemble weights.
///
/// ```
/// use phi_core::priority::{multcp_params, EnsembleAllocator};
///
/// // A premium flow twice as important as two normal ones.
/// let weights = EnsembleAllocator.weights(&[2.0, 1.0, 1.0]);
/// assert!((weights.iter().sum::<f64>() - 3.0).abs() < 1e-12); // friendly
/// let premium = multcp_params(weights[0]);
/// assert!(premium.increase > 1.0); // grows faster than standard TCP
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnsembleAllocator;

impl EnsembleAllocator {
    /// Weights proportional to `priorities`, normalized so they sum to the
    /// number of flows — the ensemble then consumes the same aggregate
    /// share as `n` standard flows ("the ensemble of flows remains
    /// TCP-friendly", §3.3).
    pub fn weights(&self, priorities: &[f64]) -> Vec<f64> {
        assert!(!priorities.is_empty(), "no flows to allocate");
        assert!(
            priorities.iter().all(|&p| p > 0.0 && p.is_finite()),
            "priorities must be positive and finite"
        );
        let n = priorities.len() as f64;
        let total: f64 = priorities.iter().sum();
        priorities.iter().map(|&p| p * n / total).collect()
    }

    /// Weights for a set of importance classes.
    pub fn weights_for(&self, classes: &[Importance]) -> Vec<f64> {
        let prios: Vec<f64> = classes.iter().map(|c| c.priority()).collect();
        self.weights(&prios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_flow_count() {
        let a = EnsembleAllocator;
        let w = a.weights(&[1.0, 2.0, 5.0]);
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f64>() - 3.0).abs() < 1e-12);
        // Proportionality.
        assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        assert!((w[2] / w[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn equal_priorities_give_unit_weights() {
        let a = EnsembleAllocator;
        for w in a.weights(&[3.0, 3.0, 3.0, 3.0]) {
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn importance_classes_rank() {
        let a = EnsembleAllocator;
        let w = a.weights_for(&[Importance::Bulk, Importance::Normal, Importance::Premium]);
        assert!(w[0] < w[1] && w[1] < w[2]);
        assert!((w.iter().sum::<f64>() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn multcp_params_shape() {
        let p1 = multcp_params(1.0);
        assert!((p1.increase - 1.0).abs() < 1e-12);
        assert!((p1.decrease - 0.5).abs() < 1e-12); // standard TCP

        let p4 = multcp_params(4.0);
        assert!((p4.increase - 4.0).abs() < 1e-12);
        assert!((p4.decrease - 0.875).abs() < 1e-12); // loses 1/8

        // Sub-unit weights stay in a valid decrease range.
        let p_low = multcp_params(0.3);
        assert!((0.1..1.0).contains(&p_low.decrease));

        // Heavier flows are strictly more aggressive on both axes.
        assert!(p4.increase > p1.increase);
        assert!(p4.decrease > p1.decrease);
        assert!(p_low.decrease <= p1.decrease);
    }

    #[test]
    #[should_panic(expected = "weight must be")]
    fn multcp_rejects_extreme_weight() {
        multcp_params(1000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn allocator_rejects_nonpositive() {
        EnsembleAllocator.weights(&[1.0, 0.0]);
    }
}
