//! Deterministic parallel fan-out for independent experiment runs.
//!
//! Parameter sweeps, repeated runs, and trainer candidate evaluations all
//! share one shape: `N` completely independent simulations whose results
//! are combined afterwards. [`RunPool`] fans such jobs across
//! `std::thread::scope` workers while keeping the results **bit-identical
//! to a serial execution**, because
//!
//! 1. every job is a pure function of its index (workers share nothing),
//! 2. each run's RNG seed is derived only from `(base_seed, run_index)`
//!    via [`derive_seed`] — never from which worker picked the job up or
//!    when it finished, and
//! 3. results are written into an index-addressed slot table, so the
//!    returned `Vec` is in job order no matter the completion order.
//!
//! The worker count comes from the `PHI_JOBS` environment variable
//! (`PHI_JOBS=1` forces serial execution; unset or `0` uses the machine's
//! available parallelism).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The SplitMix64 output mix (Steele et al., the same finalizer the
/// simulator uses for per-packet jitter).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for run `run_index` of an experiment rooted at
/// `base_seed`.
///
/// This is the `run_index`-th output of a SplitMix64 generator seeded with
/// `base_seed`: the generator's state after `n` draws is
/// `base + n·GOLDEN`, so jumping straight to any run is O(1). Because the
/// value depends only on `(base_seed, run_index)`, a run's RNG stream is
/// identical whether it executes serially, on 4 workers, or on 40.
pub fn derive_seed(base_seed: u64, run_index: u64) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    mix64(base_seed.wrapping_add(run_index.wrapping_add(1).wrapping_mul(GOLDEN)))
}

/// A scoped worker pool for independent, deterministic jobs.
#[derive(Debug, Clone)]
pub struct RunPool {
    workers: usize,
}

impl RunPool {
    /// A pool with exactly `workers` threads (floored at 1).
    pub fn new(workers: usize) -> Self {
        RunPool {
            workers: workers.max(1),
        }
    }

    /// A single-threaded pool: `run` degenerates to a plain serial map.
    pub fn serial() -> Self {
        RunPool::new(1)
    }

    /// The pool selected by the `PHI_JOBS` environment variable: a
    /// positive value fixes the worker count; unset, `0`, or unparsable
    /// falls back to the machine's available parallelism.
    pub fn from_env() -> Self {
        match std::env::var("PHI_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => RunPool::new(n),
            _ => RunPool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        }
    }

    /// Worker threads this pool will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluate `job(0..jobs)` and return the results in index order.
    ///
    /// `job` must be a pure function of its index for the determinism
    /// guarantee to hold (all the harness jobs are: they build a fresh
    /// simulator from a derived seed). Worker threads pull the next
    /// unclaimed index from a shared counter, so scheduling adapts to
    /// uneven job costs; a panicking job propagates the panic to the
    /// caller once the scope joins.
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || jobs <= 1 {
            return (0..jobs).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(jobs) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let out = job(i);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every claimed index stores exactly one result")
            })
            .collect()
    }
}

impl Default for RunPool {
    fn default() -> Self {
        RunPool::from_env()
    }
}

/// Render a panic payload as a message. Covers the two payload types
/// `panic!` actually produces (`&str` and `String`); anything else — a
/// custom `panic_any` value — degrades to a placeholder rather than
/// losing the failure.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Post-mortem of one failed (or initially-failed) supervised job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFailure {
    /// The job's index — enough to re-derive its seed and spec.
    pub index: usize,
    /// Attempts executed, including the retries.
    pub attempts: u32,
    /// Panic message of every failed attempt, in attempt order.
    pub panics: Vec<String>,
    /// Whether the attempts disagreed: a retry succeeded after a panic,
    /// or two retries panicked with different messages. A deterministic
    /// simulation must fail identically every time, so divergence is
    /// itself a bug worth flagging (a data race, wall-clock dependence,
    /// or unseeded randomness), distinct from the failure it masks.
    pub diverged: bool,
}

impl RunFailure {
    /// The last panic message (the one the quarantine verdict rests on).
    pub fn last_panic(&self) -> &str {
        self.panics.last().map_or("", |s| s.as_str())
    }
}

/// Outcome of one supervised job (see [`RunPool::run_supervised`]).
#[derive(Debug)]
pub enum RunOutcome<T> {
    /// The job completed on the first attempt.
    Done(T),
    /// The job completed only after retrying — by the determinism
    /// contract this should be impossible, so the value is usable but
    /// the run is flagged (`failure.diverged` is always true here).
    Flaky {
        /// The value produced by the successful retry.
        value: T,
        /// The failed attempts that preceded it.
        failure: RunFailure,
    },
    /// Every attempt panicked; the job is quarantined and the sweep
    /// continues without it.
    Quarantined(RunFailure),
}

impl<T> RunOutcome<T> {
    /// The produced value, if any attempt completed.
    pub fn value(&self) -> Option<&T> {
        match self {
            RunOutcome::Done(v) | RunOutcome::Flaky { value: v, .. } => Some(v),
            RunOutcome::Quarantined(_) => None,
        }
    }

    /// Consume the outcome into its value, if any attempt completed.
    pub fn into_value(self) -> Option<T> {
        match self {
            RunOutcome::Done(v) | RunOutcome::Flaky { value: v, .. } => Some(v),
            RunOutcome::Quarantined(_) => None,
        }
    }

    /// The failure record, if any attempt panicked.
    pub fn failure(&self) -> Option<&RunFailure> {
        match self {
            RunOutcome::Done(_) => None,
            RunOutcome::Flaky { failure, .. } => Some(failure),
            RunOutcome::Quarantined(f) => Some(f),
        }
    }

    /// Whether no attempt completed.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, RunOutcome::Quarantined(_))
    }
}

/// One supervised job: up to `1 + retries` attempts under `catch_unwind`.
fn supervise_one<T, F>(index: usize, retries: u32, job: &F) -> RunOutcome<T>
where
    F: Fn(usize) -> T + Sync,
{
    let mut panics: Vec<String> = Vec::new();
    for _attempt in 0..=retries {
        // `AssertUnwindSafe` is sound here: `job` is a pure function of
        // its index (the pool's determinism contract), so a panicked
        // attempt leaves nothing behind that a retry could observe.
        match catch_unwind(AssertUnwindSafe(|| job(index))) {
            Ok(value) => {
                if panics.is_empty() {
                    return RunOutcome::Done(value);
                }
                let attempts = panics.len() as u32 + 1;
                return RunOutcome::Flaky {
                    value,
                    failure: RunFailure {
                        index,
                        attempts,
                        panics,
                        diverged: true,
                    },
                };
            }
            Err(payload) => panics.push(panic_message(payload.as_ref())),
        }
    }
    let diverged = panics.windows(2).any(|w| w[0] != w[1]);
    RunOutcome::Quarantined(RunFailure {
        index,
        attempts: panics.len() as u32,
        panics,
        diverged,
    })
}

impl RunPool {
    /// [`RunPool::run`] with panic isolation: each job executes under
    /// `catch_unwind`, a panicking job is retried up to `retries` times
    /// with the *same* index (hence the same derived seed — a
    /// deterministic sim must fail identically, so a diverging retry is
    /// flagged), and a job whose every attempt panics is quarantined
    /// into a [`RunOutcome::Quarantined`] slot instead of sinking the
    /// pool: sibling jobs, and the worker threads themselves, always
    /// run to completion.
    ///
    /// Results keep the pool's bit-identical-for-any-worker-count
    /// guarantee: outcomes are index-addressed and each attempt sequence
    /// depends only on the job index.
    pub fn run_supervised<T, F>(&self, jobs: usize, retries: u32, job: F) -> Vec<RunOutcome<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run(jobs, |i| supervise_one(i, retries, &job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        let expected: Vec<u64> = (0..97).map(|i| derive_seed(42, i)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = RunPool::new(workers);
            let got = pool.run(97, |i| derive_seed(42, i as u64));
            assert_eq!(got, expected, "worker count {workers} changed results");
        }
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        let pool = RunPool::new(4);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i * 10), vec![0]);
    }

    #[test]
    fn workers_floor_at_one() {
        assert_eq!(RunPool::new(0).workers(), 1);
        assert_eq!(RunPool::serial().workers(), 1);
    }

    #[test]
    fn derive_seed_is_injective_enough_and_stable() {
        // Stable across releases: tests and recorded results depend on it.
        assert_eq!(derive_seed(0, 0), mix64(0x9E37_79B9_7F4A_7C15));
        // Distinct runs get distinct seeds; distinct bases decorrelate.
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for i in 0..1000 {
                assert!(seen.insert(derive_seed(base, i)), "collision at {base}/{i}");
            }
        }
    }

    #[test]
    fn uneven_job_costs_still_merge_in_order() {
        let pool = RunPool::new(4);
        let got = pool.run(32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * i
        });
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        RunPool::new(3).run(20, |i| {
            if i == 13 {
                panic!("job 13 failed");
            }
            i
        });
    }

    #[test]
    fn supervised_quarantines_the_panicking_job_only() {
        for workers in [1, 4] {
            let pool = RunPool::new(workers);
            let outcomes = pool.run_supervised(20, 1, |i| {
                assert!(i != 13, "job 13 failed");
                i * 2
            });
            assert_eq!(outcomes.len(), 20);
            for (i, o) in outcomes.iter().enumerate() {
                if i == 13 {
                    let f = o.failure().expect("job 13 must carry a failure");
                    assert!(o.is_quarantined());
                    assert_eq!(f.index, 13);
                    assert_eq!(f.attempts, 2, "one retry with the same seed");
                    assert!(f.last_panic().contains("job 13 failed"));
                    assert!(!f.diverged, "identical panics are not divergence");
                } else {
                    assert_eq!(o.value(), Some(&(i * 2)), "sibling job {i} was sunk");
                }
            }
        }
    }

    #[test]
    fn supervised_flags_diverging_retries_as_flaky() {
        use std::sync::atomic::{AtomicU32, Ordering};
        // A job that fails once then succeeds — exactly the behaviour the
        // determinism contract forbids, so it must surface as Flaky.
        let calls = AtomicU32::new(0);
        let outcomes = RunPool::serial().run_supervised(1, 2, |_| {
            assert!(
                calls.fetch_add(1, Ordering::Relaxed) > 0,
                "first attempt fails"
            );
            7u32
        });
        match &outcomes[0] {
            RunOutcome::Flaky { value, failure } => {
                assert_eq!(*value, 7);
                assert!(failure.diverged);
                assert_eq!(failure.attempts, 2);
            }
            other => panic!("expected Flaky, got {other:?}"),
        }
    }

    #[test]
    fn supervised_matches_plain_run_when_nothing_panics() {
        let plain = RunPool::new(3).run(16, |i| derive_seed(9, i as u64));
        let supervised: Vec<u64> = RunPool::new(3)
            .run_supervised(16, 1, |i| derive_seed(9, i as u64))
            .into_iter()
            .map(|o| o.into_value().expect("no panics injected"))
            .collect();
        assert_eq!(plain, supervised);
    }

    #[test]
    fn panic_message_renders_str_and_string_payloads() {
        let p = std::panic::catch_unwind(|| panic!("plain literal")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "plain literal");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 42");
    }
}
