//! Deterministic parallel fan-out for independent experiment runs.
//!
//! Parameter sweeps, repeated runs, and trainer candidate evaluations all
//! share one shape: `N` completely independent simulations whose results
//! are combined afterwards. [`RunPool`] fans such jobs across
//! `std::thread::scope` workers while keeping the results **bit-identical
//! to a serial execution**, because
//!
//! 1. every job is a pure function of its index (workers share nothing),
//! 2. each run's RNG seed is derived only from `(base_seed, run_index)`
//!    via [`derive_seed`] — never from which worker picked the job up or
//!    when it finished, and
//! 3. results are written into an index-addressed slot table, so the
//!    returned `Vec` is in job order no matter the completion order.
//!
//! The worker count comes from the `PHI_JOBS` environment variable
//! (`PHI_JOBS=1` forces serial execution; unset or `0` uses the machine's
//! available parallelism).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The SplitMix64 output mix (Steele et al., the same finalizer the
/// simulator uses for per-packet jitter).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for run `run_index` of an experiment rooted at
/// `base_seed`.
///
/// This is the `run_index`-th output of a SplitMix64 generator seeded with
/// `base_seed`: the generator's state after `n` draws is
/// `base + n·GOLDEN`, so jumping straight to any run is O(1). Because the
/// value depends only on `(base_seed, run_index)`, a run's RNG stream is
/// identical whether it executes serially, on 4 workers, or on 40.
pub fn derive_seed(base_seed: u64, run_index: u64) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    mix64(base_seed.wrapping_add(run_index.wrapping_add(1).wrapping_mul(GOLDEN)))
}

/// A scoped worker pool for independent, deterministic jobs.
#[derive(Debug, Clone)]
pub struct RunPool {
    workers: usize,
}

impl RunPool {
    /// A pool with exactly `workers` threads (floored at 1).
    pub fn new(workers: usize) -> Self {
        RunPool {
            workers: workers.max(1),
        }
    }

    /// A single-threaded pool: `run` degenerates to a plain serial map.
    pub fn serial() -> Self {
        RunPool::new(1)
    }

    /// The pool selected by the `PHI_JOBS` environment variable: a
    /// positive value fixes the worker count; unset, `0`, or unparsable
    /// falls back to the machine's available parallelism.
    pub fn from_env() -> Self {
        match std::env::var("PHI_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => RunPool::new(n),
            _ => RunPool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        }
    }

    /// Worker threads this pool will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluate `job(0..jobs)` and return the results in index order.
    ///
    /// `job` must be a pure function of its index for the determinism
    /// guarantee to hold (all the harness jobs are: they build a fresh
    /// simulator from a derived seed). Worker threads pull the next
    /// unclaimed index from a shared counter, so scheduling adapts to
    /// uneven job costs; a panicking job propagates the panic to the
    /// caller once the scope joins.
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || jobs <= 1 {
            return (0..jobs).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(jobs) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let out = job(i);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every claimed index stores exactly one result")
            })
            .collect()
    }
}

impl Default for RunPool {
    fn default() -> Self {
        RunPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        let expected: Vec<u64> = (0..97).map(|i| derive_seed(42, i)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = RunPool::new(workers);
            let got = pool.run(97, |i| derive_seed(42, i as u64));
            assert_eq!(got, expected, "worker count {workers} changed results");
        }
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        let pool = RunPool::new(4);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i * 10), vec![0]);
    }

    #[test]
    fn workers_floor_at_one() {
        assert_eq!(RunPool::new(0).workers(), 1);
        assert_eq!(RunPool::serial().workers(), 1);
    }

    #[test]
    fn derive_seed_is_injective_enough_and_stable() {
        // Stable across releases: tests and recorded results depend on it.
        assert_eq!(derive_seed(0, 0), mix64(0x9E37_79B9_7F4A_7C15));
        // Distinct runs get distinct seeds; distinct bases decorrelate.
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for i in 0..1000 {
                assert!(seen.insert(derive_seed(base, i)), "collision at {base}/{i}");
            }
        }
    }

    #[test]
    fn uneven_job_costs_still_merge_in_order() {
        let pool = RunPool::new(4);
        let got = pool.run(32, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * i
        });
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        RunPool::new(3).run(20, |i| {
            if i == 13 {
                panic!("job 13 failed");
            }
            i
        });
    }
}
