//! Durable sweep journal: append-only, versioned, CRC-framed.
//!
//! A long parameter sweep is only as robust as its ability to survive the
//! process dying between runs. This module records each *completed* run
//! as one self-checking frame in an append-only file, so an interrupted
//! sweep resumes by replaying the journal and skipping the cells already
//! done — bit-identical to an uninterrupted sweep for any worker count
//! (see `supervise.rs`, which owns the resume logic).
//!
//! ## On-disk format
//!
//! ```text
//! file   := MAGIC frame*
//! frame  := len:u32le  payload:[u8; len]  crc:u32le   (crc = CRC-32/IEEE of payload)
//! payload:= version:u8  record fields, little-endian, f64 as to_bits
//! ```
//!
//! Design rules, in order of importance:
//!
//! 1. **A torn tail is not fatal.** A crash mid-append leaves a short or
//!    garbled final frame; recovery keeps every complete frame before it
//!    and truncates the rest. Nothing before the tear is ever lost.
//! 2. **A corrupt record quarantines only itself.** A frame whose CRC
//!    fails (bit rot, partial overwrite) but whose length field is intact
//!    is skipped, and scanning continues at the next frame.
//! 3. **Versioned payloads.** The payload leads with a version byte;
//!    unknown versions are quarantined like CRC failures, so a journal
//!    written by a newer build degrades gracefully instead of crashing.
//!
//! The codec is pure (`encode_frame` / [`recover`] work on byte slices)
//! so the recovery properties are proptestable without touching a
//! filesystem; [`Journal`] is the thin file layer on top.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use phi_tcp::report::RunMetrics;

/// File magic: identifies a sweep journal and its framing revision.
pub const MAGIC: [u8; 8] = *b"PHIJRNL1";

/// Version byte of the record payload encoding this build writes.
pub const RECORD_VERSION: u8 = 1;

/// Sanity bound on a frame's declared payload length. A length field
/// beyond this is treated as tail corruption (everything from it on is
/// truncated) rather than as an instruction to skip gigabytes.
pub const MAX_RECORD_BYTES: usize = 4096;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// classic zlib/Ethernet polynomial, implemented bitwise. The journal
/// appends at run granularity (milliseconds to minutes apart), so a
/// table-free implementation is more than fast enough and keeps the
/// codec dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a over `bytes` — the same digest discipline the e2e suites use
/// for trace fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// One completed run, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The run's index in its sweep (also keys resume skipping).
    pub run_index: u64,
    /// The derived seed the run executed with.
    pub seed: u64,
    /// Hash of the sweep's base spec; resume ignores records whose spec
    /// hash differs (a journal can be shared across sweep configs).
    pub spec_hash: u64,
    /// Events the engine dispatched (a cheap execution fingerprint).
    pub events: u64,
    /// The run's aggregate metrics, bit-exact (f64s round-trip via
    /// `to_bits`).
    pub metrics: RunMetrics,
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The payload ended before the record did.
    Truncated,
    /// The leading version byte is not one this build understands.
    UnsupportedVersion(u8),
}

impl RunRecord {
    /// Serialize the payload (version byte + fields, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let m = &self.metrics;
        let mut out = Vec::with_capacity(1 + 12 * 8);
        out.push(RECORD_VERSION);
        for v in [self.run_index, self.seed, self.spec_hash, self.events] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for f in [
            m.throughput_mbps,
            m.queueing_delay_ms,
            m.loss_rate,
            m.mean_rtt_ms,
            m.utilization,
        ] {
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        for v in [m.flows_completed, m.flows_aborted, m.bytes] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decode a payload produced by [`RunRecord::encode`].
    pub fn decode(payload: &[u8]) -> Result<RunRecord, RecordError> {
        let (&version, mut rest) = payload.split_first().ok_or(RecordError::Truncated)?;
        if version != RECORD_VERSION {
            return Err(RecordError::UnsupportedVersion(version));
        }
        let mut u = || -> Result<u64, RecordError> {
            let (head, tail) = rest
                .split_first_chunk::<8>()
                .ok_or(RecordError::Truncated)?;
            rest = tail;
            Ok(u64::from_le_bytes(*head))
        };
        Ok(RunRecord {
            run_index: u()?,
            seed: u()?,
            spec_hash: u()?,
            events: u()?,
            metrics: RunMetrics {
                throughput_mbps: f64::from_bits(u()?),
                queueing_delay_ms: f64::from_bits(u()?),
                loss_rate: f64::from_bits(u()?),
                mean_rtt_ms: f64::from_bits(u()?),
                utilization: f64::from_bits(u()?),
                flows_completed: u()?,
                flows_aborted: u()?,
                bytes: u()?,
            },
        })
    }

    /// FNV-1a fingerprint of the encoded record — what the sweep report
    /// aggregates into its bit-identity digest.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.encode())
    }
}

/// Wrap an encoded record in a `len | payload | crc` frame.
pub fn encode_frame(record: &RunRecord) -> Vec<u8> {
    let payload = record.encode();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// What a journal scan recovered (see [`recover`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovery {
    /// Every record whose frame and payload checked out, in file order.
    pub records: Vec<RunRecord>,
    /// Complete frames whose CRC or payload decode failed — quarantined
    /// individually; scanning continued past each.
    pub quarantined: u64,
    /// Bytes of torn tail (incomplete or length-corrupt final frame)
    /// dropped from the end of the scan region.
    pub torn_bytes: u64,
}

impl Recovery {
    /// Bytes of `bytes` (as passed to [`recover`]) holding valid frames:
    /// the append position after truncating the torn tail.
    pub fn valid_len(&self, total: usize) -> usize {
        total - self.torn_bytes as usize
    }
}

/// Scan the frame region of a journal (everything after [`MAGIC`]).
///
/// Recovery rules: an incomplete final frame — or a frame whose length
/// field is implausible (`0` or `> MAX_RECORD_BYTES`, which a scan
/// cannot distinguish from a torn write) — ends the scan and counts as
/// torn tail; a *complete* frame with a CRC mismatch or an undecodable
/// payload is quarantined alone and the scan continues behind it.
pub fn recover(bytes: &[u8]) -> Recovery {
    let mut out = Recovery::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(head) = bytes[pos..].first_chunk::<4>() else {
            break; // torn: not even a length field left
        };
        let len = u32::from_le_bytes(*head) as usize;
        if len == 0 || len > MAX_RECORD_BYTES {
            break; // torn or corrupt length: nothing behind it is framed
        }
        let Some(frame) = bytes.get(pos + 4..pos + 4 + len + 4) else {
            break; // torn: the frame runs off the end of the file
        };
        let (payload, crc_bytes) = frame.split_at(len);
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 crc bytes"));
        if crc == crc32(payload) {
            match RunRecord::decode(payload) {
                Ok(r) => out.records.push(r),
                Err(_) => out.quarantined += 1,
            }
        } else {
            out.quarantined += 1;
        }
        pos += 4 + len + 4;
    }
    out.torn_bytes = (bytes.len() - pos) as u64;
    out
}

/// The file layer: open/replay/append with torn-tail truncation.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create (or truncate) a journal at `path` and write the header.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Journal> {
        let mut file = File::create(path.as_ref())?;
        file.write_all(&MAGIC)?;
        file.sync_data()?;
        Ok(Journal {
            file,
            path: path.as_ref().to_path_buf(),
        })
    }

    /// Open a journal for resuming: replay every valid record, truncate
    /// any torn tail so appends land after the last valid frame, and
    /// position for appending. A missing file is created empty; a file
    /// with the wrong magic is refused (`InvalidData`) rather than
    /// silently overwritten.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Recovery)> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok((Journal::create(path)?, Recovery::default()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a sweep journal (bad magic)", path.display()),
            ));
        }
        let recovery = recover(&bytes[MAGIC.len()..]);
        let valid_end = (MAGIC.len() + recovery.valid_len(bytes.len() - MAGIC.len())) as u64;
        file.set_len(valid_end)?;
        file.seek(SeekFrom::Start(valid_end))?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            recovery,
        ))
    }

    /// Append one completed run's record, durably (flushed and synced
    /// before returning, so a crash after `append` never loses it).
    pub fn append(&mut self, record: &RunRecord) -> io::Result<()> {
        self.file.write_all(&encode_frame(record))?;
        self.file.sync_data()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> RunRecord {
        RunRecord {
            run_index: i,
            seed: 0x9E37_79B9 ^ i,
            spec_hash: 42,
            events: 1000 + i,
            metrics: RunMetrics {
                throughput_mbps: 1.5 + i as f64,
                queueing_delay_ms: 42.0,
                loss_rate: 0.01,
                mean_rtt_ms: 163.0,
                utilization: 0.7,
                flows_completed: 10 + i,
                flows_aborted: 0,
                bytes: 1_000_000 * (i + 1),
            },
        }
    }

    #[test]
    fn record_roundtrips_bit_exactly() {
        let r = record(3);
        let back = RunRecord::decode(&r.encode()).expect("decode");
        assert_eq!(back, r);
        assert_eq!(
            back.metrics.throughput_mbps.to_bits(),
            r.metrics.throughput_mbps.to_bits()
        );
    }

    #[test]
    fn unknown_version_is_rejected_not_misread() {
        let mut payload = record(0).encode();
        payload[0] = 99;
        assert_eq!(
            RunRecord::decode(&payload),
            Err(RecordError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn recover_handles_tear_and_corruption_independently() {
        let frames: Vec<u8> = (0..3).flat_map(|i| encode_frame(&record(i))).collect();
        // Clean scan.
        let rec = recover(&frames);
        assert_eq!(rec.records.len(), 3);
        assert_eq!((rec.quarantined, rec.torn_bytes), (0, 0));
        // Tear mid-final-frame: first two survive, tail dropped.
        let torn = &frames[..frames.len() - 5];
        let rec = recover(torn);
        assert_eq!(rec.records.len(), 2);
        assert!(rec.torn_bytes > 0);
        // Flip a payload byte of the middle frame: only it quarantines.
        let mut corrupt = frames.clone();
        let f0 = encode_frame(&record(0)).len();
        corrupt[f0 + 10] ^= 0xFF;
        let rec = recover(&corrupt);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.quarantined, 1);
        assert_eq!(rec.records[0].run_index, 0);
        assert_eq!(rec.records[1].run_index, 2);
    }

    #[test]
    fn file_layer_survives_kill_and_resume() {
        let dir = std::env::temp_dir().join(format!("phi-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("sweep.jnl");
        {
            let mut j = Journal::create(&path).expect("create");
            j.append(&record(0)).expect("append");
            j.append(&record(1)).expect("append");
            // Simulate a crash mid-append of record 2.
            let mut raw = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("raw");
            let frame = encode_frame(&record(2));
            raw.write_all(&frame[..frame.len() / 2]).expect("tear");
        }
        let (mut j, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.records.len(), 2, "torn record dropped, prior kept");
        assert!(rec.torn_bytes > 0);
        // Appending after recovery lands cleanly where the tear was.
        j.append(&record(2)).expect("append after recovery");
        drop(j);
        let (_, rec) = Journal::open(&path).expect("reopen again");
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_journal_file_is_refused() {
        let dir = std::env::temp_dir().join(format!("phi-journal-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("not-a-journal");
        std::fs::write(&path, b"something else entirely").expect("write");
        let err = Journal::open(&path).expect_err("bad magic must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
