//! Privacy-preserving aggregation across providers (§3.1).
//!
//! The paper notes that sharing a "common barometer on the network
//! weather" *between competing providers* needs only minimal information,
//! and that "work on secure multiparty computation and anonymous
//! aggregation [SEPIA; Roughan & Zhang] could be leveraged to further
//! shield such information sharing."
//!
//! This module implements the classic building block those systems rest
//! on: **additive secret sharing over a prime field**. Each provider
//! splits its private measurement (say, its observed congestion level on
//! a path, in fixed-point) into one share per aggregator such that any
//! subset of aggregators smaller than the full set learns *nothing*;
//! summing every provider's shares at each aggregator and then combining
//! the aggregator totals yields exactly the sum of the private inputs —
//! the common barometer — and nothing else.

use phi_workload::SeedRng;
use serde::{Deserialize, Serialize};

/// The field modulus: the largest 61-bit prime (2^61 − 1, a Mersenne
/// prime), leaving ample headroom to add many 48-bit fixed-point inputs
/// without wrap-around ambiguity.
pub const MODULUS: u64 = (1 << 61) - 1;

/// Fixed-point scale for fractional measurements (e.g. utilization).
pub const SCALE: f64 = 1_000_000.0;

fn add_mod(a: u64, b: u64) -> u64 {
    let s = a as u128 + b as u128;
    (s % MODULUS as u128) as u64
}

fn sub_mod(a: u64, b: u64) -> u64 {
    add_mod(a, MODULUS - (b % MODULUS))
}

/// One provider's share vector: element `i` goes to aggregator `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shares(pub Vec<u64>);

/// Encode a non-negative fractional measurement as a field element.
pub fn encode_fixed(value: f64) -> u64 {
    assert!(
        value.is_finite() && value >= 0.0,
        "measurement must be a non-negative finite number"
    );
    let fixed = (value * SCALE).round();
    assert!(
        fixed < (1u64 << 48) as f64,
        "measurement too large for the fixed-point range"
    );
    fixed as u64
}

/// Decode an aggregated field element back to a fractional value.
pub fn decode_fixed(element: u64) -> f64 {
    element as f64 / SCALE
}

/// Split `secret` into `n` additive shares (n ≥ 2).
///
/// Any `n − 1` shares are uniformly random and independent of the secret.
pub fn share(secret: u64, n: usize, rng: &mut SeedRng) -> Shares {
    assert!(n >= 2, "need at least two aggregators for privacy");
    assert!(secret < MODULUS, "secret out of field range");
    let mut shares = Vec::with_capacity(n);
    let mut sum = 0u64;
    for _ in 0..n - 1 {
        let r = rng.range_u64(0, MODULUS);
        shares.push(r);
        sum = add_mod(sum, r);
    }
    shares.push(sub_mod(secret, sum));
    Shares(shares)
}

/// One aggregator's running total of the shares it has received.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Aggregator {
    total: u64,
    contributions: u64,
}

impl Aggregator {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Absorb one provider's share.
    pub fn absorb(&mut self, share: u64) {
        self.total = add_mod(self.total, share % MODULUS);
        self.contributions += 1;
    }

    /// The aggregator's (still blinded) partial total.
    pub fn partial(&self) -> u64 {
        self.total
    }

    /// Providers that contributed.
    pub fn contributions(&self) -> u64 {
        self.contributions
    }
}

/// Combine every aggregator's partial total into the plaintext sum.
pub fn combine(partials: &[u64]) -> u64 {
    partials.iter().fold(0u64, |acc, &p| add_mod(acc, p))
}

/// Convenience: run a full round — each provider's private fractional
/// measurement is shared across `aggregators` aggregators; returns the
/// exact sum (and, divided by the count, the common barometer's mean).
pub fn aggregate_round(measurements: &[f64], aggregators: usize, rng: &mut SeedRng) -> f64 {
    assert!(!measurements.is_empty(), "no providers");
    let mut aggs = vec![Aggregator::new(); aggregators];
    for &m in measurements {
        let shares = share(encode_fixed(m), aggregators, rng);
        for (agg, &s) in aggs.iter_mut().zip(&shares.0) {
            agg.absorb(s);
        }
    }
    let partials: Vec<u64> = aggs.iter().map(Aggregator::partial).collect();
    decode_fixed(combine(&partials))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_reconstruct_the_secret() {
        let mut rng = SeedRng::new(1);
        for &secret in &[0u64, 1, 123_456_789, MODULUS - 1] {
            for n in 2..6 {
                let shares = share(secret, n, &mut rng);
                assert_eq!(shares.0.len(), n);
                let sum = shares.0.iter().fold(0u64, |a, &s| add_mod(a, s));
                assert_eq!(sum, secret, "n = {n}, secret = {secret}");
            }
        }
    }

    #[test]
    fn any_proper_subset_is_uninformative() {
        // Statistical check: fix two very different secrets; the marginal
        // distribution of any single share must look uniform for both —
        // compare first-share means over many sharings.
        let mut rng = SeedRng::new(2);
        let mean_first_share = |secret: u64, rng: &mut SeedRng| -> f64 {
            let n = 4000;
            (0..n)
                .map(|_| share(secret, 3, rng).0[0] as f64)
                .sum::<f64>()
                / n as f64
        };
        let a = mean_first_share(0, &mut rng);
        let b = mean_first_share(MODULUS - 1, &mut rng);
        let mid = MODULUS as f64 / 2.0;
        // Both means sit near the field midpoint regardless of secret.
        assert!((a - mid).abs() / mid < 0.05, "a = {a}");
        assert!((b - mid).abs() / mid < 0.05, "b = {b}");
    }

    #[test]
    fn aggregate_round_sums_exactly() {
        let mut rng = SeedRng::new(3);
        // Five providers' private congestion levels.
        let levels = [0.82, 0.15, 0.47, 0.0, 0.99];
        let sum = aggregate_round(&levels, 3, &mut rng);
        let expect: f64 = levels.iter().sum();
        assert!(
            (sum - expect).abs() < 3.0 / SCALE,
            "sum {sum} vs expected {expect}"
        );
        // The common barometer: mean congestion across providers.
        let mean = sum / levels.len() as f64;
        assert!((mean - expect / 5.0).abs() < 1e-5);
    }

    #[test]
    fn aggregators_see_only_blinded_partials() {
        let mut rng = SeedRng::new(4);
        let mut agg = Aggregator::new();
        let secret = encode_fixed(0.75);
        let shares = share(secret, 2, &mut rng);
        agg.absorb(shares.0[0]);
        assert_eq!(agg.contributions(), 1);
        // The partial is (with overwhelming probability) not the secret.
        assert_ne!(agg.partial(), secret);
    }

    #[test]
    fn fixed_point_roundtrip() {
        for &v in &[0.0, 0.000001, 0.5, 1.0, 123.456789] {
            let back = decode_fixed(encode_fixed(v));
            assert!((back - v).abs() < 1.0 / SCALE, "{v} -> {back}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_aggregator_rejected() {
        share(1, 1, &mut SeedRng::new(5));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_measurements_rejected() {
        encode_fixed(-0.1);
    }
}
