//! Parameter sweeps and the leave-one-out stability analysis.
//!
//! §2.2.1 of the paper: for each workload level, sweep the three Cubic
//! parameters over the Table 2 ranges, score each setting with the
//! loss-extended power metric `P_l`, and call the argmax "optimal". The
//! Figure 3 analysis then checks the gains are not a statistical fluke:
//! the best setting *from one run* must transfer to the other `n − 1`
//! runs nearly as well as each run's own optimum.

use phi_tcp::cubic::CubicParams;
use phi_tcp::report::RunMetrics;
use serde::{Deserialize, Serialize};

use crate::harness::{provision_cubic, run_experiment, ExperimentSpec};
use crate::policy::{PolicyEntry, PolicyTable};
use crate::power::{score, Objective};
use crate::runpool::{derive_seed, RunPool};

/// The parameter grid to sweep (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// `windowInit_` values, segments.
    pub init_window: Vec<f64>,
    /// `initial_ssthresh` values, segments.
    pub init_ssthresh: Vec<f64>,
    /// β values.
    pub beta: Vec<f64>,
}

fn geometric(lo: f64, hi: f64, factor: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi * (1.0 + 1e-9) {
        v.push(x);
        x *= factor;
    }
    v
}

impl SweepSpec {
    /// The full Table 2 grid: 2–256 (×2) for both window parameters and
    /// 0.1–0.9 (+0.1) for β — 8 × 8 × 9 = 576 settings.
    pub fn paper() -> Self {
        SweepSpec {
            init_window: geometric(2.0, 256.0, 2.0),
            init_ssthresh: geometric(2.0, 256.0, 2.0),
            beta: (1..=9).map(|i| i as f64 / 10.0).collect(),
        }
    }

    /// A reduced grid for the short-flow regimes, where β has no effect
    /// (§2.2.1: "modifying β does not have an impact because each
    /// connection tends to be relatively short"): sweep the two window
    /// parameters at the default β.
    pub fn short_flow() -> Self {
        SweepSpec {
            init_window: geometric(2.0, 256.0, 2.0),
            init_ssthresh: geometric(2.0, 256.0, 2.0),
            beta: vec![0.2],
        }
    }

    /// The long-running-flow grid (Figure 2c): β only.
    pub fn beta_only() -> Self {
        SweepSpec {
            init_window: vec![2.0],
            init_ssthresh: vec![65_536.0],
            beta: (1..=9).map(|i| i as f64 / 10.0).collect(),
        }
    }

    /// A small grid for CI-speed smoke runs.
    pub fn quick() -> Self {
        SweepSpec {
            init_window: vec![2.0, 16.0, 128.0],
            init_ssthresh: vec![8.0, 64.0],
            beta: vec![0.2],
        }
    }

    /// All parameter combinations in the grid.
    pub fn combos(&self) -> Vec<CubicParams> {
        let mut out =
            Vec::with_capacity(self.init_window.len() * self.init_ssthresh.len() * self.beta.len());
        for &b in &self.beta {
            for &ss in &self.init_ssthresh {
                for &iw in &self.init_window {
                    out.push(CubicParams::tuned(iw, ss, b));
                }
            }
        }
        out
    }
}

/// Metrics of one parameter setting across the sweep's runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The setting.
    pub params: CubicParams,
    /// Per-run metrics (same seeds for every setting).
    pub runs: Vec<RunMetrics>,
    /// Mean metrics across runs.
    pub mean: RunMetrics,
    /// Mean objective score across runs.
    pub score: f64,
}

/// Everything a sweep produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Outcomes for each grid point, in grid order.
    pub outcomes: Vec<SweepOutcome>,
    /// The ns-2 default setting, scored under the same runs.
    pub default: SweepOutcome,
    /// Objective used.
    pub objective: Objective,
    /// Base RTT used in scoring, ms.
    pub base_rtt_ms: f64,
}

impl SweepResult {
    /// The best (argmax mean score) grid point.
    pub fn best(&self) -> &SweepOutcome {
        self.outcomes
            .iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .expect("sweep has at least one outcome")
    }

    /// Multiplicative improvement of the best point over the default.
    pub fn gain(&self) -> f64 {
        if self.default.score <= 0.0 {
            f64::INFINITY
        } else {
            self.best().score / self.default.score
        }
    }
}

/// Sweep `grid` over `n_runs` repetitions of `spec`, scoring with
/// `objective`. All senders in a run share one parameter setting — the
/// §2.2.1 simplified setting. Every grid point replays the identical
/// workloads (same seeds), so comparisons are paired.
///
/// Runs on the [`RunPool::from_env`] pool (`PHI_JOBS` workers).
pub fn sweep_cubic(
    spec: &ExperimentSpec,
    grid: &SweepSpec,
    n_runs: usize,
    objective: Objective,
) -> SweepResult {
    sweep_cubic_on(&RunPool::from_env(), spec, grid, n_runs, objective)
}

/// [`sweep_cubic`] on an explicit pool.
///
/// The unit of parallelism is one `(setting, run)` pair — the finest
/// independent grain — so even a single-setting sweep with many runs, or
/// a many-setting sweep with one run, saturates the pool. Run `i` of
/// every setting uses [`derive_seed`]`(spec.seed, i)`, which both keeps
/// the sweep paired (identical workloads across settings) and makes the
/// result bit-identical for any worker count.
pub fn sweep_cubic_on(
    pool: &RunPool,
    spec: &ExperimentSpec,
    grid: &SweepSpec,
    n_runs: usize,
    objective: Objective,
) -> SweepResult {
    assert!(n_runs >= 1, "need at least one run");
    let base = spec.base_rtt_ms();
    // The grid points plus, as a final pseudo-point, the ns-2 default.
    let mut settings = grid.combos();
    settings.push(CubicParams::default());

    let metrics: Vec<RunMetrics> = pool.run(settings.len() * n_runs, |j| {
        let params = settings[j / n_runs];
        let mut s = spec.clone();
        s.seed = derive_seed(spec.seed, (j % n_runs) as u64);
        run_experiment(&s, provision_cubic(params)).metrics
    });

    let mut outcomes: Vec<SweepOutcome> = settings
        .iter()
        .zip(metrics.chunks(n_runs))
        .map(|(&params, runs)| {
            let runs = runs.to_vec();
            let mean = RunMetrics::mean_of(&runs);
            let s = runs.iter().map(|m| score(objective, m, base)).sum::<f64>() / runs.len() as f64;
            SweepOutcome {
                params,
                runs,
                mean,
                score: s,
            }
        })
        .collect();
    let default = outcomes.pop().expect("default setting evaluated");
    SweepResult {
        outcomes,
        default,
        objective,
        base_rtt_ms: base,
    }
}

/// One row of the Figure 3 analysis (for held-out run `run`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LeaveOneOutRow {
    /// The run whose optimum was transferred.
    pub run: usize,
    /// Mean score of the *default* setting on the other runs.
    pub default_score: f64,
    /// Mean score, on the other runs, of the setting that was optimal for
    /// this run ("common" setting in the paper's wording).
    pub transferred_score: f64,
    /// Mean over the other runs of each run's own best score (the
    /// per-run "optimal" upper reference).
    pub oracle_score: f64,
}

/// The Figure 3 stability analysis over a completed sweep.
pub fn leave_one_out(result: &SweepResult) -> Vec<LeaveOneOutRow> {
    let n_runs = result.default.runs.len();
    assert!(n_runs >= 2, "leave-one-out needs at least two runs");
    let base = result.base_rtt_ms;
    let obj = result.objective;

    // score_matrix[combo][run]
    let score_matrix: Vec<Vec<f64>> = result
        .outcomes
        .iter()
        .map(|o| o.runs.iter().map(|m| score(obj, m, base)).collect())
        .collect();
    let default_scores: Vec<f64> = result
        .default
        .runs
        .iter()
        .map(|m| score(obj, m, base))
        .collect();

    (0..n_runs)
        .map(|held| {
            // Best combo judged on the held run alone.
            let best_combo = (0..score_matrix.len())
                .max_by(|&a, &b| score_matrix[a][held].total_cmp(&score_matrix[b][held]))
                .expect("non-empty grid");
            let others: Vec<usize> = (0..n_runs).filter(|&j| j != held).collect();
            let mean_over = |f: &dyn Fn(usize) -> f64| {
                others.iter().map(|&j| f(j)).sum::<f64>() / others.len() as f64
            };
            LeaveOneOutRow {
                run: held,
                default_score: mean_over(&|j| default_scores[j]),
                transferred_score: mean_over(&|j| score_matrix[best_combo][j]),
                oracle_score: mean_over(&|j| {
                    score_matrix
                        .iter()
                        .map(|row| row[j])
                        .fold(f64::NEG_INFINITY, f64::max)
                }),
            }
        })
        .collect()
}

/// Build a [`PolicyTable`] from per-utilization-level sweep winners: each
/// `(observed utilization, best params)` pair becomes a bucket whose edge
/// is the midpoint to the next level.
pub fn policy_from_sweeps(mut levels: Vec<(f64, CubicParams)>) -> PolicyTable {
    assert!(!levels.is_empty(), "need at least one level");
    levels.sort_by(|a, b| a.0.total_cmp(&b.0));
    let fallback = levels.last().expect("non-empty").1;
    let entries = levels
        .windows(2)
        .map(|w| PolicyEntry {
            max_util: (w[0].0 + w[1].0) / 2.0,
            params: w[0].1,
        })
        .collect();
    PolicyTable::new(entries, fallback)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_sim::time::Dur;
    use phi_workload::OnOffConfig;

    #[test]
    fn paper_grid_matches_table2() {
        let g = SweepSpec::paper();
        assert_eq!(
            g.init_window,
            vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
        );
        assert_eq!(g.init_ssthresh.len(), 8);
        assert_eq!(g.beta.len(), 9);
        assert!((g.beta[0] - 0.1).abs() < 1e-12);
        assert!((g.beta[8] - 0.9).abs() < 1e-12);
        assert_eq!(g.combos().len(), 576);
    }

    #[test]
    fn combos_cover_the_grid() {
        let g = SweepSpec::quick();
        let combos = g.combos();
        assert_eq!(combos.len(), 6);
        assert!(combos
            .iter()
            .any(|p| p.init_window == 128.0 && p.init_ssthresh == 8.0));
        // Non-tuned fields keep their defaults.
        assert!(combos.iter().all(|p| p.c == CubicParams::default().c));
    }

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            3,
            OnOffConfig {
                mean_on_bytes: 150_000.0,
                mean_off_secs: 0.8,
                deterministic: false,
            },
            Dur::from_secs(12),
            7,
        );
        spec.dumbbell.bottleneck_bps = 8_000_000;
        spec.dumbbell.rtt = Dur::from_millis(60);
        spec
    }

    #[test]
    fn sweep_produces_paired_runs_and_a_best() {
        let spec = tiny_spec();
        let grid = SweepSpec {
            init_window: vec![2.0, 32.0],
            init_ssthresh: vec![16.0],
            beta: vec![0.2],
        };
        let res = sweep_cubic(&spec, &grid, 2, Objective::PowerLoss);
        assert_eq!(res.outcomes.len(), 2);
        assert!(res.outcomes.iter().all(|o| o.runs.len() == 2));
        let best = res.best();
        assert!(best.score >= res.outcomes[0].score);
        assert!(best.score >= res.outcomes[1].score);
        assert!(best.score.is_finite());
    }

    #[test]
    fn leave_one_out_bounds() {
        let spec = tiny_spec();
        let grid = SweepSpec {
            init_window: vec![2.0, 16.0, 64.0],
            init_ssthresh: vec![16.0, 64.0],
            beta: vec![0.2],
        };
        let res = sweep_cubic(&spec, &grid, 3, Objective::PowerLoss);
        let rows = leave_one_out(&res);
        assert_eq!(rows.len(), 3);
        for row in rows {
            // Oracle ≥ transferred by construction (both averaged over the
            // same held-out runs; the oracle picks per-run maxima).
            assert!(
                row.oracle_score >= row.transferred_score - 1e-12,
                "oracle {} < transferred {}",
                row.oracle_score,
                row.transferred_score
            );
        }
    }

    #[test]
    fn policy_from_sweeps_buckets_and_falls_back() {
        let t = policy_from_sweeps(vec![
            (0.3, CubicParams::tuned(32.0, 128.0, 0.2)),
            (0.7, CubicParams::tuned(8.0, 32.0, 0.2)),
            (0.99, CubicParams::tuned(2.0, 16.0, 0.6)),
        ]);
        assert_eq!(t.len(), 2);
        let at = |u: f64| {
            t.params_for(&phi_tcp::hook::ContextSnapshot {
                utilization: u,
                queue_ms: 0.0,
                competing: 1,
            })
        };
        assert_eq!(at(0.2).init_window, 32.0);
        assert_eq!(at(0.6).init_window, 8.0);
        assert_eq!(at(0.95).beta, 0.6);
    }

    #[test]
    #[should_panic(expected = "at least two runs")]
    fn loo_needs_two_runs() {
        let spec = tiny_spec();
        let grid = SweepSpec {
            init_window: vec![2.0],
            init_ssthresh: vec![16.0],
            beta: vec![0.2],
        };
        let res = sweep_cubic(&spec, &grid, 1, Objective::PowerLoss);
        leave_one_out(&res);
    }
}
