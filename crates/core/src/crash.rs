//! Deterministic server-crash injection for the in-sim context plane.
//!
//! [`crate::hooks::FaultyHook`] makes the *network between* a sender and
//! the context server unreliable; this module crashes the **server
//! itself**. [`HaPlane`] models the replicated context plane of
//! [`crate::server`] — a primary and a backup [`ContextStore`], deltas
//! flowing with a replication lag, an epoch bumped on every failover —
//! and a seeded [`ServerCrashPlan`] decides *when* the primary dies.
//!
//! All randomness comes from a forked [`SeedRng`] stream that no
//! simulation event consumes, and every crash window is materialized up
//! front, so a crash run replays bit-for-bit under any `PHI_JOBS` worker
//! count — the same discipline as [`crate::hooks::FaultPlan`] and
//! `phi_sim::faults::ImpairmentPlan`.
//!
//! During the failover window after a crash no replica answers: lookups
//! and reports are dropped, senders degrade to no-context (vanilla TCP)
//! exactly as the §2.2.2 contract requires. Deltas the backup had not
//! yet received when the primary died are **lost** — that is the real
//! cost of asynchronous replication, and [`CrashCounters::ops_lost`]
//! makes it observable.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use phi_sim::engine::Ctx;
use phi_sim::time::{Dur, Time};
use phi_tcp::hook::{ContextSnapshot, SessionHook};
use phi_tcp::report::FlowReport;
use phi_workload::SeedRng;
use serde::{Deserialize, Serialize};

use crate::context::{ContextStore, FlowSummary, PathKey, StoreConfig};
use crate::hooks::summarize;
use crate::shard::shard_index;

/// A repeating crash/restart cycle (the server-side analogue of
/// [`crate::hooks::Flap`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashFlap {
    /// When the first crash hits.
    pub first: Dur,
    /// How long the crashed replica stays down each cycle.
    pub down: Dur,
    /// Healthy time between a restart and the next crash.
    pub up: Dur,
    /// Number of crash cycles.
    pub cycles: u32,
    /// Fraction of `up` by which each cycle's start is randomly shifted
    /// (seeded draw; `0.0` = perfectly periodic).
    pub jitter: f64,
}

/// When the primary context server crashes (and restarts), scripted
/// and/or seeded — mirroring [`crate::hooks::FaultPlan`] /
/// `ImpairmentPlan`: declarative, serializable, deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerCrashPlan {
    /// Scripted outages: `(crash_at, down_for)`. The crashed replica
    /// restarts (as the new backup) `down_for` after the crash.
    pub outages: Vec<(Dur, Dur)>,
    /// Optional repeated crash/restart flapping.
    pub flap: Option<CrashFlap>,
}

impl ServerCrashPlan {
    /// No crashes: the plane behaves exactly like a healthy
    /// [`crate::hooks::PracticalHook`] store.
    pub fn none() -> Self {
        ServerCrashPlan {
            outages: Vec::new(),
            flap: None,
        }
    }

    /// Crash at `at` and never restart the crashed replica.
    pub fn crash_at(at: Dur) -> Self {
        ServerCrashPlan {
            outages: vec![(at, Dur::from_secs(u64::MAX / 2_000_000_000))],
            flap: None,
        }
    }

    /// Crash at `at`; the crashed replica restarts `down_for` later and
    /// rejoins as the backup (resynced from the new primary).
    pub fn crash_restart(at: Dur, down_for: Dur) -> Self {
        ServerCrashPlan {
            outages: vec![(at, down_for)],
            flap: None,
        }
    }

    /// Repeated crashes: first at `first`, each down `down`, healthy
    /// `up` between, `cycles` times, starts jittered by `jitter * up`.
    pub fn flapping(first: Dur, down: Dur, up: Dur, cycles: u32, jitter: f64) -> Self {
        ServerCrashPlan {
            outages: Vec::new(),
            flap: Some(CrashFlap {
                first,
                down,
                up,
                cycles,
                jitter,
            }),
        }
    }

    /// Expand the plan into sorted, merged, horizon-clipped outage
    /// windows `(crash_ns, restart_ns)`. Draw order is fixed (one draw
    /// per flap cycle), so the same plan + seed always yields the same
    /// windows no matter who else uses the parent RNG.
    pub fn materialize(&self, rng: &mut SeedRng, horizon: Dur) -> Vec<(u64, u64)> {
        let mut windows: Vec<(u64, u64)> = self
            .outages
            .iter()
            .map(|&(at, down)| {
                let s = at.as_nanos();
                (s, s.saturating_add(down.as_nanos()))
            })
            .collect();
        if let Some(f) = self.flap {
            let span = ((f.up.as_nanos() as f64) * f.jitter.clamp(0.0, 1.0)) as u64;
            let mut t = f.first.as_nanos();
            for _ in 0..f.cycles {
                let off = rng.range_u64(0, span.max(1));
                let start = t.saturating_add(off);
                windows.push((start, start.saturating_add(f.down.as_nanos())));
                t = start
                    .saturating_add(f.down.as_nanos())
                    .saturating_add(f.up.as_nanos());
            }
        }
        windows.sort_unstable();
        // Merge overlaps so one failover fires per outage period.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            if s >= horizon.as_nanos() {
                continue;
            }
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    }
}

/// Shard the in-sim HA plane: `count` independent primary/backup pairs
/// (one per [`crate::shard::ShardedStore`] shard), each with its *own*
/// epoch, and the crash plan applied to exactly one of them. Paths route
/// to shards by [`shard_index`], so a crash's blast radius is the one
/// shard's keyspace — every other shard keeps serving at epoch 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedHa {
    /// Number of independent shard planes (at least 1).
    pub count: u32,
    /// Which shard's primary the crash plan hits; the others run the
    /// same lag/failover parameters but never crash.
    pub crash_shard: u32,
}

/// How the in-sim replicated plane behaves around crashes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HaSpec {
    /// When the primary dies.
    pub plan: ServerCrashPlan,
    /// Replication lag: a primary mutation reaches the backup this much
    /// later. Mutations younger than this at crash time are lost.
    pub repl_lag: Dur,
    /// Detection + promotion time: after a crash, no replica answers for
    /// this long (senders degrade to no context).
    pub failover_delay: Dur,
    /// Optional sharding of the plane. `None` (the default, and what
    /// every pre-shard spec deserializes to) runs the classic single
    /// plane with the original `server-crash` RNG fork, so established
    /// run digests are untouched.
    #[serde(default)]
    pub shards: Option<ShardedHa>,
}

impl HaSpec {
    /// A healthy replicated plane that never crashes.
    pub fn none() -> Self {
        HaSpec {
            plan: ServerCrashPlan::none(),
            repl_lag: Dur::from_millis(50),
            failover_delay: Dur::from_millis(200),
            shards: None,
        }
    }
}

/// What happened to the crashed-and-failed-over plane, for assertions
/// and run fingerprints.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashCounters {
    /// Primary crashes executed.
    pub crashes: u64,
    /// Failovers (backup promotions) — equals `crashes` in a 2-replica
    /// plane.
    pub failovers: u64,
    /// Lookups attempted against the plane.
    pub lookups: u64,
    /// Lookups dropped in a failover window.
    pub lookups_dropped: u64,
    /// Reports attempted.
    pub reports: u64,
    /// Reports dropped in a failover window.
    pub reports_dropped: u64,
    /// Replicated mutations lost because the primary died before the
    /// replication lag elapsed.
    pub ops_lost: u64,
}

/// A mutation in flight from primary to backup.
#[derive(Debug, Clone)]
enum PendingOp {
    Lookup(PathKey),
    Report(PathKey, FlowSummary),
}

#[derive(Debug)]
struct PlaneState {
    /// Two replicas; `serving` indexes the current primary.
    stores: [ContextStore; 2],
    serving: usize,
    /// Fencing token: starts at 1, +1 per failover.
    epoch: u64,
    /// Materialized `(crash_ns, restart_ns)` windows, sorted.
    windows: Vec<(u64, u64)>,
    next_window: usize,
    /// No replica answers before this time (failover in progress).
    down_until: u64,
    /// The crashed replica rejoins (full snapshot resync) at this time.
    resync_at: Option<u64>,
    lag_ns: u64,
    failover_ns: u64,
    /// Mutations applied on the primary, not yet replicated.
    pending: VecDeque<(u64, PendingOp)>,
    counters: CrashCounters,
}

impl PlaneState {
    fn backup(&self) -> usize {
        1 - self.serving
    }

    /// Apply every pending op whose lag has elapsed by `now` to the
    /// backup (no-op while the backup is down awaiting resync).
    fn drain_replication(&mut self, now: u64) {
        if self.resync_at.is_some() {
            return;
        }
        let backup = self.backup();
        while let Some(&(t, _)) = self.pending.front() {
            if t.saturating_add(self.lag_ns) > now {
                break;
            }
            let (t, op) = self.pending.pop_front().expect("front checked");
            match op {
                PendingOp::Lookup(path) => {
                    self.stores[backup].lookup(path, t);
                }
                PendingOp::Report(path, summary) => {
                    self.stores[backup].report(path, t, &summary);
                }
            }
        }
    }

    /// Advance the plane's clock: finish due resyncs, execute due
    /// crashes, and ship due replication deltas.
    fn roll(&mut self, now: u64) {
        loop {
            // The earliest due event wins; loop until nothing is due.
            let resync_due = self.resync_at.filter(|&t| t <= now);
            let crash_due = self
                .windows
                .get(self.next_window)
                .filter(|&&(s, _)| s <= now)
                .copied();
            match (resync_due, crash_due) {
                (Some(r), Some((s, _))) if r <= s => self.finish_resync(r),
                (Some(r), None) => self.finish_resync(r),
                (None, Some((s, e))) | (Some(_), Some((s, e))) => self.crash(s, e),
                (None, None) => break,
            }
        }
        self.drain_replication(now);
    }

    /// The crashed replica restarts and rejoins as backup: a full
    /// snapshot resync from the live primary (the in-sim counterpart of
    /// the wire `SnapshotSync`), superseding any pending deltas.
    fn finish_resync(&mut self, _at: u64) {
        self.stores[self.backup()] = self.stores[self.serving].clone();
        self.pending.clear();
        self.resync_at = None;
    }

    /// The primary dies at `s` and will restart at `e`.
    fn crash(&mut self, s: u64, e: u64) {
        self.next_window += 1;
        self.counters.crashes += 1;
        // Deltas whose lag elapsed before the crash made it to the
        // backup; the younger ones die with the primary.
        if self.resync_at.is_none() {
            let backup = self.backup();
            while let Some(&(t, _)) = self.pending.front() {
                if t.saturating_add(self.lag_ns) > s {
                    break;
                }
                let (t, op) = self.pending.pop_front().expect("front checked");
                match op {
                    PendingOp::Lookup(path) => {
                        self.stores[backup].lookup(path, t);
                    }
                    PendingOp::Report(path, summary) => {
                        self.stores[backup].report(path, t, &summary);
                    }
                }
            }
        }
        self.counters.ops_lost += self.pending.len() as u64;
        self.pending.clear();
        // The backup takes over at epoch+1 once the failover window
        // passes; the dead replica resyncs when it restarts.
        self.serving = self.backup();
        self.epoch += 1;
        self.counters.failovers += 1;
        self.down_until = self.down_until.max(s.saturating_add(self.failover_ns));
        self.resync_at = Some(e);
    }
}

/// The in-sim replicated context plane: the oracle-hook counterpart of
/// the real primary/backup [`crate::server::ContextServer`] pair.
///
/// Cheap to clone (shared interior), single-threaded by design — create
/// one per run and hand clones to each sender's [`HaHook`].
#[derive(Debug, Clone)]
pub struct HaPlane {
    state: Arc<Mutex<PlaneState>>,
}

impl HaPlane {
    /// A plane whose two replicas start empty with `cfg`, crashing per
    /// `spec` over `horizon`. `rng` must be a dedicated fork (e.g.
    /// `root.fork("server-crash")`) so crash draws never shift workload
    /// or transport streams.
    pub fn new(cfg: StoreConfig, spec: &HaSpec, mut rng: SeedRng, horizon: Dur) -> Self {
        let windows = spec.plan.materialize(&mut rng, horizon);
        HaPlane {
            state: Arc::new(Mutex::new(PlaneState {
                stores: [ContextStore::new(cfg), ContextStore::new(cfg)],
                serving: 0,
                epoch: 1,
                windows,
                next_window: 0,
                down_until: 0,
                resync_at: None,
                lag_ns: spec.repl_lag.as_nanos(),
                failover_ns: spec.failover_delay.as_nanos(),
                pending: VecDeque::new(),
                counters: CrashCounters::default(),
            })),
        }
    }

    /// Serve a lookup, or `None` while a failover is in progress.
    pub fn lookup(&self, path: PathKey, now_ns: u64) -> Option<ContextSnapshot> {
        let mut st = self.state.lock().expect("plane state");
        st.roll(now_ns);
        st.counters.lookups += 1;
        if now_ns < st.down_until {
            st.counters.lookups_dropped += 1;
            return None;
        }
        let serving = st.serving;
        let snap = st.stores[serving].lookup(path, now_ns);
        st.pending.push_back((now_ns, PendingOp::Lookup(path)));
        Some(snap)
    }

    /// File a report; `false` means it was lost to a failover window.
    pub fn report(&self, path: PathKey, now_ns: u64, summary: &FlowSummary) -> bool {
        let mut st = self.state.lock().expect("plane state");
        st.roll(now_ns);
        st.counters.reports += 1;
        if now_ns < st.down_until {
            st.counters.reports_dropped += 1;
            return false;
        }
        let serving = st.serving;
        st.stores[serving].report(path, now_ns, summary);
        st.pending
            .push_back((now_ns, PendingOp::Report(path, *summary)));
        true
    }

    /// The current fencing epoch (1 + failovers so far).
    pub fn epoch(&self) -> u64 {
        self.state.lock().expect("plane state").epoch
    }

    /// Injection/degradation counters.
    pub fn counters(&self) -> CrashCounters {
        self.state.lock().expect("plane state").counters
    }

    /// FNV-1a digest of the serving replica's snapshot blob — a compact,
    /// deterministic fingerprint of the surviving state.
    pub fn state_digest(&self) -> u64 {
        let st = self.state.lock().expect("plane state");
        let blob = st.stores[st.serving].encode_snapshot(st.epoch);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in blob {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    /// Summary for a run's [`HaReport`].
    pub fn report_summary(&self) -> HaReport {
        HaReport {
            epoch: self.epoch(),
            counters: self.counters(),
            state_digest: self.state_digest(),
        }
    }
}

/// The run's HA planes, one per shard — the in-sim counterpart of N
/// independent primary/backup server pairs. A one-plane set is exactly
/// the classic unsharded plane; with more, each path's traffic rides the
/// plane [`shard_index`] assigns it, and a crash on one plane cannot
/// touch another's epoch or state (there is no cross-plane operation to
/// carry a stale epoch over — that is why per-shard epochs cannot
/// split-brain).
#[derive(Debug, Clone)]
pub struct HaPlaneSet {
    planes: Vec<HaPlane>,
}

impl HaPlaneSet {
    /// The classic unsharded plane as a one-element set.
    pub fn single(plane: HaPlane) -> Self {
        HaPlaneSet {
            planes: vec![plane],
        }
    }

    /// A set of per-shard planes. Panics on an empty vector (a plane set
    /// without planes cannot route anything).
    pub fn new(planes: Vec<HaPlane>) -> Self {
        assert!(!planes.is_empty(), "HaPlaneSet needs at least one plane");
        HaPlaneSet { planes }
    }

    /// Number of shard planes.
    pub fn shard_count(&self) -> usize {
        self.planes.len()
    }

    /// The plane serving `path` (by the stable shard hash).
    pub fn plane_for(&self, path: PathKey) -> &HaPlane {
        &self.planes[shard_index(path, self.planes.len())]
    }

    /// Borrow shard plane `i`.
    pub fn plane(&self, i: usize) -> &HaPlane {
        &self.planes[i]
    }

    /// Per-shard reports, in shard order (folded into run fingerprints).
    pub fn reports(&self) -> Vec<HaReport> {
        self.planes.iter().map(|p| p.report_summary()).collect()
    }
}

/// The HA plane's contribution to a run's results (folded into run
/// fingerprints, so parallelism regressions in the crash machinery are
/// caught by the same bit-identity tests as everything else).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HaReport {
    /// Final epoch (1 = no failover happened).
    pub epoch: u64,
    /// What the plan injected and what it cost.
    pub counters: CrashCounters,
    /// FNV-1a digest of the surviving primary's snapshot blob.
    pub state_digest: u64,
}

/// The §2.2.2 practical hook backed by the crashable [`HaPlane`]: one
/// lookup at connection start, one report at connection end, utilization
/// frozen in between — and "no context" whenever the plane is failing
/// over. Compose with [`phi_tcp::hook::DegradingHook`] so degraded
/// senders also stop consuming the frozen utilization feed.
pub struct HaHook {
    plane: HaPlane,
    path: PathKey,
    frozen_util: Option<f64>,
}

impl HaHook {
    /// A hook for one sender on `path`, backed by `plane`.
    pub fn new(plane: HaPlane, path: PathKey) -> Self {
        HaHook {
            plane,
            path,
            frozen_util: None,
        }
    }
}

impl SessionHook for HaHook {
    fn lookup(&mut self, now: Time, _ctx: &mut Ctx<'_>) -> Option<ContextSnapshot> {
        let snap = self.plane.lookup(self.path, now.as_nanos());
        self.frozen_util = snap.map(|s| s.utilization);
        snap
    }

    fn report(&mut self, report: &FlowReport, ctx: &mut Ctx<'_>) {
        self.plane
            .report(self.path, ctx.now().as_nanos(), &summarize(report));
        self.frozen_util = None;
    }

    fn live_util(&self, _ctx: &Ctx<'_>) -> Option<f64> {
        self.frozen_util
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn rng() -> SeedRng {
        SeedRng::new(42).fork("server-crash")
    }

    fn summary(bytes: u64) -> FlowSummary {
        FlowSummary {
            bytes,
            duration_ns: SEC,
            mean_rtt_ms: 170.0,
            min_rtt_ms: 150.0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    fn spec(plan: ServerCrashPlan) -> HaSpec {
        HaSpec {
            plan,
            repl_lag: Dur::from_millis(100),
            failover_delay: Dur::from_millis(200),
            shards: None,
        }
    }

    #[test]
    fn no_plan_behaves_like_a_healthy_store() {
        let plane = HaPlane::new(
            StoreConfig::default(),
            &spec(ServerCrashPlan::none()),
            rng(),
            Dur::from_secs(60),
        );
        let p = PathKey(1);
        assert!(plane.lookup(p, SEC).is_some());
        assert!(plane.report(p, 2 * SEC, &summary(1_000_000)));
        let snap = plane.lookup(p, 3 * SEC).expect("healthy plane answers");
        assert!(snap.utilization > 0.0 || snap.queue_ms > 0.0);
        assert_eq!(plane.epoch(), 1);
        assert_eq!(plane.counters().crashes, 0);
        assert_eq!(plane.counters().lookups_dropped, 0);
    }

    #[test]
    fn crash_bumps_epoch_and_drops_in_window() {
        let plane = HaPlane::new(
            StoreConfig::default(),
            &spec(ServerCrashPlan::crash_restart(
                Dur::from_secs(5),
                Dur::from_secs(2),
            )),
            rng(),
            Dur::from_secs(60),
        );
        let p = PathKey(1);
        assert!(plane.lookup(p, SEC).is_some());
        assert_eq!(plane.epoch(), 1);
        // Inside the failover window (crash at 5 s + 200 ms delay).
        assert!(plane.lookup(p, 5 * SEC + 50_000_000).is_none());
        assert_eq!(plane.epoch(), 2, "backup promoted at epoch+1");
        // After the window the new primary serves.
        assert!(plane.lookup(p, 6 * SEC).is_some());
        let c = plane.counters();
        assert_eq!(c.crashes, 1);
        assert_eq!(c.failovers, 1);
        assert_eq!(c.lookups_dropped, 1);
    }

    #[test]
    fn replicated_state_survives_the_crash() {
        let plane = HaPlane::new(
            StoreConfig::default(),
            &spec(ServerCrashPlan::crash_restart(
                Dur::from_secs(10),
                Dur::from_secs(1),
            )),
            rng(),
            Dur::from_secs(60),
        );
        let p = PathKey(7);
        // Mutations well before the crash: fully replicated (lag 100 ms).
        plane.lookup(p, SEC);
        plane.report(p, 2 * SEC, &summary(5_000_000));
        // This one is younger than the lag when the primary dies → lost.
        plane.lookup(p, 10 * SEC - 50_000_000);
        // Trigger the crash and serve from the backup.
        let snap = plane.lookup(p, 11 * SEC).expect("backup serves");
        assert_eq!(plane.epoch(), 2);
        assert_eq!(plane.counters().ops_lost, 1);
        // The replicated report's queue estimate survived the failover.
        assert!((snap.queue_ms - 20.0).abs() < 1e-9, "q = {}", snap.queue_ms);
        // The lost lookup's registration did not (1 competing would mean
        // the pre-crash registration leaked through).
        assert_eq!(snap.competing, 0);
    }

    #[test]
    fn flapping_crashes_repeatedly_and_deterministically() {
        let plan = ServerCrashPlan::flapping(
            Dur::from_secs(5),
            Dur::from_secs(1),
            Dur::from_secs(4),
            3,
            0.5,
        );
        let run = |seed: u64| {
            // Failover window longer than the probe cadence below, so
            // every crash provably drops at least one lookup or report.
            let ha = HaSpec {
                plan: plan.clone(),
                repl_lag: Dur::from_millis(100),
                failover_delay: Dur::from_secs(1),
                shards: None,
            };
            let plane = HaPlane::new(
                StoreConfig::default(),
                &ha,
                SeedRng::new(seed).fork("server-crash"),
                Dur::from_secs(60),
            );
            let p = PathKey(1);
            let mut t = SEC;
            while t < 40 * SEC {
                plane.lookup(p, t);
                plane.report(p, t + SEC / 2, &summary(100_000));
                t += SEC;
            }
            (plane.epoch(), plane.counters(), plane.state_digest())
        };
        let (epoch, counters, digest) = run(42);
        assert_eq!(counters.crashes, 3);
        assert_eq!(epoch, 4);
        assert!(counters.lookups_dropped > 0 || counters.reports_dropped > 0);
        // Same seed → bit-identical outcome; different seed → different
        // jittered windows (the draw actually matters).
        assert_eq!(run(42), (epoch, counters, digest));
        let windows_a = plan.materialize(
            &mut SeedRng::new(1).fork("server-crash"),
            Dur::from_secs(60),
        );
        let windows_b = plan.materialize(
            &mut SeedRng::new(2).fork("server-crash"),
            Dur::from_secs(60),
        );
        assert_ne!(windows_a, windows_b, "jitter draws should differ by seed");
    }

    #[test]
    fn materialize_merges_overlaps_and_clips_horizon() {
        let plan = ServerCrashPlan {
            outages: vec![
                (Dur::from_secs(5), Dur::from_secs(4)),
                (Dur::from_secs(7), Dur::from_secs(4)), // overlaps the first
                (Dur::from_secs(90), Dur::from_secs(1)), // past horizon
            ],
            flap: None,
        };
        let w = plan.materialize(&mut rng(), Dur::from_secs(60));
        assert_eq!(w, vec![(5 * SEC, 11 * SEC)]);
    }

    #[test]
    fn sharded_plane_set_isolates_a_crash_to_one_shard() {
        let shards = 4usize;
        let crash_shard = 2usize;
        let root = SeedRng::new(42);
        let planes: Vec<HaPlane> = (0..shards)
            .map(|s| {
                let plan = if s == crash_shard {
                    ServerCrashPlan::crash_restart(Dur::from_secs(5), Dur::from_secs(2))
                } else {
                    ServerCrashPlan::none()
                };
                HaPlane::new(
                    StoreConfig::default(),
                    &spec(plan),
                    root.fork_indexed("server-crash-shard", s as u64),
                    Dur::from_secs(60),
                )
            })
            .collect();
        let set = HaPlaneSet::new(planes);
        assert_eq!(set.shard_count(), shards);

        // One path per shard: probe before, inside, and after the window.
        let mut paths_by_shard = vec![None; shards];
        let mut p = 0u64;
        while paths_by_shard.iter().any(Option::is_none) {
            let s = shard_index(PathKey(p), shards);
            paths_by_shard[s].get_or_insert(PathKey(p));
            p += 1;
        }
        for (s, path) in paths_by_shard.iter().enumerate() {
            let path = path.expect("one path per shard");
            assert_eq!(set.plane_for(path) as *const _, set.plane(s) as *const _);
            assert!(set.plane_for(path).lookup(path, SEC).is_some());
            let in_window = set.plane_for(path).lookup(path, 5 * SEC + 50_000_000);
            let after = set.plane_for(path).lookup(path, 10 * SEC);
            assert!(after.is_some(), "shard {s} dead after the window");
            if s == crash_shard {
                assert!(in_window.is_none(), "crash shard served in its window");
                assert_eq!(set.plane(s).epoch(), 2, "crash shard must fail over");
            } else {
                assert!(in_window.is_some(), "blast radius leaked to shard {s}");
                assert_eq!(set.plane(s).epoch(), 1, "healthy shard changed epoch");
                assert_eq!(set.plane(s).counters().lookups_dropped, 0);
            }
        }
        let reports = set.reports();
        assert_eq!(reports.len(), shards);
        assert_eq!(reports[crash_shard].counters.crashes, 1);
        assert!(reports
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != crash_shard)
            .all(|(_, r)| r.counters.crashes == 0));
    }

    #[test]
    fn restarted_replica_resyncs_and_survives_next_crash() {
        // Two crashes; between them the first victim restarts and must
        // carry the full state into the second failover.
        let plan = ServerCrashPlan {
            outages: vec![
                (Dur::from_secs(5), Dur::from_secs(1)),
                (Dur::from_secs(20), Dur::from_secs(1)),
            ],
            flap: None,
        };
        let plane = HaPlane::new(
            StoreConfig::default(),
            &spec(plan),
            rng(),
            Dur::from_secs(60),
        );
        let p = PathKey(3);
        plane.report(p, 2 * SEC, &summary(1_000_000)); // before crash 1
        plane.lookup(p, 8 * SEC); // after failover 1, on replica B
        plane.report(p, 9 * SEC, &summary(2_000_000));
        // After crash 2, replica A (restarted at 6 s, resynced) serves.
        let snap = plane.lookup(p, 22 * SEC).expect("second failover");
        assert_eq!(plane.epoch(), 3);
        assert_eq!(plane.counters().crashes, 2);
        // Replica A must know about the report filed while it was dead.
        assert!(snap.queue_ms > 0.0, "resynced replica lost state");
    }
}
